//! The timestep driver.
//!
//! [`Simulation`] owns one (sub)domain's state and runs the paper's step
//! sequence: free-surface imaging → velocity update (`dvelcx`/`dvelcy`) →
//! stress update (`dstrqc`) → source injection (`addsrc`) → plasticity
//! (`drprecpc_calc`/`app`) → Cerjan sponge, with recorders, flop
//! accounting (§7.1), checkpoint/restart, and optional on-the-fly
//! compression of the wavefields (§6.5): when enabled, every wavefield is
//! stored 16-bit between steps, which is functionally simulated by a
//! per-step encode/decode round trip through the Fig. 5d codecs.
//!
//! Every phase of the step reports into the configured [`Telemetry`]
//! handle (see [`SimConfig::with_telemetry`]): phase wall times nest under
//! `step.*`, the compression round trip reports `compress.*` timers and
//! byte counters, modeled SW26010 hardware charges land in `arch.*`, and
//! checkpoints in `io.*`. With [`Telemetry::disabled`] (the default) every
//! recording call is a branch on `None` and the numeric path is untouched.
//!
//! [`run_multirank`] runs the same step sequence on a 2-D rank grid with
//! halo exchange (Fig. 4 level 1); its results are bit-identical to a
//! single-rank run, which the integration tests pin down.

use crate::error::{ConfigError, KilledError, RestoreError, RunError, UnstableError};
use crate::exec::{self, ExecMode, ExecPath};
use crate::flops::{
    FlopCounter, DRPRECPC_APP_FLOPS, DRPRECPC_CALC_FLOPS, DSTRQC_FLOPS, DVELC_FLOPS, FSTR_FLOPS,
    SPONGE_FLOPS,
};
use crate::health::HealthMonitor;
use crate::kernels;
use crate::kernels::FusedWavefield;
use crate::resident::{ResidentEngine, ResidentMode, RESIDENT_FIELDS, SIDECAR_FIELD};
use crate::state::{SolverState, StateOptions};
use rayon::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;
use sw_arch::analytic::{AnalyticModel, KernelShape};
use sw_arch::regcomm::RegisterMesh;
use sw_arch::spec::CoreGroupSpec;
use sw_arch::{KernelPerfModel, OptLevel};
use sw_compress::{Codec, Codec16, FieldStats};
use sw_fault::FaultHook;
use sw_grid::{Dims3, Field3, HALO_WIDTH};
use sw_health::{
    CflInfo, FieldProbe, HealthConfig, HealthLog, HealthRecord, HealthReport, StepProbe,
};
use sw_io::checkpoint::{Checkpoint, RestartController};
use sw_io::store::{CheckpointStore, RestoredGeneration, WriteError};
use sw_io::{PgvRecorder, SeismogramRecorder, SnapshotRecorder, Station};
use sw_model::VelocityModel;
use sw_parallel::{run_ranks, FaultVote, HaloExchanger, RankGrid, StopBarrier};
use sw_source::{PointSource, SourcePartitioner};
use sw_telemetry::perf::{
    HostFingerprint, PerfKernel, PerfLedger, PerfRecorder, PerfScope, PERF_SCHEMA_VERSION,
};
use sw_telemetry::timeline::{phase as tl_phase, TimelineRecorder};
use sw_telemetry::Telemetry;

/// The nine wavefields the compression scheme stores 16-bit.
pub const COMPRESSED_FIELDS: [&str; 9] = ["u", "v", "w", "xx", "yy", "zz", "xy", "xz", "yz"];

/// Simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Global mesh extents.
    pub dims: Dims3,
    /// Grid spacing, m.
    pub dx: f64,
    /// Steps to run.
    pub steps: usize,
    /// Physics options.
    pub options: StateOptions,
    /// Point sources (global indices).
    pub sources: Vec<PointSource>,
    /// Recording stations (global indices).
    pub stations: Vec<Station>,
    /// Surface snapshot times, s (empty = none); decimation stride.
    pub snapshot_times: Vec<f64>,
    /// Snapshot decimation stride.
    pub snapshot_stride: usize,
    /// Checkpoint every N steps (0 = never).
    pub checkpoint_interval: u64,
    /// Store wavefields 16-bit between steps (§6.5).
    pub compression: bool,
    /// Per-array statistics from a coarse pre-run (Fig. 5a). Without
    /// them, compression falls back to per-step self statistics.
    pub compression_stats: Vec<(String, FieldStats)>,
    /// Physical position of grid index (0,0,0), m.
    pub origin: (f64, f64, f64),
    /// Which kernel implementations run (serial reference, the Rayon
    /// CPE-pool analogue, or the vectorized tiled path — all
    /// bit-identical). Defaults to the `SWQUAKE_EXEC` environment
    /// override when set, [`ExecMode::Auto`] otherwise.
    pub exec: ExecMode,
    /// Run production steps on the §6.4 fused array layout
    /// ([`FusedWavefield`]): kernels update the AoS vectors in place and
    /// the scalar wavefields are refreshed only at output boundaries
    /// (recorders each step; checkpoints, snapshots and health probes
    /// when due). Bit-identical to the serial path. Incompatible with
    /// attenuation, plasticity, inter-step compression and multirank
    /// runs — [`SimConfig::validate`] rejects those combinations.
    pub fused: bool,
    /// How the dynamic wavefields (and attenuation memory variables) live
    /// between steps: [`ResidentMode::Full`] keeps plain f32 arrays;
    /// [`ResidentMode::Compressed16`] keeps them as 16-bit planes and
    /// streams x-tiles through a small f32 slab each step (see
    /// [`crate::resident`]). Defaults to the `SWQUAKE_RESIDENT`
    /// environment override when set. Incompatible with the fused
    /// layout, §6.5 inter-step compression, surface snapshots and
    /// multirank runs — [`SimConfig::validate`] / [`run_multirank`]
    /// reject those combinations.
    pub resident: ResidentMode,
    /// Byte budget for the compressed-resident decode slab; the engine
    /// solves the widest tile that fits (see
    /// [`crate::resident::tile_width_for_cap`]). `None` uses the default
    /// tile width. Ignored in `Full` mode.
    pub memory_cap_bytes: Option<u64>,
    /// Pin the global Rayon worker budget to this many threads (0 = keep
    /// the current setting). Defaults to `SWQUAKE_THREADS` when set.
    pub threads: usize,
    /// Metrics sink for every subsystem the run touches (defaults to
    /// [`Telemetry::disabled`], which records nothing).
    pub telemetry: Telemetry,
    /// In-situ health monitoring (stability watchdog, field/energy
    /// probes, compression error budget). `None` (the default) runs
    /// with zero health overhead.
    pub health: Option<HealthConfig>,
    /// A pre-opened health log shared across ranks; wins over the
    /// config's `log_path` (set by [`run_multirank`] and the CLI).
    pub shared_health_log: Option<Arc<HealthLog>>,
    /// This simulation's rank id in a multirank run (stamped into
    /// health records; 0 for single-rank runs).
    pub rank: usize,
    /// Durable checkpoint directory. When set (and
    /// `checkpoint_interval > 0`), every due checkpoint is also
    /// persisted through a [`CheckpointStore`] — atomic files, a
    /// versioned manifest, keep-N retention.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint generations retained on disk.
    pub checkpoint_keep: usize,
    /// A pre-opened checkpoint store shared across ranks; wins over
    /// `checkpoint_dir` (set by [`run_multirank`] and the resume path).
    pub shared_store: Option<Arc<CheckpointStore>>,
    /// Whether this simulation commits generations itself after writing
    /// (single-rank). [`run_multirank`] sets this false and commits
    /// centrally, once all ranks have written.
    pub store_commit: bool,
    /// Deterministic fault-injection plan for crash drills (`None` —
    /// the default — injects nothing and costs one branch per step).
    pub fault: FaultHook,
    /// Resume from the newest valid generation under `checkpoint_dir`
    /// instead of starting fresh (honoured by [`run_multirank`]; the
    /// single-rank path uses [`Simulation::resume`] directly).
    pub resume: bool,
    /// Per-kernel performance recorder (`None` — the default — costs one
    /// branch per instrumentation site, same pattern as `fault`). When
    /// armed, every production-step kernel accumulates wall time and
    /// cell/flop/DMA-byte counts; freeze with [`Simulation::perf_ledger`].
    pub perf: Option<Arc<PerfRecorder>>,
    /// Step-aligned run-timeline recorder (`None` — the default — costs
    /// one branch per step, same pattern as `perf`). When armed, every
    /// step's velocity/stress/finish split and the halo wait/pack/unpack
    /// split accumulate per rank, plus per-field resident-bytes gauges
    /// at construction. Recording never touches the numerics: an
    /// instrumented run is bit-identical to an uninstrumented one.
    pub timeline: Option<Arc<TimelineRecorder>>,
}

impl SimConfig {
    /// A minimal config for a mesh.
    pub fn new(dims: Dims3, dx: f64, steps: usize) -> Self {
        Self {
            dims,
            dx,
            steps,
            options: StateOptions::default(),
            sources: Vec::new(),
            stations: Vec::new(),
            snapshot_times: Vec::new(),
            snapshot_stride: 4,
            checkpoint_interval: 0,
            compression: false,
            compression_stats: Vec::new(),
            origin: (0.0, 0.0, 0.0),
            exec: ExecMode::from_env(),
            fused: false,
            resident: ResidentMode::from_env(),
            memory_cap_bytes: None,
            threads: exec::threads_from_env(),
            telemetry: Telemetry::disabled(),
            health: None,
            shared_health_log: None,
            rank: 0,
            checkpoint_dir: None,
            checkpoint_keep: sw_io::store::DEFAULT_KEEP,
            shared_store: None,
            store_commit: true,
            fault: None,
            resume: false,
            perf: None,
            timeline: None,
        }
    }

    /// Choose the execution mode (overrides the `SWQUAKE_EXEC` default).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Run production steps on the fused array layout (§6.4); see
    /// [`SimConfig::fused`] for the compatibility contract.
    #[must_use]
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Choose how wavefields are stored between steps (overrides the
    /// `SWQUAKE_RESIDENT` default); see [`SimConfig::resident`] for the
    /// compatibility contract.
    #[must_use]
    pub fn with_resident(mut self, resident: ResidentMode) -> Self {
        self.resident = resident;
        self
    }

    /// Cap the compressed-resident decode slab at `bytes`; see
    /// [`SimConfig::memory_cap_bytes`].
    #[must_use]
    pub fn with_memory_cap(mut self, bytes: u64) -> Self {
        self.memory_cap_bytes = Some(bytes);
        self
    }

    /// Pin the global Rayon worker budget (0 = keep the current setting).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Replace the source list.
    #[must_use]
    pub fn with_sources(mut self, sources: Vec<PointSource>) -> Self {
        self.sources = sources;
        self
    }

    /// Replace the station list.
    #[must_use]
    pub fn with_stations(mut self, stations: Vec<Station>) -> Self {
        self.stations = stations;
        self
    }

    /// Enable or disable 16-bit inter-step storage (§6.5).
    #[must_use]
    pub fn with_compression(mut self, enabled: bool) -> Self {
        self.compression = enabled;
        self
    }

    /// Provide coarse-run statistics (Fig. 5a) for the codecs.
    #[must_use]
    pub fn with_compression_stats(mut self, stats: Vec<(String, FieldStats)>) -> Self {
        self.compression_stats = stats;
        self
    }

    /// Attach a telemetry handle; pass [`Telemetry::enabled`] to collect
    /// metrics from every subsystem the run touches.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enable in-situ health monitoring with the given configuration.
    #[must_use]
    pub fn with_health(mut self, health: HealthConfig) -> Self {
        self.health = Some(health);
        self
    }

    /// Attach a pre-opened health log (shared across ranks); overrides
    /// the health config's `log_path`.
    #[must_use]
    pub fn with_health_log(mut self, log: Arc<HealthLog>) -> Self {
        self.shared_health_log = Some(log);
        self
    }

    /// Persist due checkpoints into `dir` (atomic files + versioned
    /// manifest + retention). Takes effect together with
    /// [`SimConfig::with_checkpoint_interval`].
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Checkpoint every `interval` steps (0 = never).
    #[must_use]
    pub fn with_checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Keep the newest `keep` checkpoint generations on disk.
    #[must_use]
    pub fn with_checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep.max(1);
        self
    }

    /// Attach a pre-opened checkpoint store (shared across ranks);
    /// overrides `checkpoint_dir`.
    #[must_use]
    pub fn with_checkpoint_store(mut self, store: Arc<CheckpointStore>) -> Self {
        self.shared_store = Some(store);
        self
    }

    /// Arm a deterministic fault-injection plan (crash drills only).
    #[must_use]
    pub fn with_fault_plan(mut self, fault: FaultHook) -> Self {
        self.fault = fault;
        self
    }

    /// Resume from the newest valid checkpoint generation instead of
    /// starting fresh (multirank; see [`Simulation::resume`] for the
    /// single-rank entry point).
    #[must_use]
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Arm a per-kernel performance recorder (shared across ranks in a
    /// multirank run).
    #[must_use]
    pub fn with_perf(mut self, perf: Arc<PerfRecorder>) -> Self {
        self.perf = Some(perf);
        self
    }

    /// Arm a run-timeline recorder (shared across ranks in a multirank
    /// run); see [`SimConfig::timeline`].
    #[must_use]
    pub fn with_timeline(mut self, timeline: Arc<TimelineRecorder>) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// Open (or create) the checkpoint store this config asks for:
    /// the shared store if one is attached, a fresh store under
    /// `checkpoint_dir` otherwise, `None` when persistence is off.
    fn open_store(&self) -> Result<Option<Arc<CheckpointStore>>, ConfigError> {
        if let Some(store) = &self.shared_store {
            return Ok(Some(Arc::clone(store)));
        }
        let Some(dir) = &self.checkpoint_dir else { return Ok(None) };
        CheckpointStore::create(dir, self.checkpoint_keep)
            .map(|s| Some(Arc::new(s.with_fault(self.fault.clone()))))
            .map_err(|e| ConfigError::CheckpointDir {
                path: dir.display().to_string(),
                detail: e.to_string(),
            })
    }

    /// Check that the configuration can produce a runnable simulation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let d = self.dims;
        if d.nx == 0 || d.ny == 0 || d.nz == 0 {
            return Err(ConfigError::EmptyDims { dims: d });
        }
        if self.dx <= 0.0 || !self.dx.is_finite() {
            return Err(ConfigError::NonPositiveSpacing { dx: self.dx });
        }
        for (index, src) in self.sources.iter().enumerate() {
            if src.ix >= d.nx || src.iy >= d.ny || src.iz >= d.nz {
                return Err(ConfigError::SourceOutOfBounds {
                    index,
                    position: (src.ix, src.iy, src.iz),
                    dims: d,
                });
            }
        }
        for st in &self.stations {
            if st.ix >= d.nx || st.iy >= d.ny {
                return Err(ConfigError::StationOutOfBounds {
                    name: st.name.clone(),
                    position: (st.ix, st.iy),
                    dims: d,
                });
            }
        }
        let scale = self.options.dt_scale;
        if !scale.is_finite() || scale <= 0.0 {
            return Err(ConfigError::InvalidDtScale { dt_scale: scale });
        }
        if self.fused {
            if self.options.attenuation {
                return Err(ConfigError::FusedUnsupported { feature: "attenuation" });
            }
            if self.options.nonlinear {
                return Err(ConfigError::FusedUnsupported { feature: "plasticity" });
            }
            if self.compression {
                return Err(ConfigError::FusedUnsupported { feature: "inter-step compression" });
            }
        }
        if self.resident == ResidentMode::Compressed16 {
            if self.fused {
                return Err(ConfigError::ResidentUnsupported { feature: "the fused layout" });
            }
            if self.compression {
                return Err(ConfigError::ResidentUnsupported { feature: "inter-step compression" });
            }
            if !self.snapshot_times.is_empty() {
                return Err(ConfigError::ResidentUnsupported { feature: "surface snapshots" });
            }
        }
        Ok(())
    }
}

/// Per-step modeled SW26010 hardware charges, precomputed at construction
/// from the §6.4 perf model so the per-step cost is a few counter adds
/// (plus one instant trace event per kernel when a tracer is attached).
struct ArchKernelCharge {
    /// `arch.dma_bytes.<kernel>` counter name.
    bytes_name: String,
    /// `arch.model_cycles.<kernel>` counter name.
    cycles_name: String,
    /// `arch.dma.<kernel>` instant-event name.
    event_name: String,
    /// Modeled DMA bytes per step.
    bytes: u64,
    /// Modeled CPE cycles per step.
    cycles: u64,
}

struct ArchCharges {
    kernels: Vec<ArchKernelCharge>,
    /// On-chip halo-exchange rounds per step (stress + velocity, §6.4).
    regcomm_rounds: u64,
    /// Register-bus cycles per round, from [`RegisterMesh::halo_round`].
    regcomm_cycles_per_round: u64,
}

impl ArchCharges {
    fn model(dims: Dims3, nonlinear: bool, compression: bool) -> Self {
        let model = KernelPerfModel::paper();
        let level = if compression { OptLevel::Cmpr } else { OptLevel::Mem };
        let clock = CoreGroupSpec::sw26010().clock_hz;
        let ratio = if compression { 0.5 } else { 1.0 };
        let points = dims.len() as f64;
        let kernels = model
            .kernels()
            .iter()
            .filter(|k| nonlinear || !k.nonlinear_only)
            .map(|k| {
                let touched = points * k.coverage;
                let bytes = touched * k.bytes_per_point() * ratio;
                let cycles = touched * model.seconds_per_point(k, level) * clock;
                ArchKernelCharge {
                    bytes_name: format!("arch.dma_bytes.{}", k.name),
                    cycles_name: format!("arch.model_cycles.{}", k.name),
                    event_name: format!("arch.dma.{}", k.name),
                    bytes: bytes as u64,
                    cycles: cycles as u64,
                }
            })
            .collect();
        // On-chip halo traffic: each CPE hands its 2·H boundary planes of
        // the LDM window (Wz floats each) to its neighbour, once for the
        // velocity stencils and once for the stress stencils.
        let choice = AnalyticModel::sw26010().optimize(&KernelShape::delcx_fused(dims.ny, dims.nz));
        let mut mesh = RegisterMesh::sw26010();
        let regcomm_cycles_per_round = mesh.halo_round(2 * 2 * choice.window.wz);
        Self { kernels, regcomm_rounds: 2, regcomm_cycles_per_round }
    }

    fn charge(&self, tel: &Telemetry) {
        for k in &self.kernels {
            tel.add(&k.bytes_name, k.bytes);
            tel.add(&k.cycles_name, k.cycles);
            tel.event(&k.event_name, &[("bytes", k.bytes as f64), ("cycles", k.cycles as f64)]);
        }
        let cycles = self.regcomm_rounds * self.regcomm_cycles_per_round;
        tel.add("arch.regcomm_rounds", self.regcomm_rounds);
        tel.add("arch.regcomm_cycles", cycles);
        tel.event(
            "arch.regcomm",
            &[("rounds", self.regcomm_rounds as f64), ("cycles", cycles as f64)],
        );
    }
}

/// Flops the fused stress kernel spends on the coarse-grained
/// attenuation terms, per point (see `FlopCounter::charge_step`). The
/// ledger splits the fused `dstrqc` charge by this share so the stress
/// and attenuation rows stay additive.
const ATTENUATION_FLOPS: f64 = 36.0;

/// Modeled DMA bytes per point for the sponge pass (9 wavefields read +
/// written, 4 bytes each) — the §6.4 profiles do not cover it.
const SPONGE_BYTES_PER_POINT: f64 = 72.0;

/// Modeled DMA bytes per point for the §6.5 compression round trip:
/// 9 wavefields × (encode 4r+2w, decode 2r+4w).
const COMPRESSION_BYTES_PER_POINT: f64 = 108.0;

/// Static per-step cell/flop/DMA-byte charges for the perf ledger,
/// precomputed at construction so the per-step cost is a handful of
/// slot adds. Flop counts mirror [`crate::flops`]; DMA bytes mirror the
/// §6.4 kernel profiles (same convention as [`ArchCharges`], including
/// the compression byte-ratio).
struct PerfKernelCharge {
    name: &'static str,
    cells: u64,
    flops: f64,
    bytes: u64,
}

struct PerfCharges {
    kernels: Vec<PerfKernelCharge>,
}

impl PerfCharges {
    fn model(dims: Dims3, nonlinear: bool, attenuation: bool, compression: bool) -> Self {
        let model = KernelPerfModel::paper();
        let ratio = if compression { 0.5 } else { 1.0 };
        let n = dims.len() as f64;
        let cells = dims.len() as u64;
        let surface = (dims.nx * dims.ny) as u64;
        let bytes = |name: &str| {
            model.kernel(name).map_or(0.0, |k| n * k.coverage * k.bytes_per_point() * ratio)
        };
        let mut kernels = vec![
            PerfKernelCharge {
                name: "fstr",
                cells: surface,
                flops: FSTR_FLOPS * surface as f64,
                bytes: bytes("fstr") as u64,
            },
            PerfKernelCharge {
                name: "dvelc",
                cells,
                flops: DVELC_FLOPS * n,
                bytes: (bytes("dvelcx") + bytes("dvelcy")) as u64,
            },
        ];
        // The stress update and the attenuation terms run fused in one
        // kernel; split the charge by flop share so the rows stay
        // additive (their sum equals the fused kernel's total).
        let stress_flops = DSTRQC_FLOPS - ATTENUATION_FLOPS;
        let att_share = if attenuation { ATTENUATION_FLOPS / DSTRQC_FLOPS } else { 0.0 };
        let dstrqc_bytes = bytes("dstrqc");
        kernels.push(PerfKernelCharge {
            name: "dstrqc",
            cells,
            flops: stress_flops * n,
            bytes: (dstrqc_bytes * (1.0 - att_share)) as u64,
        });
        if attenuation {
            kernels.push(PerfKernelCharge {
                name: "attenuation",
                cells,
                flops: ATTENUATION_FLOPS * n,
                bytes: (dstrqc_bytes * att_share) as u64,
            });
        }
        if nonlinear {
            kernels.push(PerfKernelCharge {
                name: "drprecpc",
                cells,
                flops: (DRPRECPC_CALC_FLOPS + DRPRECPC_APP_FLOPS) * n,
                bytes: (bytes("drprecpc_calc") + bytes("drprecpc_app")) as u64,
            });
        }
        kernels.push(PerfKernelCharge {
            name: "sponge",
            cells,
            flops: SPONGE_FLOPS * n,
            bytes: (n * SPONGE_BYTES_PER_POINT * ratio) as u64,
        });
        if compression {
            kernels.push(PerfKernelCharge {
                name: "compression",
                cells,
                flops: 0.0,
                bytes: (n * COMPRESSION_BYTES_PER_POINT) as u64,
            });
        }
        Self { kernels }
    }
}

/// The roofline model's predicted SW26010 seconds per step, per ledger
/// kernel. Stencil kernels come from the §6.4 per-point model; the
/// sponge and compression passes get a memory-bandwidth floor; halo
/// exchange and checkpoint I/O are unmodeled (fraction 0 in the ledger).
fn modeled_step_seconds(
    dims: Dims3,
    nonlinear: bool,
    attenuation: bool,
    compression: bool,
) -> Vec<(&'static str, f64)> {
    let model = KernelPerfModel::paper();
    let level = if compression { OptLevel::Cmpr } else { OptLevel::Mem };
    let ratio = if compression { 0.5 } else { 1.0 };
    let n = dims.len() as f64;
    let bw = CoreGroupSpec::sw26010().mem_bandwidth;
    let sec = |name: &str| {
        model.kernel(name).map_or(0.0, |k| n * k.coverage * model.seconds_per_point(k, level))
    };
    let mut out = vec![("fstr", sec("fstr")), ("dvelc", sec("dvelcx") + sec("dvelcy"))];
    let dstrqc = sec("dstrqc");
    let att_share = if attenuation { ATTENUATION_FLOPS / DSTRQC_FLOPS } else { 0.0 };
    out.push(("dstrqc", dstrqc * (1.0 - att_share)));
    if attenuation {
        out.push(("attenuation", dstrqc * att_share));
    }
    if nonlinear {
        out.push(("drprecpc", sec("drprecpc_calc") + sec("drprecpc_app")));
    }
    out.push(("sponge", n * SPONGE_BYTES_PER_POINT * ratio / bw));
    if compression {
        out.push(("compression", n * COMPRESSION_BYTES_PER_POINT / bw));
    }
    out
}

/// Open a perf scope when the recorder is armed (one branch when not).
fn pscope<'a>(perf: &'a Option<Arc<PerfRecorder>>, name: &'static str) -> Option<PerfScope<'a>> {
    perf.as_deref().map(|p| p.scope(name))
}

/// One compressed wavefield's codec state across steps.
///
/// Self-calibrating codecs (no coarse-run statistics provided) used to be
/// rebuilt from a full `FieldStats::of_field` scan every step even when
/// the field's range had not moved. The slot caches the built codec keyed
/// by the **binade bucket** of the field's interior max-abs: each step
/// costs one cheap max-abs scan, and the codec is rebuilt only when the
/// magnitude crosses into another power-of-two bucket (either direction).
/// The active codec is a pure function of the *current* field — never of
/// run history — so a restored checkpoint rebuilds the identical codec
/// and restart stays bit-exact.
struct CompressionSlot {
    /// `COMPRESSED_FIELDS` index.
    idx: usize,
    /// The codec built from the config's statistics (or the empty-stats
    /// sentinel that marks self-calibration).
    base: Codec,
    /// The codec actually applied this step.
    active: Codec,
    /// Binade bucket `active` was calibrated for (`i32::MIN` marks the
    /// all-zero-field bucket; `None` = not yet calibrated).
    bucket: Option<i32>,
}

/// Binade bucket of a finite interior max-abs (`i32::MIN` = zero field).
fn max_abs_bucket(max_abs: f32) -> i32 {
    if max_abs == 0.0 {
        i32::MIN
    } else {
        sw_compress::stats::unbiased_exponent(max_abs)
    }
}

/// The self-calibrated codec for a binade bucket — a pure function of
/// `(base, bucket)`, so a cached build and a from-scratch build always
/// agree (what makes the cache transparent and restart-safe).
fn calibrated_codec(base: &Codec, bucket: i32) -> Codec {
    match base {
        Codec::Norm(_) => {
            if bucket == i32::MIN {
                Codec::Norm(sw_compress::NormCodec::new(0.0, 0.0))
            } else {
                // max_abs ∈ [2^e, 2^(e+1)): the symmetric range ±2^(e+1)
                // covers the whole bucket, so the codec is stable until
                // the bucket moves.
                let r = 2.0f32.powi(bucket.min(126) + 1);
                Codec::Norm(sw_compress::NormCodec::new(-r, r))
            }
        }
        Codec::Adaptive(_) => {
            if bucket == i32::MIN {
                *base
            } else {
                // Mirror `AdaptiveCodec::from_stats`: four binades of
                // saturation headroom, 29 binades of downward coverage.
                let hi = bucket.saturating_add(4).min(127);
                Codec::Adaptive(sw_compress::AdaptiveCodec::new(hi - 29, hi))
            }
        }
        c => *c,
    }
}

impl CompressionSlot {
    fn new(idx: usize, base: Codec) -> Self {
        Self { idx, base, active: base, bucket: None }
    }

    /// Whether `base` is the empty-stats sentinel that asks for per-step
    /// self-calibration (same sentinels the pre-cache code matched on).
    fn self_calibrating(&self) -> bool {
        match &self.base {
            Codec::Norm(n) => n.vmin() == 0.0 && n.vmax() == 1.0,
            Codec::Adaptive(a) => a.exp_bits == 1,
            Codec::F16(_) => false,
        }
    }

    /// The codec for a field whose interior max-abs is `max_abs`;
    /// returns `(codec, rebuilt)`.
    fn refresh(&mut self, max_abs: f32) -> (Codec, bool) {
        if !max_abs.is_finite() {
            // The field is blowing up; keep whatever codec we have (the
            // instability check after the step reports it).
            return (self.active, false);
        }
        let bucket = max_abs_bucket(max_abs);
        if self.bucket == Some(bucket) {
            return (self.active, false);
        }
        self.active = calibrated_codec(&self.base, bucket);
        self.bucket = Some(bucket);
        (self.active, true)
    }
}

/// One running simulation (one rank's subdomain, or the whole domain).
pub struct Simulation {
    /// The solver state.
    pub state: SolverState,
    /// Rank-local sources.
    pub sources: Vec<PointSource>,
    /// Simulated time, s.
    pub time: f64,
    /// Steps taken.
    pub step_count: u64,
    /// Station recorder.
    pub seismo: SeismogramRecorder,
    /// Peak-ground-velocity recorder.
    pub pgv: PgvRecorder,
    /// Surface snapshot recorder.
    pub snapshots: SnapshotRecorder,
    /// Flop accounting.
    pub flops: FlopCounter,
    /// In-memory checkpoints taken by the restart controller.
    pub checkpoints: Vec<Checkpoint>,
    restart: RestartController,
    /// Durable store due checkpoints are persisted into (in addition to
    /// the in-memory list), when configured.
    store: Option<Arc<CheckpointStore>>,
    /// Whether this simulation commits generations itself after writing
    /// (false when [`run_multirank`] commits centrally).
    store_commit: bool,
    /// This rank's id (file naming in the store, fault targeting).
    rank: usize,
    /// The armed fault plan, if any.
    fault: FaultHook,
    /// Latched injected kill: once set, checked stepping refuses to
    /// continue, mimicking a dead process.
    fault_kill: Option<KilledError>,
    snapshot_times: Vec<f64>,
    next_snapshot: usize,
    compression: Option<Vec<CompressionSlot>>,
    /// The resolved kernel path every step phase routes through
    /// (serial reference, Rayon CPE-pool analogue, or the vectorized
    /// tiled kernels — all bit-identical).
    path: ExecPath,
    /// The fused AoS wavefield production steps run on when
    /// [`SimConfig::fused`] is set; the scalar state is refreshed from
    /// it at output boundaries only.
    fused: Option<FusedWavefield>,
    /// The compressed-resident engine when [`SimConfig::resident`] is
    /// `Compressed16`; the state's dynamic arrays are detached and every
    /// step phase streams tiles through the engine's f32 slab instead.
    resident: Option<ResidentEngine>,
    telemetry: Telemetry,
    arch: Option<ArchCharges>,
    health: Option<HealthMonitor>,
    /// Per-kernel performance recorder (shared across ranks) and its
    /// precomputed per-step charges; both `None` when perf is off.
    perf: Option<Arc<PerfRecorder>>,
    perf_charges: Option<PerfCharges>,
    /// Step-aligned run-timeline recorder (shared across ranks), `None`
    /// when observability is off.
    timeline: Option<Arc<TimelineRecorder>>,
}

/// Index a wavefield by its `COMPRESSED_FIELDS` position.
fn wavefield_mut(state: &mut SolverState, idx: usize) -> &mut Field3 {
    match idx {
        0 => &mut state.u,
        1 => &mut state.v,
        2 => &mut state.w,
        3 => &mut state.xx,
        4 => &mut state.yy,
        5 => &mut state.zz,
        6 => &mut state.xy,
        7 => &mut state.xz,
        _ => &mut state.yz,
    }
}

/// Feed the per-field resident-bytes gauges of one rank's working set
/// into the run timeline: the nine wavefields individually (they are what
/// the compressed-resident-grid arc will shrink), plus the attenuation
/// memory variables, the material arrays, and any fused AoS mirror as
/// aggregates. Called once at construction — allocations are fixed for
/// the life of a simulation, so this is also the high-water mark.
fn record_resident_memory(
    tl: &TimelineRecorder,
    rank: usize,
    state: &SolverState,
    fused: Option<&FusedWavefield>,
) {
    for name in COMPRESSED_FIELDS {
        let f = match name {
            "u" => &state.u,
            "v" => &state.v,
            "w" => &state.w,
            "xx" => &state.xx,
            "yy" => &state.yy,
            "zz" => &state.zz,
            "xy" => &state.xy,
            "xz" => &state.xz,
            _ => &state.yz,
        };
        tl.record_memory(rank, &format!("state.{name}"), f.resident_bytes() as u64);
    }
    let memvars: usize = state.r.iter().map(Field3::resident_bytes).sum();
    tl.record_memory(rank, "state.memvars", memvars as u64);
    let material: usize = [
        &state.lam,
        &state.mu,
        &state.rho,
        &state.buoyancy,
        &state.wp,
        &state.ws,
        &state.cohes,
        &state.sinphi,
        &state.cosphi,
        &state.pf,
        &state.sigma0,
        &state.yldfac,
        &state.eqp,
        &state.dcrj,
    ]
    .iter()
    .map(|f| f.resident_bytes())
    .sum();
    tl.record_memory(rank, "state.material", material as u64);
    if let Some(fw) = fused {
        tl.record_memory(rank, "fused.velocity", fw.vel.resident_bytes() as u64);
        tl.record_memory(rank, "fused.stress", fw.stress.resident_bytes() as u64);
    }
}

/// Build a health probe from the compressed-resident engine's per-step
/// encode statistics: max-abs per wavefield comes from the (finite-only)
/// encode scans for free; the decode scan for exact NaN/Inf locations
/// runs only on the cold path (a step whose encodes saw nonfinite
/// values). Kinetic energy needs a full-field pass the resident path
/// deliberately avoids, so it is reported as NaN — the watchdog skips
/// non-finite energy baselines by contract.
fn resident_probe(engine: &ResidentEngine, step: u64, time: f64, rank: usize) -> StepProbe {
    let mut fields = Vec::with_capacity(COMPRESSED_FIELDS.len());
    for (idx, (name, stats)) in engine.step_stats().take(COMPRESSED_FIELDS.len()).enumerate() {
        let (nan_count, inf_count, first_bad) =
            if stats.nonfinite > 0 { engine.scan_nonfinite(idx) } else { (0, 0, None) };
        fields.push(FieldProbe {
            name: name.to_string(),
            max_abs: f64::from(stats.max_abs),
            nan_count,
            inf_count,
            first_bad,
        });
    }
    let max_velocity = fields[..3].iter().fold(0.0f64, |m, f| m.max(f.max_abs));
    let max_stress = fields[3..].iter().fold(0.0f64, |m, f| m.max(f.max_abs));
    StepProbe { step, time, rank, max_velocity, max_stress, kinetic_energy: f64::NAN, fields }
}

fn wavefield(state: &SolverState, idx: usize) -> &Field3 {
    match idx {
        0 => &state.u,
        1 => &state.v,
        2 => &state.w,
        3 => &state.xx,
        4 => &state.yy,
        5 => &state.zz,
        6 => &state.xy,
        7 => &state.xz,
        _ => &state.yz,
    }
}

impl Simulation {
    /// Build a single-rank simulation over the full config domain.
    ///
    /// Fails with [`ConfigError`] when the mesh is degenerate or a source
    /// or station lies outside it.
    pub fn new(model: &dyn VelocityModel, config: &SimConfig) -> Result<Self, ConfigError> {
        let state =
            SolverState::from_model(model, config.dims, config.dx, config.origin, config.options);
        Self::new_with_state(state, config)
    }

    /// Like [`Simulation::new`] but reusing an already-built material
    /// state (the campaign engine caches `SolverState::from_model` per
    /// mesh shape and hands out clones). The state must have been built
    /// for this config's dims/dx/origin/options — the campaign's cache
    /// key covers exactly those — or restores and physics will mismatch.
    pub fn new_with_state(state: SolverState, config: &SimConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let store = config.open_store()?;
        let mut sim = Self::from_state(state, config);
        sim.store = store;
        Ok(sim)
    }

    /// Build a single-rank simulation resumed from the newest valid
    /// checkpoint generation under the config's `checkpoint_dir`.
    ///
    /// The store must already exist (a resume that finds no store is an
    /// operator error, not a fresh start); corrupt or incomplete newer
    /// generations are skipped with a logged
    /// [`sw_health::Warning::CheckpointFallback`] and counted in
    /// `io.restore_fallbacks`. Fails with [`RunError::ResumeFailed`]
    /// when no generation at all can be restored.
    #[allow(clippy::result_large_err)] // cold resume-path error; see step_checked
    pub fn resume(
        model: &dyn VelocityModel,
        config: &SimConfig,
    ) -> Result<(Self, ResumeInfo), RunError> {
        let state =
            SolverState::from_model(model, config.dims, config.dx, config.origin, config.options);
        Self::resume_with_state(state, config)
    }

    /// Like [`Simulation::resume`] but reusing an already-built material
    /// state (see [`Simulation::new_with_state`] for the contract).
    #[allow(clippy::result_large_err)] // cold resume-path error; see step_checked
    pub fn resume_with_state(
        state: SolverState,
        config: &SimConfig,
    ) -> Result<(Self, ResumeInfo), RunError> {
        let Some(dir) = &config.checkpoint_dir else {
            return Err(RunError::ResumeFailed {
                detail: "no checkpoint directory configured".to_string(),
            });
        };
        let store = CheckpointStore::open(dir, config.checkpoint_keep)
            .map_err(|e| RunError::ResumeFailed { detail: e.to_string() })?
            .with_fault(config.fault.clone());
        let restored = store
            .restore_newest_valid(1)
            .map_err(|e| RunError::ResumeFailed { detail: e.to_string() })?;
        let mut cfg = config.clone();
        cfg.shared_store = Some(Arc::new(store));
        let mut sim = Simulation::new_with_state(state, &cfg)?;
        sim.restore(&restored.checkpoints[0])
            .map_err(|e| RunError::ResumeFailed { detail: e.to_string() })?;
        sim.note_resume(&restored);
        Ok((
            sim,
            ResumeInfo { step: restored.step, time: restored.time, skipped: restored.skipped },
        ))
    }

    /// Record a completed restore in telemetry and, when generations
    /// were skipped, as checkpoint-fallback warnings in the health log.
    fn note_resume(&self, restored: &RestoredGeneration) {
        let tel = &self.telemetry;
        tel.gauge("io.resume_step", restored.step as f64);
        if restored.skipped.is_empty() {
            return;
        }
        tel.add("io.restore_fallbacks", restored.skipped.len() as u64);
        if let Some(monitor) = &self.health {
            for (skipped_step, reason) in &restored.skipped {
                let record = HealthRecord::checkpoint_fallback(
                    restored.step,
                    restored.time,
                    self.rank,
                    *skipped_step,
                    reason.clone(),
                );
                monitor.log_record(&record, tel);
            }
        }
    }

    /// Build from an existing state (used by the multi-rank runner). The
    /// caller is responsible for having validated the config.
    pub fn from_state(mut state: SolverState, config: &SimConfig) -> Self {
        let d = state.dims;
        let compression = config.compression.then(|| {
            COMPRESSED_FIELDS
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let stats = config
                        .compression_stats
                        .iter()
                        .find(|(n, _)| n == *name)
                        .map(|(_, s)| *s)
                        .unwrap_or_else(FieldStats::empty);
                    CompressionSlot::new(i, Codec::paper_assignment(name, &stats))
                })
                .collect()
        });
        exec::configure_threads(config.threads);
        let path = config.exec.resolve_path(d.len());
        let telemetry = config.telemetry.clone();
        if telemetry.is_enabled() {
            let mode = match path {
                ExecPath::Serial => 0.0,
                ExecPath::Parallel => 1.0,
                ExecPath::Simd => 2.0,
            };
            telemetry.gauge("exec.mode", mode);
            telemetry.gauge("exec.threads", rayon::current_num_threads() as f64);
        }
        let arch = telemetry.is_enabled().then(|| {
            // The analytic model's blocking for this block is the LDM
            // footprint the Sunway port would run with (eq. 6).
            let choice = AnalyticModel::sw26010().optimize(&KernelShape::delcx_fused(d.ny, d.nz));
            telemetry.gauge("arch.ldm_high_water_bytes", choice.ldm_bytes as f64);
            telemetry.gauge("arch.max_dma_block_bytes", choice.max_dma_block as f64);
            ArchCharges::model(d, config.options.nonlinear, config.compression)
        });
        let perf = config.perf.clone();
        let perf_charges = perf.is_some().then(|| {
            PerfCharges::model(
                d,
                config.options.nonlinear,
                config.options.attenuation,
                config.compression,
            )
        });
        let fused = config.fused.then(|| FusedWavefield::from_state(&state));
        let resident = (config.resident == ResidentMode::Compressed16).then(|| {
            let engine = ResidentEngine::new(&state, config.memory_cap_bytes);
            // The engine now holds the dynamic values 16-bit; detach the
            // f32 arrays so the footprint win is real, not additive.
            for idx in 0..COMPRESSED_FIELDS.len() {
                *wavefield_mut(&mut state, idx) = Field3::detached(d, HALO_WIDTH);
            }
            for r in &mut state.r {
                *r = Field3::detached(d, HALO_WIDTH);
            }
            engine
        });
        let timeline = config.timeline.clone();
        if let Some(tl) = &timeline {
            record_resident_memory(tl, config.rank, &state, fused.as_ref());
            if let Some(engine) = &resident {
                for (i, name) in COMPRESSED_FIELDS.iter().enumerate() {
                    tl.record_memory(config.rank, &format!("state.{name}"), engine.stored_bytes(i));
                }
                let memvars: u64 = (COMPRESSED_FIELDS.len()..RESIDENT_FIELDS.len())
                    .map(|i| engine.stored_bytes(i))
                    .sum();
                tl.record_memory(config.rank, "state.memvars", memvars);
                tl.record_memory(config.rank, "resident.working_set", engine.working_set_bytes());
            }
            tl.set_resident_mode(config.resident.to_string());
        }
        Self {
            state,
            sources: config.sources.clone(),
            time: 0.0,
            step_count: 0,
            seismo: SeismogramRecorder::new(config.stations.clone(), 0.0),
            pgv: PgvRecorder::new(d.nx, d.ny),
            snapshots: SnapshotRecorder::new(config.snapshot_stride),
            flops: FlopCounter::default(),
            checkpoints: Vec::new(),
            restart: RestartController { interval: config.checkpoint_interval },
            store: config.shared_store.clone(),
            store_commit: config.store_commit,
            rank: config.rank,
            fault: config.fault.clone(),
            fault_kill: None,
            snapshot_times: config.snapshot_times.clone(),
            next_snapshot: 0,
            compression,
            path,
            fused,
            resident,
            telemetry,
            arch,
            health: config
                .health
                .clone()
                .map(|h| HealthMonitor::new(h, config.rank, config.shared_health_log.clone())),
            perf,
            perf_charges,
            timeline,
        }
    }

    /// Whether this simulation fans work out over the Rayon pool (true
    /// for both the CPE-pool and the vectorized tiled paths).
    pub fn is_parallel(&self) -> bool {
        self.path.is_parallel()
    }

    /// The concrete kernel path the resolved [`ExecMode`] routes step
    /// phases through.
    pub fn exec_path(&self) -> ExecPath {
        self.path
    }

    /// Whether production steps run on the fused array layout (§6.4).
    pub fn is_fused(&self) -> bool {
        self.fused.is_some()
    }

    /// How this simulation stores its wavefields between steps.
    pub fn resident_mode(&self) -> ResidentMode {
        if self.resident.is_some() {
            ResidentMode::Compressed16
        } else {
            ResidentMode::Full
        }
    }

    /// The compressed-resident decode slab's f32 byte footprint (`None`
    /// in full mode) — what [`SimConfig::memory_cap_bytes`] bounds.
    pub fn resident_working_set_bytes(&self) -> Option<u64> {
        self.resident.as_ref().map(ResidentEngine::working_set_bytes)
    }

    /// Total bytes the compressed 16-bit stores occupy (`None` in full
    /// mode) — what replaces the f32 wavefield + memory-variable arrays.
    pub fn resident_stored_bytes(&self) -> Option<u64> {
        self.resident.as_ref().map(|e| (0..RESIDENT_FIELDS.len()).map(|i| e.stored_bytes(i)).sum())
    }

    /// The telemetry handle this simulation records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Snapshot everything recorded so far into a serializable report
    /// (empty, schema-stamped, when telemetry is disabled).
    pub fn metrics(&self) -> sw_telemetry::Report {
        self.telemetry.report()
    }

    /// Freeze the per-kernel performance ledger (when a recorder is
    /// armed; `None` otherwise), joining the measured wall/cell/flop/
    /// byte counts with the §6.4 roofline model's predicted seconds.
    pub fn perf_ledger(&self) -> Option<PerfLedger> {
        let rec = self.perf.as_deref()?;
        let d = self.state.dims;
        let nonlinear = self.state.options.nonlinear;
        let attenuation = self.state.options.attenuation;
        let compressed = self.compression.is_some();
        let steps = rec.steps().max(self.step_count);
        let mut counts = rec.counts();
        // The fused stress kernel's wall covers both the stress update
        // and the attenuation terms; split it by flop share so both
        // rows carry real timings.
        if attenuation {
            let di = counts.iter().position(|c| c.name == "dstrqc");
            let ai = counts.iter().position(|c| c.name == "attenuation");
            if let (Some(di), Some(ai)) = (di, ai) {
                let share = ATTENUATION_FLOPS / DSTRQC_FLOPS;
                let wall = counts[di].wall_s;
                counts[di].wall_s = wall * (1.0 - share);
                counts[ai].wall_s = wall * share;
                counts[ai].calls = counts[di].calls;
            }
        }
        let modeled = modeled_step_seconds(d, nonlinear, attenuation, compressed);
        let per_step =
            |name: &str| modeled.iter().find(|(k, _)| *k == name).map_or(0.0, |(_, s)| *s);
        let kernels = counts
            .iter()
            .map(|c| {
                PerfKernel::from_counts(
                    &c.name,
                    c.wall_s,
                    c.calls,
                    c.cells,
                    c.flops,
                    c.dma_bytes,
                    per_step(&c.name) * steps as f64,
                )
            })
            .collect();
        let (p50, p95) = rec.step_percentiles();
        let threads = if self.path.is_parallel() { rayon::current_num_threads() } else { 1 };
        Some(PerfLedger {
            schema_version: PERF_SCHEMA_VERSION,
            host: HostFingerprint::detect(threads as u64),
            steps,
            grid_cells: d.len() as u64,
            wall_s: rec.total_step_wall(),
            step_p50_s: p50,
            step_p95_s: p95,
            exec_mode: Some(self.path.to_string()),
            features: Some(if exec::simd_compiled() { "simd" } else { "" }.to_string()),
            resident_mode: Some(self.resident_mode().to_string()),
            kernels,
        })
    }

    /// The predicted-vs-simulated per-kernel attribution for this run
    /// (see [`crate::roofline`]), joining whatever the telemetry handle
    /// has recorded so far.
    pub fn roofline(&self) -> crate::roofline::RooflineReport {
        crate::roofline::attribute(
            self.state.dims,
            self.state.options.nonlinear,
            self.compression.is_some(),
            &self.metrics(),
        )
    }

    /// Advance one step (single-rank path: no halo exchange needed).
    pub fn step(&mut self) {
        let tel = self.telemetry.clone();
        let start =
            (tel.is_enabled() || self.perf.is_some() || self.timeline.is_some()).then(Instant::now);
        {
            let _step = tel.phase("step");
            if let Some(tl) = self.timeline.clone() {
                // Same kernel sequence as the untimed branch; the extra
                // clock reads never touch the numerics, so instrumented
                // runs stay bit-identical.
                let rank = self.rank;
                let t = Instant::now();
                self.velocity_half();
                tl.record_phase(rank, tl_phase::VELOCITY, t.elapsed().as_secs_f64());
                let t = Instant::now();
                self.stress_half();
                tl.record_phase(rank, tl_phase::STRESS, t.elapsed().as_secs_f64());
                let t = Instant::now();
                self.finish_step();
                tl.record_phase(rank, tl_phase::FINISH, t.elapsed().as_secs_f64());
            } else {
                self.step_interior();
                self.finish_step();
            }
        }
        if let Some(start) = start {
            let wall = start.elapsed().as_secs_f64();
            tel.sample("step.wall_s", wall);
            if let Some(p) = self.perf.as_deref() {
                p.note_step(self.step_count, wall);
            }
            if let Some(tl) = self.timeline.as_deref() {
                tl.note_step(self.rank, self.step_count, wall);
            }
        }
    }

    /// The kernel sequence up to (not including) recording — split out so
    /// the multi-rank runner can interleave halo exchanges.
    fn step_interior(&mut self) {
        self.velocity_half();
        self.stress_half();
    }

    /// First half of the step: free-surface imaging + the velocity
    /// update. The multi-rank runner calls this after exchanging stress
    /// halos (which feed the velocity stencils).
    fn velocity_half(&mut self) {
        let tel = self.telemetry.clone();
        if let Some(mut engine) = self.resident.take() {
            engine.begin_step();
            {
                let _p = tel.phase("velocity");
                let _k = pscope(&self.perf, "dvelc");
                engine.velocity_sweep(&self.state);
            }
            self.resident = Some(engine);
            return;
        }
        if let Some(mut w) = self.fused.take() {
            let s = &self.state;
            {
                let _p = tel.phase("free_surface");
                let _k = pscope(&self.perf, "fstr");
                kernels::fstr_fused(&mut w, s);
            }
            {
                let _p = tel.phase("velocity");
                let _k = pscope(&self.perf, "dvelc");
                kernels::dvelc_fused(&mut w, s);
            }
            self.fused = Some(w);
            return;
        }
        let s = &mut self.state;
        {
            let _p = tel.phase("free_surface");
            let _k = pscope(&self.perf, "fstr");
            match self.path {
                ExecPath::Serial => kernels::fstr(s),
                ExecPath::Parallel => kernels::fstr_par(s),
                ExecPath::Simd => {
                    #[cfg(feature = "simd")]
                    kernels::simd::fstr_simd(s);
                    #[cfg(not(feature = "simd"))]
                    kernels::fstr_par(s);
                }
            }
        }
        {
            let _p = tel.phase("velocity");
            let _k = pscope(&self.perf, "dvelc");
            match self.path {
                ExecPath::Serial => {
                    kernels::dvelcx(s);
                    kernels::dvelcy(s);
                }
                ExecPath::Parallel => kernels::dvelc_par(s),
                ExecPath::Simd => {
                    #[cfg(feature = "simd")]
                    kernels::simd::dvelc_simd(s);
                    #[cfg(not(feature = "simd"))]
                    kernels::dvelc_par(s);
                }
            }
        }
    }

    /// Second half of the step: stress update, source injection,
    /// plasticity, sponge, and the §6.5 compression round trip. The
    /// multi-rank runner calls this after exchanging velocity halos
    /// (which feed the stress stencils).
    fn stress_half(&mut self) {
        let tel = self.telemetry.clone();
        if let Some(mut engine) = self.resident.take() {
            {
                let _p = tel.phase("stress");
                let _k = pscope(&self.perf, "dstrqc");
                engine.stress_sweep(&self.state);
            }
            {
                let _p = tel.phase("source");
                engine.inject_sources(&self.state, &self.sources, self.time);
            }
            if engine.wants_plastic_sponge() {
                let _p = tel.phase("sponge");
                let _k = pscope(&self.perf, "sponge");
                engine.plastic_sponge_sweep(&mut self.state);
            }
            self.resident = Some(engine);
            return;
        }
        if let Some(mut w) = self.fused.take() {
            // The fused path covers the elastic step only (validated at
            // construction): no attenuation memory, no plasticity, no
            // compression round trip.
            let s = &self.state;
            {
                let _p = tel.phase("free_surface");
                let _k = pscope(&self.perf, "fstr");
                kernels::fstr_fused(&mut w, s);
            }
            {
                let _p = tel.phase("stress");
                let _k = pscope(&self.perf, "dstrqc");
                kernels::dstrqc_fused(&mut w, s);
            }
            {
                let _p = tel.phase("source");
                kernels::addsrc_fused(&mut w, s, &self.sources, self.time);
            }
            {
                let _p = tel.phase("sponge");
                let _k = pscope(&self.perf, "sponge");
                kernels::apply_sponge_fused(&mut w, s);
            }
            self.fused = Some(w);
            return;
        }
        let s = &mut self.state;
        {
            let _p = tel.phase("free_surface");
            let _k = pscope(&self.perf, "fstr");
            match self.path {
                ExecPath::Serial => kernels::fstr(s),
                ExecPath::Parallel => kernels::fstr_par(s),
                ExecPath::Simd => {
                    #[cfg(feature = "simd")]
                    kernels::simd::fstr_simd(s);
                    #[cfg(not(feature = "simd"))]
                    kernels::fstr_par(s);
                }
            }
        }
        {
            let _p = tel.phase("stress");
            let _k = pscope(&self.perf, "dstrqc");
            match self.path {
                ExecPath::Serial => kernels::dstrqc(s),
                ExecPath::Parallel => kernels::dstrqc_par(s),
                ExecPath::Simd => {
                    #[cfg(feature = "simd")]
                    kernels::simd::dstrqc_simd(s);
                    #[cfg(not(feature = "simd"))]
                    kernels::dstrqc_par(s);
                }
            }
        }
        {
            let _p = tel.phase("source");
            kernels::addsrc(s, &self.sources, self.time);
        }
        if s.options.nonlinear {
            let _p = tel.phase("plasticity");
            let _k = pscope(&self.perf, "drprecpc");
            match self.path {
                ExecPath::Serial => {
                    kernels::drprecpc_calc(s);
                    kernels::drprecpc_app(s);
                }
                ExecPath::Parallel => {
                    kernels::drprecpc_calc_par(s);
                    kernels::drprecpc_app_par(s);
                }
                ExecPath::Simd => {
                    #[cfg(feature = "simd")]
                    {
                        kernels::simd::drprecpc_calc_simd(s);
                        kernels::simd::drprecpc_app_simd(s);
                    }
                    #[cfg(not(feature = "simd"))]
                    {
                        kernels::drprecpc_calc_par(s);
                        kernels::drprecpc_app_par(s);
                    }
                }
            }
        }
        {
            let _p = tel.phase("sponge");
            let _k = pscope(&self.perf, "sponge");
            match self.path {
                ExecPath::Serial => kernels::apply_sponge(s),
                ExecPath::Parallel => kernels::apply_sponge_par(s),
                ExecPath::Simd => {
                    #[cfg(feature = "simd")]
                    kernels::simd::apply_sponge_simd(s);
                    #[cfg(not(feature = "simd"))]
                    kernels::apply_sponge_par(s);
                }
            }
        }
        self.compression_roundtrip();
    }

    /// The §6.5 16-bit inter-step storage, simulated as an encode/decode
    /// round trip per wavefield. Self-calibrating codecs come from the
    /// binade-bucket cache (see [`CompressionSlot`]); in parallel mode
    /// the max-abs calibration scans run over the pool and the nine
    /// round trips fan out per field (each itself chunked, so the fan-out
    /// parallelizes whether the pool has 2 threads or 32).
    fn compression_roundtrip(&mut self) {
        let Some(mut slots) = self.compression.take() else { return };
        let tel = self.telemetry.clone();
        let parallel = self.path.is_parallel();
        {
            let _p = tel.phase("compression");
            let _k = pscope(&self.perf, "compression");
            // Pass 1: resolve this step's codec per field (the
            // self-calibration scans read the fields immutably).
            let (mut rebuilds, mut reuses) = (0u64, 0u64);
            let codecs: Vec<Codec> = slots
                .iter_mut()
                .map(|slot| {
                    if slot.self_calibrating() {
                        let field = wavefield(&self.state, slot.idx);
                        let max_abs = if parallel {
                            sw_compress::par::field_max_abs_par(field)
                        } else {
                            field.max_abs()
                        };
                        let (codec, rebuilt) = slot.refresh(max_abs);
                        if rebuilt {
                            rebuilds += 1;
                        } else {
                            reuses += 1;
                        }
                        codec
                    } else {
                        slot.base
                    }
                })
                .collect();
            if tel.is_enabled() {
                tel.add("compress.codec_rebuilds", rebuilds);
                tel.add("compress.codec_reuses", reuses);
            }
            // Pass 2: the round trips. When the health monitor wants a
            // compression sample for the step that is completing, every
            // path routes through the fused error-stats round trips —
            // bit-identical stored values (same scalar codec calls), so
            // physics does not depend on whether health is on.
            let health_sampling = self
                .health
                .as_ref()
                .is_some_and(|m| m.wants_compression_sample(self.step_count + 1));
            if health_sampling {
                let samples: Vec<(usize, sw_compress::errstats::RoundtripError)> = if parallel
                    && !tel.is_enabled()
                {
                    let s = &mut self.state;
                    let fields = [
                        &mut s.u, &mut s.v, &mut s.w, &mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy,
                        &mut s.xz, &mut s.yz,
                    ];
                    let work: Vec<(&mut Field3, Codec, usize)> = fields
                        .into_iter()
                        .enumerate()
                        .filter_map(|(i, f)| {
                            slots.iter().position(|s| s.idx == i).map(|p| (f, codecs[p], i))
                        })
                        .collect();
                    work.into_par_iter()
                        .map(|(field, codec, idx)| {
                            let stats = sw_compress::errstats::roundtrip_err_stats_par(
                                &codec,
                                field.raw_mut(),
                            );
                            (idx, stats)
                        })
                        .collect()
                } else {
                    let mut out = Vec::with_capacity(slots.len());
                    for (slot, codec) in slots.iter().zip(&codecs) {
                        let field = wavefield_mut(&mut self.state, slot.idx);
                        let t0 = tel.is_enabled().then(Instant::now);
                        let stats = if parallel {
                            sw_compress::errstats::roundtrip_err_stats_par(codec, field.raw_mut())
                        } else {
                            sw_compress::errstats::roundtrip_err_stats(codec, field.raw_mut())
                        };
                        if let Some(t0) = t0 {
                            let n = field.raw().len();
                            tel.record_duration("compress.roundtrip", t0.elapsed().as_secs_f64());
                            tel.add("compress.raw_bytes", (n * 4) as u64);
                            tel.add("compress.encoded_bytes", (n * 2) as u64);
                            tel.gauge("compress.achieved_ratio", 2.0);
                            tel.gauge("compress.max_roundtrip_error", stats.max_abs_err);
                        }
                        out.push((slot.idx, stats));
                    }
                    out
                };
                if let Some(monitor) = &mut self.health {
                    for (idx, stats) in samples {
                        monitor.record_compression(COMPRESSED_FIELDS[idx], stats, &tel);
                    }
                }
            } else if parallel && !tel.is_enabled() {
                let s = &mut self.state;
                let fields = [
                    &mut s.u, &mut s.v, &mut s.w, &mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy,
                    &mut s.xz, &mut s.yz,
                ];
                let work: Vec<(&mut Field3, Codec)> = fields
                    .into_iter()
                    .enumerate()
                    .filter_map(|(i, f)| {
                        slots.iter().position(|s| s.idx == i).map(|p| (f, codecs[p]))
                    })
                    .collect();
                work.into_par_iter().for_each(|(field, codec)| {
                    sw_compress::par::roundtrip_par(&codec, field.raw_mut());
                });
            } else {
                for (slot, codec) in slots.iter().zip(&codecs) {
                    let field = wavefield_mut(&mut self.state, slot.idx);
                    if tel.is_enabled() {
                        roundtrip_compress_instrumented(field, codec, &tel, parallel);
                    } else {
                        roundtrip_compress(field, codec);
                    }
                }
            }
        }
        self.compression = Some(slots);
    }

    /// Recording, flop accounting, checkpointing, clock advance.
    fn finish_step(&mut self) {
        let tel = self.telemetry.clone();
        if self.resident.is_some() {
            self.finish_step_resident(&tel);
            return;
        }
        if self.fused.is_some() {
            // Output boundary: the recorders below read scalar
            // velocities every step; checkpoints and health probes also
            // read the stresses, so refresh those only when something
            // this step will consume them.
            let stress = self.health.is_some() || self.restart.due(self.step_count + 1);
            self.sync_fused(stress);
        }
        {
            let _p = tel.phase("record");
            let s = &self.state;
            self.seismo.record(&s.u, &s.v, &s.w);
            self.pgv.record(&s.u, &s.v);
        }
        let s = &self.state;
        let flops_before = self.flops.flops;
        self.flops.charge_step(s.dims, s.options.nonlinear, s.options.attenuation);
        tel.sample("step.flops", self.flops.flops - flops_before);
        if let Some(arch) = &self.arch {
            arch.charge(&tel);
        }
        if let (Some(p), Some(charges)) = (self.perf.as_deref(), &self.perf_charges) {
            for k in &charges.kernels {
                p.charge(k.name, k.cells, k.flops, k.bytes);
            }
        }
        self.time += s.dt;
        self.step_count += 1;
        if self.next_snapshot < self.snapshot_times.len()
            && self.time >= self.snapshot_times[self.next_snapshot]
        {
            let s = &self.state;
            self.snapshots.capture(self.time, &s.u, &s.v, &s.w);
            self.next_snapshot += 1;
        }
        if self.restart.due(self.step_count) {
            // A scoped guard would hold a borrow across the &mut self
            // calls below, so the checkpoint wall is timed by hand.
            let t0 = self.perf.is_some().then(Instant::now);
            {
                let _p = tel.phase("checkpoint");
                let ckpt = self.make_checkpoint();
                if tel.is_enabled() || self.perf.is_some() {
                    let bytes: usize = ckpt.fields.iter().map(|(_, f)| f.raw().len() * 4).sum();
                    if tel.is_enabled() {
                        tel.add("io.checkpoint_bytes", bytes as u64);
                        tel.add("io.checkpoints", 1);
                        tel.event(
                            "io.checkpoint",
                            &[("bytes", bytes as f64), ("step", self.step_count as f64)],
                        );
                    }
                    if let Some(p) = self.perf.as_deref() {
                        p.charge("checkpoint", self.state.dims.len() as u64, 0.0, bytes as u64);
                    }
                }
                self.persist_checkpoint(&ckpt, &tel);
                self.checkpoints.push(ckpt);
            }
            if let (Some(p), Some(t0)) = (self.perf.as_deref(), t0) {
                p.add_wall("checkpoint", t0.elapsed().as_secs_f64());
            }
        }
        if let Some(monitor) = &mut self.health {
            monitor.check(&self.state, self.step_count, self.time, self.path.is_parallel(), &tel);
        }
    }

    /// [`Simulation::finish_step`] for the compressed-resident path:
    /// recorders tap decoded cells, the decode/encode traffic lands in
    /// its own perf-ledger rows, and the health probe is built from the
    /// step's encode statistics instead of scanning f32 arrays (which are
    /// detached in this mode).
    fn finish_step_resident(&mut self, tel: &Telemetry) {
        {
            let _p = tel.phase("record");
            let engine = self.resident.as_ref().expect("resident finish without engine");
            self.seismo.record_with(|ix, iy| {
                [
                    engine.sample(0, ix, iy, 0),
                    engine.sample(1, ix, iy, 0),
                    engine.sample(2, ix, iy, 0),
                ]
            });
            self.pgv.record_with(|x, y| (engine.sample(0, x, y, 0), engine.sample(1, x, y, 0)));
        }
        let s = &self.state;
        let flops_before = self.flops.flops;
        self.flops.charge_step(s.dims, s.options.nonlinear, s.options.attenuation);
        tel.sample("step.flops", self.flops.flops - flops_before);
        if let Some(arch) = &self.arch {
            arch.charge(tel);
        }
        if let (Some(p), Some(charges)) = (self.perf.as_deref(), &self.perf_charges) {
            for k in &charges.kernels {
                p.charge(k.name, k.cells, k.flops, k.bytes);
            }
        }
        if let Some(p) = self.perf.as_deref() {
            let rp = self.resident.as_ref().expect("resident finish without engine").perf();
            // DMA convention: each decoded/encoded value moves a 2-byte
            // code on one side and a 4-byte float on the other.
            p.add_wall("resident_decode", rp.decode_s);
            p.charge("resident_decode", rp.decoded_cells, 0.0, rp.decoded_cells * 6);
            p.add_wall("resident_encode", rp.encode_s);
            p.charge("resident_encode", rp.encoded_cells, 0.0, rp.encoded_cells * 6);
        }
        self.time += s.dt;
        self.step_count += 1;
        // Surface snapshots are rejected at validation in this mode.
        if self.restart.due(self.step_count) {
            let t0 = self.perf.is_some().then(Instant::now);
            {
                let _p = tel.phase("checkpoint");
                let ckpt = self.make_checkpoint();
                if tel.is_enabled() || self.perf.is_some() {
                    let bytes: usize = ckpt.fields.iter().map(|(_, f)| f.raw().len() * 4).sum();
                    if tel.is_enabled() {
                        tel.add("io.checkpoint_bytes", bytes as u64);
                        tel.add("io.checkpoints", 1);
                        tel.event(
                            "io.checkpoint",
                            &[("bytes", bytes as f64), ("step", self.step_count as f64)],
                        );
                    }
                    if let Some(p) = self.perf.as_deref() {
                        p.charge("checkpoint", self.state.dims.len() as u64, 0.0, bytes as u64);
                    }
                }
                self.persist_checkpoint(&ckpt, tel);
                self.checkpoints.push(ckpt);
            }
            if let (Some(p), Some(t0)) = (self.perf.as_deref(), t0) {
                p.add_wall("checkpoint", t0.elapsed().as_secs_f64());
            }
        }
        if let Some(monitor) = &mut self.health {
            let engine = self.resident.as_ref().expect("resident finish without engine");
            if monitor.wants_compression_sample(self.step_count) {
                for (name, stats) in engine.step_stats() {
                    if stats.count > 0 || stats.nonfinite > 0 {
                        monitor.record_encode_stats(name, stats, tel);
                    }
                }
            }
            if monitor.wants_probe(self.step_count) {
                let probe = resident_probe(engine, self.step_count, self.time, self.rank);
                let cfl = CflInfo { dt: self.state.dt, dt_stable: self.state.dt_stable };
                monitor.check_probe(probe, cfl, tel);
            }
        }
    }

    /// Refresh the scalar wavefields from the fused layout (no-op when
    /// the simulation does not run fused). Velocities are always
    /// written back; stresses only when `stress` is set. External
    /// callers reading [`Simulation::state`] mid-run — or calling
    /// [`Simulation::make_checkpoint`] / [`Simulation::collect_stats`]
    /// outside the step loop — should call `sync_fused(true)` first.
    pub fn sync_fused(&mut self, stress: bool) {
        let Some(w) = self.fused.take() else { return };
        w.gather_velocities(&mut self.state);
        if stress {
            w.gather_stress(&mut self.state);
        }
        self.fused = Some(w);
    }

    /// Write a due checkpoint into the durable store (when one is
    /// configured). A failed write is a telemetry-counted warning, not a
    /// run abort — the campaign continues on the previous generation.
    /// An injected mid-write kill latches [`Self::fault_kill`] so
    /// checked stepping dies like the real process would.
    fn persist_checkpoint(&mut self, ckpt: &Checkpoint, tel: &Telemetry) {
        let Some(store) = &self.store else { return };
        let t0 = tel.is_enabled().then(Instant::now);
        match store.write_rank(self.step_count, self.rank, ckpt) {
            Ok(bytes) => {
                tel.add("io.checkpoint_disk_bytes", bytes);
                if self.store_commit {
                    match store.commit_generation(self.step_count, self.time, 1) {
                        Ok(()) => tel.add("io.checkpoint_generations", 1),
                        Err(_) => tel.add("io.checkpoint_failures", 1),
                    }
                }
            }
            Err(WriteError::Killed) => {
                self.fault_kill = Some(KilledError { step: self.step_count, rank: self.rank });
            }
            Err(WriteError::Io(_)) => tel.add("io.checkpoint_failures", 1),
        }
        if let Some(t0) = t0 {
            tel.record_duration("io.checkpoint_write", t0.elapsed().as_secs_f64());
        }
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Advance one step, surfacing a fatal health verdict or an
    /// injected kill as an error. A simulation whose watchdog has
    /// already gone fatal (or that has already been killed) refuses to
    /// step further.
    // The diagnosis is wide (field name, grid index, cause, bundle
    // path) but constructed at most once per run, on the abort path;
    // boxing it would complicate the public API for a cold error.
    #[allow(clippy::result_large_err)]
    pub fn step_checked(&mut self) -> Result<(), RunError> {
        if let Some(k) = &self.fault_kill {
            return Err(RunError::Killed(k.clone()));
        }
        if let Some(e) = self.health_failure() {
            return Err(RunError::Unstable(e.clone()));
        }
        // A `slow` fault stretches the step it is due for (step_count is
        // pre-increment here, so +1 matches the post-step numbering the
        // kill check uses) by sleeping a fraction of the step's own
        // measured wall time. Sleeping never touches the numerics, so
        // outputs stay bit-identical to a healthy run.
        let slow = self.fault.as_ref().and_then(|p| p.slow_due(self.step_count + 1, self.rank));
        let slow_t0 = slow.map(|_| Instant::now());
        self.step();
        if let (Some(frac), Some(t0)) = (slow, slow_t0) {
            std::thread::sleep(std::time::Duration::from_secs_f64(
                t0.elapsed().as_secs_f64() * frac,
            ));
        }
        if let Some(e) = self.health_failure() {
            return Err(RunError::Unstable(e.clone()));
        }
        // An armed plan kills the run *after* the step completes — the
        // store then holds exactly the generations committed before the
        // "crash", like a real `kill -9` between steps. A mid-write kill
        // (`killwrite`) latches inside `persist_checkpoint` instead.
        if let Some(plan) = &self.fault {
            if plan.kill_due(self.step_count, self.rank) {
                self.fault_kill = Some(KilledError { step: self.step_count, rank: self.rank });
            }
        }
        match &self.fault_kill {
            Some(k) => Err(RunError::Killed(k.clone())),
            None => Ok(()),
        }
    }

    /// Run up to `n` steps, stopping at the watchdog's first fatal
    /// verdict or the fault plan's first kill. Without a health config
    /// or fault plan it is equivalent to [`Simulation::run`].
    #[allow(clippy::result_large_err)] // cold abort-path error; see step_checked
    pub fn run_checked(&mut self, n: usize) -> Result<(), RunError> {
        if self.health.is_some() || self.fault.is_some() || self.fault_kill.is_some() {
            for _ in 0..n {
                self.step_checked()?;
            }
        } else {
            self.run(n);
        }
        Ok(())
    }

    /// The health monitor's report so far (`None` when the simulation
    /// runs without health monitoring).
    pub fn health(&self) -> Option<HealthReport> {
        self.health.as_ref().map(|m| m.report())
    }

    /// The latched fatal verdict, if the watchdog has raised one.
    pub fn health_failure(&self) -> Option<&UnstableError> {
        self.health.as_ref().and_then(|m| m.failure())
    }

    /// Snapshot the full dynamic state. In parallel mode the sixteen
    /// field clones fan out over the pool (order-preserving map, so the
    /// checkpoint layout is identical either way).
    pub fn make_checkpoint(&self) -> Checkpoint {
        if let Some(engine) = &self.resident {
            // Compressed-resident runs checkpoint decompressed f32 fields
            // (same schema as full mode, so either mode can restore the
            // other's checkpoints) plus a bucket sidecar that lets a
            // compressed resume re-encode byte-identically.
            let mut fields: Vec<(String, Field3)> = Vec::with_capacity(RESIDENT_FIELDS.len() + 2);
            fields.push((SIDECAR_FIELD.to_string(), engine.sidecar()));
            for (i, name) in RESIDENT_FIELDS.iter().enumerate() {
                fields.push((name.to_string(), engine.to_field(i)));
            }
            fields.push(("eqp".to_string(), self.state.eqp.clone()));
            return Checkpoint {
                step: self.step_count,
                time: self.time,
                flops: self.flops.flops,
                fields,
                seismograms: self.seismo.seismograms().to_vec(),
                pgv: Some((self.pgv.nx(), self.pgv.ny(), self.pgv.pgv.clone())),
            };
        }
        let mut sources: Vec<(String, &Field3)> = Vec::new();
        for (i, name) in COMPRESSED_FIELDS.iter().enumerate() {
            sources.push((name.to_string(), wavefield(&self.state, i)));
        }
        for (i, r) in self.state.r.iter().enumerate() {
            sources.push((format!("r{}", i + 1), r));
        }
        sources.push(("eqp".to_string(), &self.state.eqp));
        let fields: Vec<(String, Field3)> = if self.path.is_parallel() {
            sources.into_par_iter().map(|(name, f)| (name, f.clone())).collect()
        } else {
            sources.into_iter().map(|(name, f)| (name, f.clone())).collect()
        };
        Checkpoint {
            step: self.step_count,
            time: self.time,
            flops: self.flops.flops,
            fields,
            seismograms: self.seismo.seismograms().to_vec(),
            pgv: Some((self.pgv.nx(), self.pgv.ny(), self.pgv.pgv.clone())),
        }
    }

    /// Restore the dynamic state from a checkpoint.
    ///
    /// Fails with [`RestoreError`] — leaving the state partially updated —
    /// when the checkpoint names an unknown field, carries a mismatched
    /// mesh, or references a memory variable this run does not have.
    pub fn restore(&mut self, ckpt: &Checkpoint) -> Result<(), RestoreError> {
        if self.resident.is_some() {
            return self.restore_resident(ckpt);
        }
        let dims = self.state.dims;
        for (name, field) in &ckpt.fields {
            if name == SIDECAR_FIELD {
                // A compressed-resident checkpoint's bucket sidecar; the
                // fields themselves are stored decompressed, so a full-mode
                // run restores them directly and the sidecar is moot.
                continue;
            }
            if field.dims() != dims {
                return Err(RestoreError::DimsMismatch {
                    field: name.clone(),
                    checkpoint: field.dims(),
                    simulation: dims,
                });
            }
            if let Some(i) = COMPRESSED_FIELDS.iter().position(|n| n == name) {
                *wavefield_mut(&mut self.state, i) = field.clone();
            } else if let Some(rest) = name.strip_prefix('r') {
                let index: usize =
                    rest.parse().map_err(|_| RestoreError::UnknownField { field: name.clone() })?;
                if index == 0 || index > self.state.r.len() {
                    return Err(RestoreError::MemoryVariableOutOfRange {
                        index,
                        available: self.state.r.len(),
                    });
                }
                self.state.r[index - 1] = field.clone();
            } else if name == "eqp" {
                self.state.eqp = field.clone();
            } else {
                return Err(RestoreError::UnknownField { field: name.clone() });
            }
        }
        self.restore_observables(ckpt)
    }

    /// [`Simulation::restore`] for the compressed-resident path: every
    /// dynamic field is re-encoded into its 16-bit store. With the bucket
    /// sidecar a compressed-mode checkpoint restores byte-identically;
    /// a full-mode checkpoint (no sidecar) re-derives buckets from the
    /// content.
    fn restore_resident(&mut self, ckpt: &Checkpoint) -> Result<(), RestoreError> {
        let dims = self.state.dims;
        let sidecar = ckpt.fields.iter().find(|(n, _)| n == SIDECAR_FIELD).map(|(_, f)| f);
        for (name, field) in &ckpt.fields {
            if name == SIDECAR_FIELD {
                continue;
            }
            if field.dims() != dims {
                return Err(RestoreError::DimsMismatch {
                    field: name.clone(),
                    checkpoint: field.dims(),
                    simulation: dims,
                });
            }
            let engine = self.resident.as_mut().expect("resident restore without engine");
            if engine.restore_field(name, field, sidecar) {
                continue;
            }
            if name == "eqp" {
                self.state.eqp = field.clone();
            } else {
                return Err(RestoreError::UnknownField { field: name.clone() });
            }
        }
        self.restore_observables(ckpt)
    }

    /// Recorder/accumulator tail shared by both restore paths, so a
    /// resumed run's seismograms, hazard map and flop totals are
    /// byte-identical to an uninterrupted one. (Missing in pre-v2
    /// snapshots → left at whatever the simulation already holds.)
    fn restore_observables(&mut self, ckpt: &Checkpoint) -> Result<(), RestoreError> {
        let dims = self.state.dims;
        self.step_count = ckpt.step;
        self.time = ckpt.time;
        self.flops = FlopCounter { flops: ckpt.flops, steps: ckpt.step };
        self.seismo.restore_samples(&ckpt.seismograms);
        if let Some((nx, ny, pgv)) = &ckpt.pgv {
            if (*nx, *ny) != (dims.nx, dims.ny) {
                return Err(RestoreError::DimsMismatch {
                    field: "pgv".to_string(),
                    checkpoint: Dims3::new(*nx, *ny, 1),
                    simulation: Dims3::new(dims.nx, dims.ny, 1),
                });
            }
            self.pgv = PgvRecorder::from_parts(*nx, *ny, pgv.clone());
        }
        // Skip snapshots whose trigger time the restored clock has
        // already passed — a resumed run must not re-emit them.
        self.next_snapshot = self.snapshot_times.iter().filter(|t| **t <= self.time).count();
        // The fused layout mirrors the scalar wavefields the checkpoint
        // just overwrote — rebuild it so the next step reads the
        // restored values.
        if self.fused.is_some() {
            self.fused = Some(FusedWavefield::from_state(&self.state));
        }
        Ok(())
    }

    /// Collect per-wavefield statistics (the Fig. 5a coarse-run product).
    /// Parallel mode scans each field with the exact parallel reduction
    /// (`FieldStats::of_field_par`) — same statistics, any thread count.
    pub fn collect_stats(&self) -> Vec<(String, FieldStats)> {
        let scan =
            if self.path.is_parallel() { FieldStats::of_field_par } else { FieldStats::of_field };
        if let Some(engine) = &self.resident {
            return COMPRESSED_FIELDS
                .iter()
                .enumerate()
                .map(|(i, name)| (name.to_string(), scan(&engine.to_field(i))))
                .collect();
        }
        COMPRESSED_FIELDS
            .iter()
            .enumerate()
            .map(|(i, name)| (name.to_string(), scan(wavefield(&self.state, i))))
            .collect()
    }
}

/// Remap coarse-run statistics (Fig. 5a) to a finer mesh: the stress
/// arrays scale with the source cell volume ratio `(dx_c/dx_f)^3`
/// (stress-glut injection density), while velocity amplitudes converge
/// with resolution and keep their recorded ranges.
pub fn rescale_coarse_stats(
    stats: Vec<(String, FieldStats)>,
    dx_coarse: f64,
    dx_fine: f64,
) -> Vec<(String, FieldStats)> {
    let vol_ratio = (dx_coarse / dx_fine).powi(3) as f32;
    stats
        .into_iter()
        .map(|(name, s)| {
            let scaled = match name.as_str() {
                "xx" | "yy" | "zz" | "xy" | "xz" | "yz" => s.scaled(vol_ratio),
                _ => s,
            };
            (name, scaled)
        })
        .collect()
}

fn roundtrip_compress(field: &mut Field3, codec: &Codec) {
    for v in field.raw_mut() {
        *v = codec.decode(codec.encode(*v));
    }
}

/// The telemetry-enabled round trip: identical values to
/// [`roundtrip_compress`], plus `compress.*` timers, byte counters and the
/// max round-trip error gauge. With `parallel` the encode and decode
/// loops run over the pool (bit-identical; the max-error reduction is
/// exact because `max` is order-independent).
fn roundtrip_compress_instrumented(
    field: &mut Field3,
    codec: &Codec,
    tel: &Telemetry,
    parallel: bool,
) {
    let n = field.raw().len();
    let t0 = Instant::now();
    let encoded: Vec<u16> = if parallel {
        let mut buf = vec![0u16; n];
        sw_compress::par::encode_par(codec, field.raw(), &mut buf);
        buf
    } else {
        field.raw().iter().map(|v| codec.encode(*v)).collect()
    };
    tel.record_duration("compress.encode", t0.elapsed().as_secs_f64());
    let t1 = Instant::now();
    let max_err = if parallel {
        sw_compress::par::decode_max_err_par(codec, &encoded, field.raw_mut())
    } else {
        let mut max_err = 0.0f64;
        for (v, e) in field.raw_mut().iter_mut().zip(&encoded) {
            let decoded = codec.decode(*e);
            let err = f64::from((decoded - *v).abs());
            if err > max_err {
                max_err = err;
            }
            *v = decoded;
        }
        max_err
    };
    tel.record_duration("compress.decode", t1.elapsed().as_secs_f64());
    tel.add("compress.raw_bytes", (n * 4) as u64);
    tel.add("compress.encoded_bytes", (n * 2) as u64);
    tel.gauge("compress.achieved_ratio", 2.0);
    tel.gauge("compress.max_roundtrip_error", max_err);
    tel.event(
        "compress.roundtrip",
        &[("raw_bytes", (n * 4) as f64), ("encoded_bytes", (n * 2) as f64)],
    );
}

/// What a resume restored: the generation's step/time and any newer
/// generations that were skipped as corrupt or incomplete.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeInfo {
    /// Step of the generation restored.
    pub step: u64,
    /// Simulated time of the generation restored.
    pub time: f64,
    /// Newer generations skipped, newest first: `(step, reason)`.
    pub skipped: Vec<(u64, String)>,
}

/// Output of a multi-rank run: merged observables.
#[derive(Debug, Clone)]
pub struct MultiRankOutput {
    /// All stations' seismograms, in the order the config listed them,
    /// with global surface coordinates (stable across decompositions).
    pub seismograms: Vec<sw_io::recorder::Seismogram>,
    /// Global PGV map.
    pub pgv: PgvRecorder,
    /// Total useful flops.
    pub flops: f64,
    /// Health records merged across ranks, sorted by `(step, rank)`
    /// (empty when the config carries no health monitoring).
    pub health: Vec<HealthRecord>,
    /// Timestep in seconds (CFL-derived, identical on every rank).
    pub dt: f64,
}

/// Run `config` on an `Mx × My` rank grid; observables are merged and the
/// wavefield evolution is bit-identical to the single-rank run.
///
/// The global config is validated once up front; per-rank telemetry
/// aggregates into the shared handle, with halo-fabric timings reported
/// per rank (`halo.*.rankN`).
///
/// With health monitoring enabled, all ranks probe at the same steps
/// and vote through a collective stop barrier, so a fatal verdict on
/// any rank aborts every rank at the same step — no rank is left
/// blocking in a halo exchange. The error carries the earliest-failing
/// rank's diagnosis.
#[allow(clippy::result_large_err)] // cold abort-path error; see Simulation::step_checked
pub fn run_multirank(
    model: &(dyn VelocityModel + Sync),
    config: &SimConfig,
    grid: RankGrid,
) -> Result<MultiRankOutput, RunError> {
    config.validate()?;
    // Halo exchange reads and writes the scalar wavefields; a fused
    // rank would exchange stale planes.
    if config.fused && grid.len() > 1 {
        return Err(ConfigError::FusedUnsupported { feature: "multirank halo exchange" }.into());
    }
    // Halo exchange (and the 1-rank degenerate case of this runner)
    // assumes f32 wavefield arrays, which the compressed-resident mode
    // detaches.
    if config.resident == ResidentMode::Compressed16 {
        return Err(ConfigError::ResidentUnsupported { feature: "multirank halo exchange" }.into());
    }
    let global = config.dims;
    let telemetry = config.telemetry.clone();
    let partitioner = SourcePartitioner::new(grid.mx, grid.my, global.nx, global.ny);
    let per_rank_sources = partitioner.partition(&config.sources);
    let mut exchanger = HaloExchanger::standard().with_telemetry(telemetry.clone());
    if let Some(tl) = &config.timeline {
        exchanger = exchanger.with_timeline(Arc::clone(tl));
    }
    // All ranks stream into one shared JSONL log (per-line writes are
    // atomic); opening it per rank would truncate it repeatedly.
    let shared_health_log: Option<Arc<HealthLog>> = match &config.health {
        Some(h) if config.shared_health_log.is_none() => {
            h.log_path.as_deref().and_then(|p| HealthLog::create(p).ok().map(Arc::new))
        }
        _ => config.shared_health_log.clone(),
    };
    let health_stride = config.health.as_ref().map(|h| h.effective_stride());
    let stop = StopBarrier::new(grid.len());
    // Durable checkpointing: one shared store for all ranks. Each rank
    // writes its own file from `finish_step`; rank 0 commits the
    // generation centrally, behind a barrier, only once every rank's
    // write has landed — a crash can leave orphan rank files but never
    // a manifest entry pointing at a half-written generation.
    let store: Option<Arc<CheckpointStore>> = if let Some(s) = &config.shared_store {
        Some(Arc::clone(s))
    } else if let Some(dir) = &config.checkpoint_dir {
        let s = if config.resume {
            CheckpointStore::open(dir, config.checkpoint_keep)
        } else {
            CheckpointStore::create(dir, config.checkpoint_keep)
        }
        .map_err(|e| ConfigError::CheckpointDir {
            path: dir.display().to_string(),
            detail: e.to_string(),
        })?;
        Some(Arc::new(s.with_fault(config.fault.clone())))
    } else {
        None
    };
    // Resume is decided centrally, before any rank thread starts, so
    // every rank restores the *same* generation even when fallback
    // skipped a corrupt newer one.
    let restored: Option<RestoredGeneration> = if config.resume {
        let store = store.as_ref().ok_or_else(|| RunError::ResumeFailed {
            detail: "no checkpoint directory configured".to_string(),
        })?;
        let r = store
            .restore_newest_valid(grid.len())
            .map_err(|e| RunError::ResumeFailed { detail: e.to_string() })?;
        for (rank, ckpt) in r.checkpoints.iter().enumerate() {
            let (_, _, local) = grid.local_span(rank, global);
            if let Some((name, f)) = ckpt.fields.first() {
                if f.dims() != local {
                    return Err(RunError::ResumeFailed {
                        detail: format!(
                            "rank {rank} checkpoint field `{name}` is {}x{}x{} but the rank \
                             subdomain is {}x{}x{} — resume with the same rank grid",
                            f.dims().nx,
                            f.dims().ny,
                            f.dims().nz,
                            local.nx,
                            local.ny,
                            local.nz
                        ),
                    });
                }
            }
        }
        Some(r)
    } else {
        None
    };
    let start_step = restored.as_ref().map_or(0, |r| r.step as usize);
    // Rank-death vote (None when no plan is armed) and the generation
    // commit barrier.
    let fault_vote = FaultVote::new(grid.len(), &config.fault);
    let commit = Barrier::new(grid.len());
    let restart = RestartController { interval: config.checkpoint_interval };
    let results = run_ranks(grid, |comm| {
        // Each rank thread records into its own trace lane (one process
        // row per rank in the exported Chrome trace).
        telemetry.tracer().bind_lane(comm.rank as u64, &format!("rank{}", comm.rank));
        let (x0, y0, local) = grid.local_span(comm.rank, global);
        let (px, py) = grid.coords_of(comm.rank);
        let mut cfg = config.clone();
        cfg.dims = local;
        cfg.origin = (
            config.origin.0 + x0 as f64 * config.dx,
            config.origin.1 + y0 as f64 * config.dx,
            config.origin.2,
        );
        cfg.options.global_span = Some((global, x0, y0));
        cfg.sources = per_rank_sources[px * grid.my + py].clone();
        cfg.stations = config
            .stations
            .iter()
            .filter(|s| s.ix >= x0 && s.ix < x0 + local.nx && s.iy >= y0 && s.iy < y0 + local.ny)
            .map(|s| Station { name: s.name.clone(), ix: s.ix - x0, iy: s.iy - y0 })
            .collect();
        cfg.rank = comm.rank;
        cfg.shared_health_log = shared_health_log.clone();
        if let Some(h) = &mut cfg.health {
            h.log_path = None;
        }
        cfg.shared_store = store.clone();
        // Generations are committed centrally below, once ALL ranks
        // have written — a per-rank commit would publish a generation
        // some ranks have not finished writing yet.
        cfg.store_commit = false;
        let mut sim = Simulation::new(model, &cfg)
            .expect("rank-local config is derived from the validated global config");
        if let Some(r) = &restored {
            sim.restore(&r.checkpoints[comm.rank])
                .expect("rank checkpoint dims were validated against the rank grid");
            if comm.rank == 0 {
                sim.note_resume(r);
            }
        }
        let tel = telemetry.clone();
        // Modeled halo traffic per step for the perf ledger: this rank
        // sends its width-HALO_WIDTH boundary planes of all 9 wavefields
        // to each neighbour (4 bytes per float), matching the
        // exchanger's own byte accounting.
        let halo_model = sim.perf.is_some().then(|| {
            let hw = sw_grid::HALO_WIDTH as f64;
            let x_neighbors = ((px > 0) as usize + (px + 1 < grid.mx) as usize) as f64;
            let y_neighbors = ((py > 0) as usize + (py + 1 < grid.my) as usize) as f64;
            let planes = x_neighbors * (local.ny * local.nz) as f64
                + y_neighbors * (local.nx * local.nz) as f64;
            let floats = 9.0 * hw * planes;
            ((hw * planes) as u64, (floats * 4.0) as u64)
        });
        let timeline = config.timeline.clone();
        for _ in start_step..config.steps {
            let start =
                (tel.is_enabled() || sim.perf.is_some() || timeline.is_some()).then(Instant::now);
            // A `slow` fault stretches this rank's compute (step numbering
            // is post-step, hence +1); the sleep lands inside the stress
            // phase's timing window below, so the timeline attributes the
            // skew to this rank's compute — exactly what a real straggler
            // looks like to its neighbors.
            let slow = sim.fault.as_ref().and_then(|p| p.slow_due(sim.step_count + 1, comm.rank));
            let slow_t0 = slow.map(|_| Instant::now());
            let _step = tel.phase("step");
            // stress halos feed the velocity stencils
            {
                let _h = tel.phase("halo_stress");
                let _k = pscope(&sim.perf, "halo");
                let s = &mut sim.state;
                exchanger.exchange(
                    comm,
                    &mut [&mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy, &mut s.xz, &mut s.yz],
                );
            }
            let t_vel = timeline.as_ref().map(|_| Instant::now());
            sim.velocity_half();
            if let (Some(tl), Some(t)) = (&timeline, t_vel) {
                tl.record_phase(comm.rank, tl_phase::VELOCITY, t.elapsed().as_secs_f64());
            }
            // velocity halos feed the stress stencils
            {
                let _h = tel.phase("halo_velocity");
                let _k = pscope(&sim.perf, "halo");
                let s = &mut sim.state;
                exchanger.exchange(comm, &mut [&mut s.u, &mut s.v, &mut s.w]);
            }
            let t_str = timeline.as_ref().map(|_| Instant::now());
            sim.stress_half();
            if let (Some(frac), Some(t0)) = (slow, slow_t0) {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    t0.elapsed().as_secs_f64() * frac,
                ));
            }
            if let (Some(tl), Some(t)) = (&timeline, t_str) {
                tl.record_phase(comm.rank, tl_phase::STRESS, t.elapsed().as_secs_f64());
            }
            let t_fin = timeline.as_ref().map(|_| Instant::now());
            sim.finish_step();
            if let (Some(tl), Some(t)) = (&timeline, t_fin) {
                tl.record_phase(comm.rank, tl_phase::FINISH, t.elapsed().as_secs_f64());
            }
            if let (Some(p), Some((cells, bytes))) = (sim.perf.as_deref(), halo_model) {
                p.charge("halo", cells, 0.0, bytes);
            }
            drop(_step);
            if let Some(start) = start {
                let wall = start.elapsed().as_secs_f64();
                tel.sample("step.wall_s", wall);
                // One rank reports step walls (the counts are shared;
                // duplicate samples would skew the percentiles).
                if comm.rank == 0 {
                    if let Some(p) = sim.perf.as_deref() {
                        p.note_step(sim.step_count, wall);
                    }
                }
                // The timeline keeps per-rank step walls, so every rank
                // reports (rank 0's notes also drive the heartbeats).
                if let Some(tl) = &timeline {
                    tl.note_step(comm.rank, sim.step_count, wall);
                }
            }
            // Rank-death vote, BEFORE the commit barrier: a step on
            // which any rank dies must not commit its generation — the
            // on-disk store then looks exactly as if `kill -9` had hit
            // the process at that step. `fault_kill` folds in mid-write
            // kills latched by the store during `finish_step`.
            if let Some(vote) = &fault_vote {
                let mut my_kill = sim.fault_kill.is_some();
                if !my_kill && vote.is_victim(sim.step_count, comm.rank) {
                    sim.fault_kill = Some(KilledError { step: sim.step_count, rank: comm.rank });
                    my_kill = true;
                }
                if vote.vote(my_kill) {
                    break;
                }
            }
            // Commit the generation once every rank's write has landed.
            if let Some(s) = store.as_ref().filter(|_| restart.due(sim.step_count)) {
                commit.wait();
                if comm.rank == 0 {
                    match s.commit_generation(sim.step_count, sim.time, grid.len()) {
                        Ok(()) => tel.add("io.checkpoint_generations", 1),
                        Err(_) => tel.add("io.checkpoint_failures", 1),
                    }
                }
                // Hold all ranks until the manifest is durable, so no
                // rank races into the next step's writes mid-rewrite.
                commit.wait();
            }
            // Stop-vote at probe steps: every rank probes at the same
            // step numbers, so every rank reaches the barrier, and a
            // fatal verdict anywhere pulls all ranks out of the loop
            // together before the next halo exchange.
            if let Some(stride) = health_stride {
                if sim.step_count.is_multiple_of(stride)
                    && stop.vote(sim.health_failure().is_some())
                {
                    break;
                }
            }
        }
        (x0, y0, local, sim)
    });
    // Merge observables.
    let mut seismograms = Vec::new();
    let mut pgv = PgvRecorder::new(global.nx, global.ny);
    let mut flops = 0.0;
    let mut health: Vec<HealthRecord> = Vec::new();
    let mut failure: Option<UnstableError> = None;
    let mut killed: Option<KilledError> = None;
    for (x0, y0, local, sim) in &results {
        // Restore global surface coordinates on the rank-local stations.
        seismograms.extend(sim.seismo.seismograms().iter().map(|s| {
            let mut s = s.clone();
            s.station.ix += x0;
            s.station.iy += y0;
            s
        }));
        for x in 0..local.nx {
            for y in 0..local.ny {
                let v = sim.pgv.at(x, y);
                let idx = (x0 + x) * global.ny + (y0 + y);
                if v > pgv.pgv[idx] {
                    pgv.pgv[idx] = v;
                }
            }
        }
        flops += sim.flops.flops;
        if let Some(report) = sim.health() {
            health.extend(report.records);
        }
        if let Some(e) = sim.health_failure() {
            let earlier = failure.as_ref().is_none_or(|f| (e.step, e.rank) < (f.step, f.rank));
            if earlier {
                failure = Some(e.clone());
            }
        }
        if let Some(k) = &sim.fault_kill {
            let earlier = killed.as_ref().is_none_or(|f| (k.step, k.rank) < (f.step, f.rank));
            if earlier {
                killed = Some(k.clone());
            }
        }
    }
    // An injected kill means "the process died here": it outranks any
    // verdict latched the same step, so crash drills exit as killed.
    if let Some(k) = killed {
        return Err(RunError::Killed(k));
    }
    if let Some(e) = failure {
        return Err(RunError::Unstable(e));
    }
    health.sort_by_key(|r| (r.step, r.rank));
    // Stations come back in the order the config listed them, not in
    // rank order — stable across decompositions.
    seismograms.sort_by_key(|s| {
        config.stations.iter().position(|st| st.name == s.station.name).unwrap_or(usize::MAX)
    });
    let dt = results.first().map_or(0.0, |(_, _, _, sim)| sim.state.dt);
    Ok(MultiRankOutput { seismograms, pgv, flops, health, dt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_model::HalfspaceModel;
    use sw_source::{MomentTensor, SourceTimeFunction};

    fn explosion_config(steps: usize) -> SimConfig {
        let dims = Dims3::new(24, 24, 16);
        let mut cfg = SimConfig::new(dims, 100.0, steps);
        cfg.options.sponge_width = 4;
        cfg.options.attenuation = false;
        cfg.with_sources(vec![PointSource {
            ix: 12,
            iy: 12,
            iz: 8,
            moment: MomentTensor::explosion(1.0e13),
            stf: SourceTimeFunction::Gaussian { delay: 0.05, sigma: 0.02 },
        }])
        .with_stations(vec![Station { name: "S".into(), ix: 6, iy: 6 }])
    }

    #[test]
    fn explosion_radiates_and_stays_finite() {
        let cfg = explosion_config(60);
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        assert!(!sim.state.has_blown_up());
        assert!(sim.pgv.max() > 0.0, "waves reached the surface");
        let s = sim.seismo.get("S").unwrap();
        assert_eq!(s.samples.len(), 60);
        assert!(sim.flops.flops > 0.0);
    }

    #[test]
    fn checkpoint_restart_is_exact() {
        let cfg = explosion_config(40);
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(20);
        let ckpt = sim.make_checkpoint();
        // run 20 more, then rewind and replay
        sim.run(20);
        let final_u = sim.state.u.clone();
        let mut sim2 = Simulation::new(&model, &cfg).expect("valid config");
        sim2.restore(&ckpt).expect("matching checkpoint");
        assert_eq!(sim2.step_count, 20);
        sim2.run(20);
        assert_eq!(sim2.state.u.max_abs_diff(&final_u), 0.0, "restart must be bit-exact");
    }

    #[test]
    fn compression_mode_stays_close_to_reference() {
        let cfg = explosion_config(40);
        let model = HalfspaceModel::hard_rock();
        let mut reference = Simulation::new(&model, &cfg).expect("valid config");
        reference.run(cfg.steps);
        // use a second reference run's stats as the "coarse run" product
        let mut coarse = Simulation::new(&model, &cfg).expect("valid config");
        coarse.run(cfg.steps);
        let ccfg =
            cfg.clone().with_compression(true).with_compression_stats(coarse.collect_stats());
        let mut compressed = Simulation::new(&model, &ccfg).expect("valid config");
        compressed.run(ccfg.steps);
        assert!(!compressed.state.has_blown_up());
        let a = reference.seismo.get("S").unwrap();
        let b = compressed.seismo.get("S").unwrap();
        let misfit = b.normalized_misfit(a);
        assert!(misfit < 0.25, "compressed misfit {misfit}");
        assert!(misfit > 0.0, "compression is lossy");
    }

    #[test]
    fn snapshots_fire_at_requested_times() {
        let mut cfg = explosion_config(30);
        let model = HalfspaceModel::hard_rock();
        let dt = crate::staggered::stable_dt(cfg.dx, 6000.0);
        cfg.snapshot_times = vec![5.0 * dt, 20.0 * dt];
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        assert_eq!(sim.snapshots.snapshots.len(), 2);
    }

    #[test]
    fn restart_controller_collects_checkpoints() {
        let mut cfg = explosion_config(25);
        cfg.checkpoint_interval = 10;
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        assert_eq!(sim.checkpoints.len(), 2);
        assert_eq!(sim.checkpoints[0].step, 10);
        assert_eq!(sim.checkpoints[1].step, 20);
    }

    #[test]
    fn out_of_bounds_source_is_rejected() {
        let mut cfg = explosion_config(5);
        cfg.sources[0].iz = 99;
        let model = HalfspaceModel::hard_rock();
        let err = Simulation::new(&model, &cfg).err().expect("construction must fail");
        assert!(matches!(err, ConfigError::SourceOutOfBounds { index: 0, .. }), "got {err:?}");
    }

    #[test]
    fn out_of_bounds_station_is_rejected() {
        let cfg = explosion_config(5).with_stations(vec![Station {
            name: "far".into(),
            ix: 1000,
            iy: 0,
        }]);
        let model = HalfspaceModel::hard_rock();
        assert!(matches!(
            Simulation::new(&model, &cfg),
            Err(ConfigError::StationOutOfBounds { .. })
        ));
    }

    #[test]
    fn degenerate_mesh_is_rejected() {
        let cfg = SimConfig::new(Dims3::new(0, 8, 8), 100.0, 1);
        assert!(matches!(cfg.validate(), Err(ConfigError::EmptyDims { .. })));
        let cfg = SimConfig::new(Dims3::new(8, 8, 8), -1.0, 1);
        assert!(matches!(cfg.validate(), Err(ConfigError::NonPositiveSpacing { .. })));
    }

    #[test]
    fn restore_rejects_mismatched_checkpoint() {
        let model = HalfspaceModel::hard_rock();
        let cfg = explosion_config(5);
        let sim = Simulation::new(&model, &cfg).expect("valid config");
        let mut ckpt = sim.make_checkpoint();
        ckpt.fields.push(("mystery".into(), sim.state.u.clone()));
        let mut sim2 = Simulation::new(&model, &cfg).expect("valid config");
        assert!(matches!(sim2.restore(&ckpt), Err(RestoreError::UnknownField { .. })));
        let small = SimConfig::new(Dims3::new(8, 8, 8), 100.0, 5);
        let mut sim3 = Simulation::new(&model, &small).expect("valid config");
        assert!(matches!(
            sim3.restore(&sim.make_checkpoint()),
            Err(RestoreError::DimsMismatch { .. })
        ));
    }

    #[test]
    fn telemetry_covers_every_phase() {
        let tel = Telemetry::enabled();
        let mut cfg = explosion_config(10).with_telemetry(tel.clone());
        cfg.checkpoint_interval = 5;
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        let report = sim.metrics();
        for phase in [
            "step",
            "step.free_surface",
            "step.velocity",
            "step.stress",
            "step.source",
            "step.sponge",
            "step.record",
            "step.checkpoint",
        ] {
            let t = report.timer(phase).unwrap_or_else(|| panic!("missing timer {phase}"));
            assert!(t.calls > 0, "{phase} never fired");
        }
        assert_eq!(report.timer("step").unwrap().calls, 10);
        assert_eq!(report.counter("io.checkpoints"), Some(2));
        assert!(report.counter("arch.dma_bytes.dvelcx").unwrap_or(0) > 0);
        assert!(report.gauge("arch.ldm_high_water_bytes").unwrap().last > 0.0);
        assert_eq!(report.series("step.wall_s").unwrap().pushed, 10);
        assert_eq!(report.series("step.flops").unwrap().pushed, 10);
    }

    #[test]
    fn roofline_joins_traced_counters_and_phase_times() {
        let mut cfg = explosion_config(8).with_telemetry(Telemetry::enabled());
        cfg.options.nonlinear = true;
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        let r = sim.roofline();
        assert!(r.all_within_tolerance());
        for k in &r.kernels {
            assert!(k.traced_dma_bytes > 0.0, "{} has no traced bytes", k.name);
            assert!(k.traced_model_cycles > 0.0, "{} has no traced cycles", k.name);
            assert!(k.measured_wall_s > 0.0, "{} has no wall attribution", k.name);
        }
        // The regcomm accounting rides along with the arch charges.
        let report = sim.metrics();
        assert_eq!(report.counter("arch.regcomm_rounds"), Some(2 * 8));
        assert!(report.counter("arch.regcomm_cycles").unwrap() > 0);
    }

    #[test]
    fn codec_cache_is_transparent() {
        // The cached slot must hand out exactly what a from-scratch build
        // for the same field magnitude would — that is what makes caching
        // invisible to results and to checkpoint/restore.
        let empty = FieldStats::empty();
        for base in [Codec::paper_assignment("xx", &empty), Codec::paper_assignment("lam", &empty)]
        {
            let mut slot = CompressionSlot::new(0, base);
            assert!(slot.self_calibrating());
            let mut rebuilds = 0;
            // A magnitude trajectory that grows, dithers inside one
            // binade, and collapses to zero.
            for max_abs in [0.0f32, 1.0e-3, 1.1e-3, 1.9e-3, 4.0e-3, 4.1e-3, 0.5, 0.9, 0.6, 0.0, 0.0]
            {
                let (codec, rebuilt) = slot.refresh(max_abs);
                assert_eq!(codec, calibrated_codec(&base, max_abs_bucket(max_abs)));
                rebuilds += rebuilt as usize;
            }
            assert_eq!(rebuilds, 5, "one rebuild per distinct bucket in the trajectory");
        }
        // Non-finite magnitudes never rebuild (nor poison the cache).
        let mut slot = CompressionSlot::new(0, Codec::paper_assignment("xx", &empty));
        let (before, _) = slot.refresh(2.0);
        let (kept, rebuilt) = slot.refresh(f32::INFINITY);
        assert_eq!(before, kept);
        assert!(!rebuilt);
    }

    #[test]
    fn self_calibrating_compression_reuses_codecs() {
        let tel = Telemetry::enabled();
        let cfg = explosion_config(30).with_compression(true).with_telemetry(tel.clone());
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        let report = sim.metrics();
        let rebuilds = report.counter("compress.codec_rebuilds").unwrap();
        let reuses = report.counter("compress.codec_reuses").unwrap();
        // 30 steps × 6 self-calibrating (adaptive) fields; before the
        // cache every one of those was a full-field scan + rebuild.
        assert_eq!(rebuilds + reuses, 30 * 6);
        assert!(reuses > rebuilds, "steady-state steps must hit the cache");
        assert!(rebuilds >= 6, "every field calibrates at least once");

        // Caching is deterministic: an identical run bit-matches.
        let cfg2 = explosion_config(30).with_compression(true);
        let mut sim2 = Simulation::new(&model, &cfg2).expect("valid config");
        sim2.run(cfg2.steps);
        assert_eq!(sim.state.u.max_abs_diff(&sim2.state.u), 0.0);
        assert_eq!(sim.state.xx.max_abs_diff(&sim2.state.xx), 0.0);
    }

    #[test]
    fn parallel_exec_matches_serial_bitwise() {
        rayon::ThreadPoolBuilder::new().num_threads(4).build_global().unwrap();
        let model = HalfspaceModel::hard_rock();
        let mut cfg = explosion_config(25).with_compression(true);
        cfg.options.nonlinear = true;
        cfg.options.attenuation = true;
        let mut serial = Simulation::new(&model, &cfg.clone().with_exec(ExecMode::Serial))
            .expect("valid config");
        serial.run(cfg.steps);
        let mut par = Simulation::new(&model, &cfg.clone().with_exec(ExecMode::Parallel))
            .expect("valid config");
        assert!(par.is_parallel());
        par.run(cfg.steps);
        assert_eq!(serial.state.u.max_abs_diff(&par.state.u), 0.0);
        assert_eq!(serial.state.xx.max_abs_diff(&par.state.xx), 0.0);
        assert_eq!(serial.state.eqp.max_abs_diff(&par.state.eqp), 0.0);
        for (a, b) in serial.state.r.iter().zip(par.state.r.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn exec_gauges_are_reported() {
        let tel = Telemetry::enabled();
        let cfg = explosion_config(2).with_exec(ExecMode::Parallel).with_telemetry(tel.clone());
        let model = HalfspaceModel::hard_rock();
        let mut sim = Simulation::new(&model, &cfg).expect("valid config");
        sim.run(cfg.steps);
        let report = sim.metrics();
        assert_eq!(report.gauge("exec.mode").unwrap().last, 1.0);
        assert!(report.gauge("exec.threads").unwrap().last >= 1.0);
    }

    #[test]
    fn telemetry_does_not_perturb_the_wavefield() {
        let model = HalfspaceModel::hard_rock();
        let cfg = explosion_config(20);
        let mut plain = Simulation::new(&model, &cfg).expect("valid config");
        plain.run(cfg.steps);
        let instrumented_cfg = cfg.clone().with_telemetry(Telemetry::enabled());
        let mut instrumented = Simulation::new(&model, &instrumented_cfg).expect("valid config");
        instrumented.run(cfg.steps);
        assert_eq!(plain.state.u.max_abs_diff(&instrumented.state.u), 0.0);
        assert_eq!(plain.state.xx.max_abs_diff(&instrumented.state.xx), 0.0);
    }
}
