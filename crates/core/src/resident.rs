//! Compressed-resident wavefields: the dynamic state lives as 16-bit
//! planes and each step streams x-column tiles through a small f32 slab.
//!
//! [`ResidentMode::Compressed16`] halves the footprint of the 15 dynamic
//! arrays (9 wavefields + 6 attenuation memory variables) by keeping them
//! in [`ResidentField3`] stores — one calibrated codec per x-plane — and
//! never materializing a full f32 copy. Every step phase runs as a sweep
//! over column tiles: decode the tile (plus a two-column stencil skirt)
//! into a reusable slab [`SolverState`], run the *unchanged* region
//! kernels on the core columns, and re-encode only the planes the phase
//! updated. The slab is the only f32 working set, so a scenario whose f32
//! wavefields exceed RAM (or a configured cap) still runs; the cap solves
//! the tile width.
//!
//! Correctness leans on two properties of the serial step, both pinned by
//! tests:
//!
//! * **Column locality** — every z-direction stencil and every halo value
//!   written by `fstr` is read back at the same `(x, y)` column, and the
//!   x-stencils reach at most two columns sideways. A two-column skirt
//!   therefore reproduces the full-grid kernels on the core columns
//!   exactly (up to the 16-bit quantization of the *inputs*, which is the
//!   documented accuracy contract).
//! * **No cross-tile flow inside a phase** — the velocity sweep writes
//!   only `u,v,w` but stencils only stresses; the stress sweep writes only
//!   stresses (and `r`) but stencils only velocities; plasticity and the
//!   sponge are pointwise. Tiles within one sweep are independent, so the
//!   result is bit-for-bit independent of the tile width (and hence of
//!   the memory cap).
//!
//! The sponge runs in its own pointwise sweep *after* the stress sweep
//! (fused with plasticity), mirroring the full-mode phase order.

use crate::state::SolverState;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;
use sw_compress::{Codec, EncodeStats, FieldStats, ResidentField3};
use sw_grid::{Dims3, Field3, HALO_WIDTH};
use sw_source::PointSource;

/// How the dynamic fields are stored between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResidentMode {
    /// Plain f32 [`Field3`] arrays (the reference representation).
    #[default]
    Full,
    /// 16-bit plane-compressed stores streamed through an f32 slab.
    Compressed16,
}

impl ResidentMode {
    /// The process-wide default: `SWQUAKE_RESIDENT` when set (same syntax
    /// as `--resident`; invalid values are ignored), `Full` otherwise.
    /// Explicit [`crate::SimConfig::with_resident`] wins over the
    /// environment.
    pub fn from_env() -> Self {
        std::env::var("SWQUAKE_RESIDENT").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
    }
}

impl FromStr for ResidentMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "full" => Ok(ResidentMode::Full),
            "compressed16" => Ok(ResidentMode::Compressed16),
            other => Err(format!("unknown resident mode `{other}` (expected full|compressed16)")),
        }
    }
}

impl fmt::Display for ResidentMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResidentMode::Full => "full",
            ResidentMode::Compressed16 => "compressed16",
        })
    }
}

/// The compressed-resident dynamic fields, in store order: the nine
/// wavefields, then the six attenuation memory variables.
pub const RESIDENT_FIELDS: [&str; 15] =
    ["u", "v", "w", "xx", "yy", "zz", "xy", "xz", "yz", "r1", "r2", "r3", "r4", "r5", "r6"];

/// Pseudo-field name carrying the per-plane binade buckets in checkpoints
/// (the restore path re-encodes under pinned buckets to stay byte-exact).
pub const SIDECAR_FIELD: &str = "__resident_planes";

/// Default tile width (core columns per slab pass) when no memory cap
/// constrains it.
pub const DEFAULT_TILE_W: usize = 8;

/// f32 arrays the slab state keeps live (everything except `rho`, which
/// only seeds `buoyancy`): 9 wavefields + 6 memory variables + 13
/// material/derived arrays.
const SLAB_FIELDS: usize = 28;

const H: usize = HALO_WIDTH;

/// Decode/encode traffic of one step, for the perf ledger's
/// `resident_decode` / `resident_encode` kernel rows.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResidentPerf {
    /// Wall seconds spent decoding planes into the slab.
    pub decode_s: f64,
    /// Wall seconds spent re-encoding updated planes.
    pub encode_s: f64,
    /// f32 values decoded.
    pub decoded_cells: u64,
    /// f32 values encoded.
    pub encoded_cells: u64,
}

/// The 15 compressed stores plus the reusable f32 slab the sweeps stream
/// tiles through.
pub struct ResidentEngine {
    stores: Vec<ResidentField3>,
    slab: SolverState,
    dims: Dims3,
    tile_w: usize,
    step_stats: [EncodeStats; 15],
    perf: ResidentPerf,
}

/// Solve the widest tile whose slab working set fits `cap` bytes
/// (`None` → [`DEFAULT_TILE_W`]). The floor is one column — the cap is a
/// target for the *slab*; the compressed stores themselves are a fixed
/// cost of the scenario.
pub fn tile_width_for_cap(dims: Dims3, cap: Option<u64>) -> usize {
    let w = match cap {
        None => DEFAULT_TILE_W,
        Some(cap) => {
            let plane = ((dims.ny + 2 * H) * (dims.nz + 2 * H)) as u64;
            let per_column = (SLAB_FIELDS * 4) as u64 * plane;
            // slab padded width = tile_w + 4·H (skirt + halo)
            (cap / per_column.max(1)).saturating_sub(4 * H as u64) as usize
        }
    };
    w.clamp(1, dims.nx.max(1))
}

impl ResidentEngine {
    /// Compress `state`'s dynamic fields into resident stores and build
    /// the f32 slab sized for `cap` bytes. `state` itself is not
    /// modified; the driver detaches its dynamic arrays afterwards.
    pub fn new(state: &SolverState, cap: Option<u64>) -> Self {
        let dims = state.dims;
        let stores: Vec<ResidentField3> = RESIDENT_FIELDS
            .iter()
            .map(|name| ResidentField3::from_field(wavefield_of(state, name), base_codec(name)))
            .collect();
        let tile_w = tile_width_for_cap(dims, cap);
        let slab = slab_state(state, tile_w);
        Self {
            stores,
            slab,
            dims,
            tile_w,
            step_stats: [EncodeStats::empty(); 15],
            perf: ResidentPerf::default(),
        }
    }

    /// Core columns per slab pass (solved from the memory cap).
    pub fn tile_w(&self) -> usize {
        self.tile_w
    }

    /// Bytes held by the 16-bit store of field `idx`.
    pub fn stored_bytes(&self, idx: usize) -> u64 {
        self.stores[idx].stored_bytes() as u64
    }

    /// f32 bytes of the reusable slab — the step's whole decompressed
    /// working set, and the quantity the memory cap bounds.
    pub fn working_set_bytes(&self) -> u64 {
        let s = &self.slab;
        let fields = [
            &s.u,
            &s.v,
            &s.w,
            &s.xx,
            &s.yy,
            &s.zz,
            &s.xy,
            &s.xz,
            &s.yz,
            &s.lam,
            &s.mu,
            &s.rho,
            &s.buoyancy,
            &s.wp,
            &s.ws,
            &s.cohes,
            &s.sinphi,
            &s.cosphi,
            &s.pf,
            &s.sigma0,
            &s.yldfac,
            &s.eqp,
            &s.dcrj,
        ];
        let mut bytes: u64 = fields.iter().map(|f| (f.raw().len() * 4) as u64).sum();
        for f in &s.r {
            bytes += (f.raw().len() * 4) as u64;
        }
        bytes
    }

    /// Per-field round-trip statistics merged over every encode of the
    /// current step (reset by [`begin_step`](Self::begin_step)); pairs
    /// with [`RESIDENT_FIELDS`].
    pub fn step_stats(&self) -> impl Iterator<Item = (&'static str, EncodeStats)> + '_ {
        RESIDENT_FIELDS.iter().copied().zip(self.step_stats.iter().copied())
    }

    /// Decode/encode traffic of the current step (reset by
    /// [`begin_step`](Self::begin_step)).
    pub fn perf(&self) -> ResidentPerf {
        self.perf
    }

    /// Reset the per-step statistics; call once at the top of each step.
    pub fn begin_step(&mut self) {
        self.step_stats = [EncodeStats::empty(); 15];
        self.perf = ResidentPerf::default();
    }

    /// Decode one interior value of field `idx` (seismogram taps, PGV
    /// scans, spot checks).
    pub fn sample(&self, idx: usize, x: usize, y: usize, z: usize) -> f32 {
        self.stores[idx].get(x, y, z)
    }

    /// Largest advisory plane max-abs of field `idx`.
    pub fn max_abs(&self, idx: usize) -> f32 {
        self.stores[idx].max_abs()
    }

    /// Decompress field `idx` into a fresh f32 field (checkpoints,
    /// statistics).
    pub fn to_field(&self, idx: usize) -> Field3 {
        self.stores[idx].to_field()
    }

    /// Decode-scan the interior of field `idx`: `(nan, inf, first_bad)`
    /// in the same x-major order as a full-field probe. Only called on
    /// the cold path (a step whose encodes saw nonfinite values).
    pub fn scan_nonfinite(&self, idx: usize) -> (u64, u64, Option<(usize, usize, usize)>) {
        let store = &self.stores[idx];
        let d = self.dims;
        let (mut nan, mut inf) = (0u64, 0u64);
        let mut first = None;
        let mut buf = vec![0.0f32; store.plane_len()];
        let pnz = d.nz + 2 * H;
        for x in 0..d.nx {
            store.decode_plane_into(x + H, &mut buf);
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let v = buf[(y + H) * pnz + z + H];
                    if v.is_nan() {
                        nan += 1;
                    } else if v.is_infinite() {
                        inf += 1;
                    } else {
                        continue;
                    }
                    if first.is_none() {
                        first = Some((x, y, z));
                    }
                }
            }
        }
        (nan, inf, first)
    }

    /// The per-plane buckets of every store, packed as an f32 pseudo-field
    /// of dims `(15, plane_count, 1)` with no halo — the checkpoint
    /// sidecar. Bucket integers (including the `i32::MIN` zero sentinel)
    /// are exactly representable in f32.
    pub fn sidecar(&self) -> Field3 {
        let planes = self.stores[0].plane_count();
        let mut f = Field3::new(Dims3::new(RESIDENT_FIELDS.len(), planes, 1), 0);
        for (i, store) in self.stores.iter().enumerate() {
            for (p, &b) in store.plane_buckets().iter().enumerate() {
                f.set(i, p, 0, b as f32);
            }
        }
        f
    }

    /// Rebuild the store of `name` from checkpointed f32 content. With
    /// `sidecar` buckets the re-encode is byte-identical to the store the
    /// checkpoint was taken from; without (a checkpoint written by a
    /// full-mode run) the buckets are re-derived from the content.
    /// Returns `false` when `name` is not a resident field.
    pub fn restore_field(&mut self, name: &str, f: &Field3, sidecar: Option<&Field3>) -> bool {
        let Some(idx) = RESIDENT_FIELDS.iter().position(|n| *n == name) else {
            return false;
        };
        assert_eq!(f.dims(), self.dims, "checkpoint field dims mismatch for {name}");
        let base = base_codec(name);
        self.stores[idx] = match sidecar {
            Some(side) => {
                let buckets: Vec<i32> = (0..self.stores[idx].plane_count())
                    .map(|p| side.get(idx, p, 0) as i32)
                    .collect();
                ResidentField3::from_field_with_buckets(f, base, &buckets)
            }
            None => ResidentField3::from_field(f, base),
        };
        true
    }

    /// Whether the plasticity/sponge sweep has any work for this state.
    pub fn wants_plastic_sponge(&self) -> bool {
        self.slab.options.nonlinear || self.slab.options.sponge_width > 0
    }

    /// The velocity half-step: free-surface imaging + `dvelc` per tile.
    pub fn velocity_sweep(&mut self, main: &SolverState) {
        let nx = self.dims.nx;
        let mut c0 = 0;
        while c0 < nx {
            let c1 = (c0 + self.tile_w).min(nx);
            self.velocity_tile(main, c0, c1);
            c0 = c1;
        }
    }

    /// The stress half-step: free-surface imaging + `dstrqc` per tile.
    pub fn stress_sweep(&mut self, main: &SolverState) {
        let nx = self.dims.nx;
        let mut c0 = 0;
        while c0 < nx {
            let c1 = (c0 + self.tile_w).min(nx);
            self.stress_tile(main, c0, c1);
            c0 = c1;
        }
    }

    /// `addsrc` on the compressed stores: decode–add–re-encode each
    /// source cell in place (escalating a plane's bucket only when the
    /// increment outgrows it).
    pub fn inject_sources(&mut self, main: &SolverState, sources: &[PointSource], t: f64) {
        let d = self.dims;
        let vol = main.dx * main.dx * main.dx;
        let mut adds: [Vec<(usize, usize, usize, f32)>; 6] = Default::default();
        for src in sources {
            if src.ix >= d.nx || src.iy >= d.ny || src.iz >= d.nz {
                continue;
            }
            let inc = src.stress_increment(t, main.dt, vol);
            for (c, list) in adds.iter_mut().enumerate() {
                list.push((src.ix, src.iy, src.iz, inc[c]));
            }
        }
        for (c, list) in adds.iter().enumerate() {
            if !list.is_empty() {
                self.stores[3 + c].apply_adds(list);
            }
        }
    }

    /// Plasticity and the absorbing sponge, fused in one pointwise sweep.
    /// Writes the accumulated plastic strain back into `main.eqp` (the
    /// only dynamic array that stays f32-resident).
    pub fn plastic_sponge_sweep(&mut self, main: &mut SolverState) {
        if !self.wants_plastic_sponge() {
            return;
        }
        let nx = self.dims.nx;
        let mut c0 = 0;
        while c0 < nx {
            let c1 = (c0 + self.tile_w).min(nx);
            self.plastic_sponge_tile(main, c0, c1);
            c0 = c1;
        }
    }

    fn velocity_tile(&mut self, main: &SolverState, c0: usize, c1: usize) {
        let w0 = c0.saturating_sub(H);
        let core = (c0 - w0)..(c1 - w0);
        let t0 = Instant::now();
        let mut cells = 0u64;
        {
            let s = &mut self.slab;
            // Stresses feed the velocity stencils: decode the whole slab
            // (core + skirt), zero-filling past the grid edge.
            for (store, f) in self.stores[3..9]
                .iter()
                .zip([&mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy, &mut s.xz, &mut s.yz])
            {
                cells += decode_window(store, f, w0);
            }
            // Velocities are read and written same-cell: core columns only.
            for (store, f) in self.stores[0..3].iter().zip([&mut s.u, &mut s.v, &mut s.w]) {
                cells += decode_core(store, f, w0, c0, c1);
            }
            // Buoyancy is read pointwise at the updated cell.
            copy_core(&mut s.buoyancy, &main.buoyancy, w0, c0, c1);
        }
        self.perf.decode_s += t0.elapsed().as_secs_f64();
        self.perf.decoded_cells += cells;

        crate::kernels::fstr_region(&mut self.slab, core.clone());
        let ny = self.dims.ny;
        crate::kernels::velocity::update_velocity_region(&mut self.slab, core, 0..ny);

        let t1 = Instant::now();
        let mut enc = 0u64;
        let s = &self.slab;
        for ((store, f), stats) in self.stores[0..3]
            .iter_mut()
            .zip([&s.u, &s.v, &s.w])
            .zip(self.step_stats[0..3].iter_mut())
        {
            enc += encode_core(store, f, w0, c0, c1, stats);
        }
        self.perf.encode_s += t1.elapsed().as_secs_f64();
        self.perf.encoded_cells += enc;
    }

    fn stress_tile(&mut self, main: &SolverState, c0: usize, c1: usize) {
        let w0 = c0.saturating_sub(H);
        let core = (c0 - w0)..(c1 - w0);
        let atten = self.slab.options.attenuation;
        let t0 = Instant::now();
        let mut cells = 0u64;
        {
            let s = &mut self.slab;
            // Velocities feed the strain-rate stencils: whole-slab decode.
            for (store, f) in self.stores[0..3].iter().zip([&mut s.u, &mut s.v, &mut s.w]) {
                cells += decode_window(store, f, w0);
            }
            // Stresses and memory variables update same-cell: core only.
            for (store, f) in self.stores[3..9]
                .iter()
                .zip([&mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy, &mut s.xz, &mut s.yz])
            {
                cells += decode_core(store, f, w0, c0, c1);
            }
            if atten {
                for (store, f) in self.stores[9..15].iter().zip(s.r.iter_mut()) {
                    cells += decode_core(store, f, w0, c0, c1);
                }
            }
            // Moduli are read pointwise at the updated cell.
            for (src, dst) in [
                (&main.lam, &mut s.lam),
                (&main.mu, &mut s.mu),
                (&main.wp, &mut s.wp),
                (&main.ws, &mut s.ws),
            ] {
                copy_core(dst, src, w0, c0, c1);
            }
        }
        self.perf.decode_s += t0.elapsed().as_secs_f64();
        self.perf.decoded_cells += cells;

        crate::kernels::fstr_region(&mut self.slab, core.clone());
        let ny = self.dims.ny;
        crate::kernels::stress::update_stress_region(&mut self.slab, core, 0..ny);

        let t1 = Instant::now();
        let mut enc = 0u64;
        let s = &self.slab;
        for ((store, f), stats) in self.stores[3..9]
            .iter_mut()
            .zip([&s.xx, &s.yy, &s.zz, &s.xy, &s.xz, &s.yz])
            .zip(self.step_stats[3..9].iter_mut())
        {
            enc += encode_core(store, f, w0, c0, c1, stats);
        }
        if atten {
            for ((store, f), stats) in
                self.stores[9..15].iter_mut().zip(s.r.iter()).zip(self.step_stats[9..15].iter_mut())
            {
                enc += encode_core(store, f, w0, c0, c1, stats);
            }
        }
        self.perf.encode_s += t1.elapsed().as_secs_f64();
        self.perf.encoded_cells += enc;
    }

    fn plastic_sponge_tile(&mut self, main: &mut SolverState, c0: usize, c1: usize) {
        let w0 = c0.saturating_sub(H);
        let core = (c0 - w0)..(c1 - w0);
        let nonlinear = self.slab.options.nonlinear;
        let sponge = self.slab.options.sponge_width > 0;
        let atten = self.slab.options.attenuation;
        let t0 = Instant::now();
        let mut cells = 0u64;
        {
            let s = &mut self.slab;
            for (store, f) in self.stores[3..9]
                .iter()
                .zip([&mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy, &mut s.xz, &mut s.yz])
            {
                cells += decode_core(store, f, w0, c0, c1);
            }
            if sponge {
                for (store, f) in self.stores[0..3].iter().zip([&mut s.u, &mut s.v, &mut s.w]) {
                    cells += decode_core(store, f, w0, c0, c1);
                }
                if atten {
                    for (store, f) in self.stores[9..15].iter().zip(s.r.iter_mut()) {
                        cells += decode_core(store, f, w0, c0, c1);
                    }
                }
                copy_core(&mut s.dcrj, &main.dcrj, w0, c0, c1);
            }
            if nonlinear {
                for (src, dst) in [
                    (&main.mu, &mut s.mu),
                    (&main.sigma0, &mut s.sigma0),
                    (&main.cohes, &mut s.cohes),
                    (&main.cosphi, &mut s.cosphi),
                    (&main.sinphi, &mut s.sinphi),
                    (&main.pf, &mut s.pf),
                    (&main.eqp, &mut s.eqp),
                ] {
                    copy_core(dst, src, w0, c0, c1);
                }
            }
        }
        self.perf.decode_s += t0.elapsed().as_secs_f64();
        self.perf.decoded_cells += cells;

        if nonlinear {
            crate::kernels::drprecpc_calc_region(&mut self.slab, core.clone());
            crate::kernels::drprecpc_app_region(&mut self.slab, core.clone());
        }
        if sponge {
            crate::kernels::apply_sponge_region(&mut self.slab, core);
        }

        let t1 = Instant::now();
        let mut enc = 0u64;
        let s = &self.slab;
        for ((store, f), stats) in self.stores[3..9]
            .iter_mut()
            .zip([&s.xx, &s.yy, &s.zz, &s.xy, &s.xz, &s.yz])
            .zip(self.step_stats[3..9].iter_mut())
        {
            enc += encode_core(store, f, w0, c0, c1, stats);
        }
        if sponge {
            for ((store, f), stats) in self.stores[0..3]
                .iter_mut()
                .zip([&s.u, &s.v, &s.w])
                .zip(self.step_stats[0..3].iter_mut())
            {
                enc += encode_core(store, f, w0, c0, c1, stats);
            }
            if atten {
                for ((store, f), stats) in self.stores[9..15]
                    .iter_mut()
                    .zip(s.r.iter())
                    .zip(self.step_stats[9..15].iter_mut())
                {
                    enc += encode_core(store, f, w0, c0, c1, stats);
                }
            }
        }
        self.perf.encode_s += t1.elapsed().as_secs_f64();
        self.perf.encoded_cells += enc;
        if nonlinear {
            main.eqp.copy_planes_from(&self.slab.eqp, c0 - w0 + H, c0 + H, c1 - c0);
        }
    }
}

/// The dynamic array of `state` matching a [`RESIDENT_FIELDS`] name.
fn wavefield_of<'a>(state: &'a SolverState, name: &str) -> &'a Field3 {
    match name {
        "u" => &state.u,
        "v" => &state.v,
        "w" => &state.w,
        "xx" => &state.xx,
        "yy" => &state.yy,
        "zz" => &state.zz,
        "xy" => &state.xy,
        "xz" => &state.xz,
        "yz" => &state.yz,
        "r1" => &state.r[0],
        "r2" => &state.r[1],
        "r3" => &state.r[2],
        "r4" => &state.r[3],
        "r5" => &state.r[4],
        "r6" => &state.r[5],
        other => panic!("not a resident field: {other}"),
    }
}

/// Base codec for a resident field: Fig. 5d's assignment with per-plane
/// calibration layered on top (the empty stats are calibrated away per
/// plane at encode time).
fn base_codec(name: &str) -> Codec {
    Codec::paper_assignment(name, &FieldStats::empty())
}

/// Build the reusable slab: a narrow [`SolverState`] of `tile_w + 2·H`
/// interior columns whose padded planes map to the global padded planes
/// `q ↦ q + w0` for the tile starting at `w0 = c0 − H`.
fn slab_state(main: &SolverState, tile_w: usize) -> SolverState {
    let dims = Dims3::new((tile_w + 2 * H).min(main.dims.nx), main.dims.ny, main.dims.nz);
    let f = || Field3::new(dims, H);
    SolverState {
        dims,
        dx: main.dx,
        dt: main.dt,
        dt_stable: main.dt_stable,
        u: f(),
        v: f(),
        w: f(),
        xx: f(),
        yy: f(),
        zz: f(),
        xy: f(),
        xz: f(),
        yz: f(),
        r: [f(), f(), f(), f(), f(), f()],
        lam: f(),
        mu: f(),
        rho: Field3::detached(dims, H),
        buoyancy: f(),
        wp: f(),
        ws: f(),
        cohes: f(),
        sinphi: f(),
        cosphi: f(),
        pf: f(),
        sigma0: f(),
        yldfac: Field3::filled(dims, H, 1.0),
        eqp: f(),
        dcrj: Field3::filled(dims, H, 1.0),
        tau: main.tau,
        options: main.options,
    }
}

/// Decode every slab plane of `store` into `dst`, mapping slab padded
/// plane `q` to global padded plane `q + w0` (zero-fill past the edge).
/// Returns the number of values written.
fn decode_window(store: &ResidentField3, dst: &mut Field3, w0: usize) -> u64 {
    let planes = dst.raw().len() / dst.plane_len();
    for q in 0..planes {
        let g = q + w0;
        if g < store.plane_count() {
            store.decode_plane_into(g, dst.plane_mut(q));
        } else {
            dst.plane_mut(q).fill(0.0);
        }
    }
    (planes * dst.plane_len()) as u64
}

/// Decode only the core interior planes `c0..c1` (global column indices).
fn decode_core(store: &ResidentField3, dst: &mut Field3, w0: usize, c0: usize, c1: usize) -> u64 {
    for x in c0..c1 {
        store.decode_plane_into(x + H, dst.plane_mut(x - w0 + H));
    }
    ((c1 - c0) * dst.plane_len()) as u64
}

/// Re-encode the core interior planes `c0..c1` from the slab, folding the
/// round-trip statistics into `stats`. Returns the number of values read.
fn encode_core(
    store: &mut ResidentField3,
    src: &Field3,
    w0: usize,
    c0: usize,
    c1: usize,
    stats: &mut EncodeStats,
) -> u64 {
    for x in c0..c1 {
        stats.merge(&store.encode_plane(x + H, src.plane(x - w0 + H)));
    }
    ((c1 - c0) * src.plane_len()) as u64
}

/// Copy the core interior planes of a pointwise-read material array into
/// the slab (stale skirt columns are never read by the region kernels).
fn copy_core(dst: &mut Field3, src: &Field3, w0: usize, c0: usize, c1: usize) {
    dst.copy_planes_from(src, c0 + H, c0 - w0 + H, c1 - c0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing_round_trips() {
        for mode in [ResidentMode::Full, ResidentMode::Compressed16] {
            assert_eq!(mode.to_string().parse::<ResidentMode>().unwrap(), mode);
        }
        assert_eq!("COMPRESSED16".parse::<ResidentMode>().unwrap(), ResidentMode::Compressed16);
        assert!("f16".parse::<ResidentMode>().is_err());
    }

    #[test]
    fn tile_width_honours_the_cap() {
        let d = Dims3::new(64, 32, 32);
        assert_eq!(tile_width_for_cap(d, None), DEFAULT_TILE_W);
        // A huge cap admits the whole grid as one tile.
        assert_eq!(tile_width_for_cap(d, Some(u64::MAX)), 64);
        // A tiny cap clamps to the one-column floor instead of failing.
        assert_eq!(tile_width_for_cap(d, Some(1)), 1);
        // The solved width's slab actually fits the cap when above floor.
        let cap = 64u64 << 20;
        let w = tile_width_for_cap(d, Some(cap));
        let plane = ((d.ny + 2 * H) * (d.nz + 2 * H)) as u64;
        assert!((SLAB_FIELDS * 4) as u64 * plane * (w as u64 + 4 * H as u64) <= cap);
        assert!(w >= 1);
    }
}
