//! Roofline / attribution report: predicted vs simulated cycles per
//! kernel (the Table 3 / Fig. 7-style breakdown).
//!
//! Two independent models price every FD kernel, and this module joins
//! them with what an instrumented run actually recorded:
//!
//! * **predicted** — the §6.4 blocking model ([`AnalyticModel`]) prices
//!   one DMA pass over the run's CG block for a generic fused kernel
//!   moving the same floats per point ([`KernelShape::fused_traffic`]),
//!   at the Table 3 block-size-dependent bandwidth;
//! * **simulated** — the calibrated per-kernel performance model
//!   ([`KernelPerfModel`]) with its redundancy factors and flop/issue
//!   bounds, the same model the driver charges `arch.model_cycles.*`
//!   counters from;
//! * **traced** — the `arch.dma_bytes.*` / `arch.model_cycles.*`
//!   counters and `step.*` phase timers out of a run's telemetry
//!   [`Report`], so the table also shows what this simulation measured.
//!
//! The two models agree when their cycle ratio stays inside
//! `[1/F, F]` with `F =`[`MODEL_AGREEMENT_FACTOR`] — see that constant
//! for why `fstr` sizes the tolerance. `swquake run <scenario>
//! --roofline out.json` writes the JSON form; [`RooflineReport::text_table`]
//! renders the human-readable table.

use serde::{Deserialize, Serialize};
use sw_arch::analytic::{AnalyticModel, KernelShape, MODEL_AGREEMENT_FACTOR};
use sw_arch::{KernelPerfModel, OptLevel};
use sw_grid::Dims3;
use sw_telemetry::Report;

/// Version stamp embedded in every [`RooflineReport`].
pub const ROOFLINE_SCHEMA_VERSION: u32 = 1;

/// One FD kernel's row in the attribution table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelAttribution {
    /// Kernel name as the paper spells it.
    pub name: String,
    /// Useful flops per touched point (§7.1 convention).
    pub flops_per_point: f64,
    /// Modeled DMA bytes per touched point at the run's opt level.
    pub modeled_bytes_per_point: f64,
    /// Blocking-model DMA cycles per point (eq. 5–9 + Table 3).
    pub predicted_cycles_per_point: f64,
    /// Calibrated perf-model cycles per point (redundancy + flop bounds).
    pub simulated_cycles_per_point: f64,
    /// `predicted / simulated`.
    pub ratio: f64,
    /// True when `ratio` lies inside `[1/F, F]`,
    /// `F =` [`MODEL_AGREEMENT_FACTOR`].
    pub within_tolerance: bool,
    /// Total `arch.dma_bytes.<kernel>` the run charged (0 untraced).
    pub traced_dma_bytes: f64,
    /// Total `arch.model_cycles.<kernel>` the run charged (0 untraced).
    pub traced_model_cycles: f64,
    /// Wall seconds of the host phase attributed to this kernel
    /// (multi-kernel phases split in proportion to simulated cycles;
    /// 0 untraced).
    pub measured_wall_s: f64,
}

/// The predicted-vs-simulated attribution of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineReport {
    /// Schema version stamp ([`ROOFLINE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Optimization level the run was modeled at (`"Mem"` or `"Cmpr"`).
    pub opt_level: String,
    /// The documented agreement tolerance factor.
    pub tolerance_factor: f64,
    /// One row per FD kernel, in the paper's kernel order.
    pub kernels: Vec<KernelAttribution>,
}

impl RooflineReport {
    /// Look up one kernel's row.
    pub fn kernel(&self, name: &str) -> Option<&KernelAttribution> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// True when every kernel's ratio is inside the tolerance band.
    pub fn all_within_tolerance(&self) -> bool {
        self.kernels.iter().all(|k| k.within_tolerance)
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("roofline serialization is infallible")
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Human-readable attribution table.
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "roofline attribution ({} level, tolerance {:.1}x)\n",
            self.opt_level, self.tolerance_factor
        ));
        out.push_str(&format!(
            "{:<14} {:>9} {:>9} {:>10} {:>10} {:>7} {:>12} {:>12} {:>10}  agree\n",
            "kernel",
            "flops/pt",
            "bytes/pt",
            "pred cy/pt",
            "sim cy/pt",
            "ratio",
            "dma bytes",
            "model cyc",
            "wall s"
        ));
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<14} {:>9.0} {:>9.1} {:>10.3} {:>10.3} {:>7.3} {:>12.3e} {:>12.3e} {:>10.6}  {}\n",
                k.name,
                k.flops_per_point,
                k.modeled_bytes_per_point,
                k.predicted_cycles_per_point,
                k.simulated_cycles_per_point,
                k.ratio,
                k.traced_dma_bytes,
                k.traced_model_cycles,
                k.measured_wall_s,
                if k.within_tolerance { "yes" } else { "NO" }
            ));
        }
        out
    }
}

/// The driver phase whose wall time hosts a kernel.
fn host_phase(kernel: &str) -> &'static str {
    match kernel {
        "dvelcx" | "dvelcy" => "step.velocity",
        "dstrqc" => "step.stress",
        "fstr" => "step.free_surface",
        _ => "step.plasticity",
    }
}

/// Build the attribution report for a run over `dims` at the given
/// physics/compression configuration, joining in whatever `report`
/// recorded (pass an empty report for a model-only table).
pub fn attribute(
    dims: Dims3,
    nonlinear: bool,
    compressed: bool,
    report: &Report,
) -> RooflineReport {
    let model = KernelPerfModel::paper();
    let analytic = AnalyticModel::sw26010();
    let level = if compressed { OptLevel::Cmpr } else { OptLevel::Mem };
    let clock = model.cg_spec().clock_hz;
    // §6.5: compression halves the bytes on the DMA bus.
    let cmpr_ratio = if compressed { 0.5 } else { 1.0 };
    let kernels: Vec<&sw_arch::perf::KernelProfile> =
        model.kernels().iter().filter(|k| nonlinear || !k.nonlinear_only).collect();
    // Weights for splitting a multi-kernel phase's wall time.
    let phase_weight = |phase: &str| -> f64 {
        kernels
            .iter()
            .filter(|k| host_phase(k.name) == phase)
            .map(|k| k.coverage * model.cycles_per_point(k, level))
            .sum()
    };
    let rows = kernels
        .iter()
        .map(|k| {
            let floats = k.floats_read + k.floats_written;
            let shape = KernelShape::fused_traffic(floats, dims.ny, dims.nz);
            let choice = analytic.optimize(&shape);
            let points_per_pass = (shape.block_ny * shape.block_nz * shape.wx) as f64;
            let predicted = choice.dma_seconds / points_per_pass * clock * cmpr_ratio;
            let simulated = model.cycles_per_point(k, level);
            let ratio = predicted / simulated;
            let phase = host_phase(k.name);
            let weight = k.coverage * simulated / phase_weight(phase).max(f64::MIN_POSITIVE);
            let measured_wall_s = report.timer(phase).map(|t| t.total_s * weight).unwrap_or(0.0);
            KernelAttribution {
                name: k.name.to_string(),
                flops_per_point: k.flops,
                modeled_bytes_per_point: k.bytes_per_point() * cmpr_ratio,
                predicted_cycles_per_point: predicted,
                simulated_cycles_per_point: simulated,
                ratio,
                within_tolerance: (1.0 / MODEL_AGREEMENT_FACTOR..=MODEL_AGREEMENT_FACTOR)
                    .contains(&ratio),
                traced_dma_bytes: report.counter(&format!("arch.dma_bytes.{}", k.name)).unwrap_or(0)
                    as f64,
                traced_model_cycles: report
                    .counter(&format!("arch.model_cycles.{}", k.name))
                    .unwrap_or(0) as f64,
                measured_wall_s,
            }
        })
        .collect();
    RooflineReport {
        schema_version: ROOFLINE_SCHEMA_VERSION,
        opt_level: format!("{level:?}"),
        tolerance_factor: MODEL_AGREEMENT_FACTOR,
        kernels: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dims3 {
        Dims3::new(24, 24, 16)
    }

    #[test]
    fn every_fd_kernel_is_listed_and_within_tolerance() {
        let r = attribute(dims(), true, false, &Report::default());
        let names: Vec<&str> = r.kernels.iter().map(|k| k.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["dvelcx", "dvelcy", "dstrqc", "fstr", "drprecpc_calc", "drprecpc_app"]
        );
        for k in &r.kernels {
            assert!(k.flops_per_point > 0.0, "{}", k.name);
            assert!(k.modeled_bytes_per_point > 0.0, "{}", k.name);
            assert!(k.predicted_cycles_per_point > 0.0, "{}", k.name);
            assert!(k.simulated_cycles_per_point > 0.0, "{}", k.name);
            assert!(k.within_tolerance, "{} ratio {} outside tolerance", k.name, k.ratio);
        }
        assert!(r.all_within_tolerance());
    }

    #[test]
    fn linear_runs_drop_the_plasticity_kernels() {
        let r = attribute(dims(), false, false, &Report::default());
        assert!(r.kernel("drprecpc_calc").is_none());
        assert!(r.kernel("dvelcx").is_some());
        assert_eq!(r.kernels.len(), 4);
    }

    #[test]
    fn compression_halves_modeled_bytes() {
        let plain = attribute(dims(), true, false, &Report::default());
        let cmpr = attribute(dims(), true, true, &Report::default());
        assert_eq!(cmpr.opt_level, "Cmpr");
        for (a, b) in plain.kernels.iter().zip(&cmpr.kernels) {
            assert!((b.modeled_bytes_per_point - a.modeled_bytes_per_point * 0.5).abs() < 1e-12);
        }
        assert!(cmpr.all_within_tolerance());
    }

    #[test]
    fn streamed_kernels_agree_much_tighter_than_the_bound() {
        let r = attribute(dims(), true, false, &Report::default());
        for k in r.kernels.iter().filter(|k| k.name != "fstr") {
            assert!((0.4..2.5).contains(&k.ratio), "{} ratio {}", k.name, k.ratio);
        }
        // fstr is the documented outlier that sizes the tolerance factor.
        let fstr = r.kernel("fstr").unwrap();
        assert!(fstr.ratio < 0.4, "fstr ratio {}", fstr.ratio);
        assert!(fstr.within_tolerance);
    }

    #[test]
    fn json_roundtrip_and_table_render() {
        let r = attribute(dims(), true, true, &Report::default());
        let back = RooflineReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let table = r.text_table();
        for k in &r.kernels {
            assert!(table.contains(&k.name), "table missing {}", k.name);
        }
        assert!(table.contains("ratio"));
    }
}
