//! The full simulation state.
//!
//! §3 of the paper counts the arrays: a linear run needs 28 3-D arrays,
//! the nonlinear Drucker–Prager run over 35 — "which almost increase 25 %
//! of both the memory capacity and memory bandwidth". This module owns
//! those arrays: three velocity components, six stresses, six attenuation
//! memory variables, the material fields, and the plasticity set
//! (cohesion, friction angle, fluid pressure, initial mean stress, yield
//! factor, accumulated plastic strain), plus the Cerjan damping profile.

use crate::staggered::stable_dt;
use sw_grid::{Dims3, Field3, HALO_WIDTH};
use sw_model::VelocityModel;

/// Plasticity configuration (the depth-dependent Drucker–Prager inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlasticityConfig {
    /// Cohesion at the surface, Pa.
    pub cohesion_surface: f32,
    /// Cohesion gradient with depth, Pa/m.
    pub cohesion_gradient: f32,
    /// Friction angle, degrees.
    pub friction_angle_deg: f32,
    /// Pore-fluid pressure as a fraction of lithostatic stress.
    pub fluid_pressure_ratio: f32,
}

impl Default for PlasticityConfig {
    fn default() -> Self {
        Self {
            cohesion_surface: 5.0e6,
            cohesion_gradient: 500.0,
            friction_angle_deg: 35.0,
            fluid_pressure_ratio: 0.4,
        }
    }
}

/// Options controlling which physics a state carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateOptions {
    /// Enable the attenuation memory variables.
    pub attenuation: bool,
    /// Enable Drucker–Prager plasticity.
    pub nonlinear: bool,
    /// Reference frequency for the attenuation mechanism, Hz.
    pub reference_frequency: f64,
    /// Cerjan sponge width in grid points.
    pub sponge_width: usize,
    /// Plasticity parameters.
    pub plasticity: PlasticityConfig,
    /// Multiplier on the CFL-stable timestep. 1.0 (the default) runs at
    /// the stable `dt`; values above 1.0 deliberately violate the CFL
    /// bound (the health watchdog's unstable-scenario knob).
    pub dt_scale: f64,
    /// For a rank-local subdomain: the global extents and this
    /// subdomain's (x, y) offset, so the sponge profile is computed in
    /// global coordinates and multi-rank runs match single-rank runs
    /// bit for bit.
    pub global_span: Option<(Dims3, usize, usize)>,
}

impl Default for StateOptions {
    fn default() -> Self {
        Self {
            attenuation: true,
            nonlinear: false,
            reference_frequency: 1.0,
            sponge_width: 10,
            plasticity: PlasticityConfig::default(),
            dt_scale: 1.0,
            global_span: None,
        }
    }
}

/// All simulation arrays for one (sub)domain.
#[derive(Debug, Clone)]
pub struct SolverState {
    /// Interior extents.
    pub dims: Dims3,
    /// Grid spacing, m.
    pub dx: f64,
    /// Time step actually used, s (`dt_stable × options.dt_scale`).
    pub dt: f64,
    /// CFL-stable time step for this grid and model, s.
    pub dt_stable: f64,
    /// Velocity x (stored at `(i+1/2, j, k)`).
    pub u: Field3,
    /// Velocity y (at `(i, j+1/2, k)`).
    pub v: Field3,
    /// Velocity z (at `(i, j, k+1/2)`).
    pub w: Field3,
    /// Normal stress xx (at integer points).
    pub xx: Field3,
    /// Normal stress yy.
    pub yy: Field3,
    /// Normal stress zz.
    pub zz: Field3,
    /// Shear stress xy (at `(i+1/2, j+1/2, k)`).
    pub xy: Field3,
    /// Shear stress xz (at `(i+1/2, j, k+1/2)`).
    pub xz: Field3,
    /// Shear stress yz (at `(i, j+1/2, k+1/2)`).
    pub yz: Field3,
    /// Attenuation memory variables, one per stress component.
    pub r: [Field3; 6],
    /// Lamé λ, Pa.
    pub lam: Field3,
    /// Shear modulus μ, Pa.
    pub mu: Field3,
    /// Density, kg/m³.
    pub rho: Field3,
    /// Reciprocal density `1/ρ`, 1/(kg/m³) — precomputed so the velocity
    /// update multiplies instead of dividing per cell. Kept in exact sync
    /// with `rho` by [`Self::from_model`]; code that rescales `rho` must
    /// rescale this too (or call [`Self::rebuild_buoyancy`]).
    pub buoyancy: Field3,
    /// P attenuation weight `1/Qp`.
    pub wp: Field3,
    /// S attenuation weight `1/Qs`.
    pub ws: Field3,
    /// Cohesion, Pa (nonlinear only; empty-sized otherwise).
    pub cohes: Field3,
    /// sin of the friction angle.
    pub sinphi: Field3,
    /// cos of the friction angle.
    pub cosphi: Field3,
    /// Pore-fluid pressure, Pa.
    pub pf: Field3,
    /// Initial (lithostatic, effective) mean stress, Pa (negative in
    /// compression).
    pub sigma0: Field3,
    /// Yield factor of the last plasticity pass (1 = elastic).
    pub yldfac: Field3,
    /// Accumulated plastic strain.
    pub eqp: Field3,
    /// Cerjan damping profile (multiplies velocity and stress).
    pub dcrj: Field3,
    /// Attenuation relaxation time, s.
    pub tau: f64,
    /// Options this state was built with.
    pub options: StateOptions,
}

impl SolverState {
    /// Build a state from a velocity model. `origin` is the physical
    /// position (m) of grid index (0, 0, 0); depth = `origin.2 + z·dx`.
    pub fn from_model(
        model: &dyn VelocityModel,
        dims: Dims3,
        dx: f64,
        origin: (f64, f64, f64),
        options: StateOptions,
    ) -> Self {
        let dt_stable = stable_dt(dx, model.vp_max() as f64);
        let dt = dt_stable * options.dt_scale;
        let h = HALO_WIDTH;
        let f = || Field3::new(dims, h);
        let mut state = Self {
            dims,
            dx,
            dt,
            dt_stable,
            u: f(),
            v: f(),
            w: f(),
            xx: f(),
            yy: f(),
            zz: f(),
            xy: f(),
            xz: f(),
            yz: f(),
            r: [f(), f(), f(), f(), f(), f()],
            lam: f(),
            mu: f(),
            rho: f(),
            buoyancy: f(),
            wp: f(),
            ws: f(),
            cohes: f(),
            sinphi: f(),
            cosphi: f(),
            pf: f(),
            sigma0: f(),
            yldfac: Field3::filled(dims, h, 1.0),
            eqp: f(),
            dcrj: Field3::filled(dims, h, 1.0),
            tau: 1.0 / (2.0 * std::f64::consts::PI * options.reference_frequency),
            options,
        };
        let p = options.plasticity;
        let (sp, cp) = p.friction_angle_deg.to_radians().sin_cos();
        for x in 0..dims.nx {
            for y in 0..dims.ny {
                for z in 0..dims.nz {
                    let depth = origin.2 + (z as f64 + 0.5) * dx;
                    let m = model.sample(
                        origin.0 + (x as f64 + 0.5) * dx,
                        origin.1 + (y as f64 + 0.5) * dx,
                        depth,
                    );
                    state.lam.set(x, y, z, m.lambda());
                    state.mu.set(x, y, z, m.mu());
                    state.rho.set(x, y, z, m.rho);
                    state.buoyancy.set(x, y, z, 1.0 / m.rho);
                    state.wp.set(x, y, z, 1.0 / m.qp);
                    state.ws.set(x, y, z, 1.0 / m.qs);
                    if options.nonlinear {
                        let depth = depth as f32;
                        let litho = -(m.rho - 1000.0) * 9.81 * depth; // effective, compressive < 0
                        state.cohes.set(x, y, z, p.cohesion_surface + p.cohesion_gradient * depth);
                        state.sinphi.set(x, y, z, sp);
                        state.cosphi.set(x, y, z, cp);
                        state.pf.set(x, y, z, -litho * p.fluid_pressure_ratio);
                        state.sigma0.set(x, y, z, litho);
                    }
                }
            }
        }
        state.build_sponge();
        state
    }

    /// Fill the Cerjan damping profile: the five absorbing faces (not the
    /// z = 0 free surface) taper over `sponge_width` points.
    fn build_sponge(&mut self) {
        let n = self.options.sponge_width;
        if n == 0 {
            return;
        }
        let alpha = 0.095f32; // classic Cerjan decay constant
        let d = self.dims;
        let (global, x_off, y_off) = self.options.global_span.unwrap_or((d, 0, 0));
        let factor = |dist: usize| -> f32 {
            if dist >= n {
                1.0
            } else {
                let a = alpha * (n - dist) as f32 / n as f32;
                (-a * a * 10.0).exp()
            }
        };
        for x in 0..d.nx {
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let gx = x + x_off;
                    let gy = y + y_off;
                    let dist = gx
                        .min(global.nx - 1 - gx)
                        .min(gy.min(global.ny - 1 - gy))
                        .min(global.nz - 1 - z); // z = 0 face is the free surface
                    self.dcrj.set(x, y, z, factor(dist));
                }
            }
        }
    }

    /// Number of 3-D arrays the state carries (the §3 accounting).
    pub fn array_count(&self) -> usize {
        let base = 3 + 6 + 6 + 1; // vel + stress + material (incl. buoyancy) + dcrj
        let atten = if self.options.attenuation { 6 + 2 } else { 0 };
        let plast = if self.options.nonlinear { 7 } else { 0 };
        base + atten + plast
    }

    /// Recompute `buoyancy = 1/ρ` from the current density field — for
    /// code (tests, experiments) that edits `rho` after construction.
    pub fn rebuild_buoyancy(&mut self) {
        for (b, &r) in self.buoyancy.raw_mut().iter_mut().zip(self.rho.raw()) {
            *b = if r != 0.0 { 1.0 / r } else { 0.0 };
        }
    }

    /// The stress components as an array of references (xx..yz order).
    pub fn stress(&self) -> [&Field3; 6] {
        [&self.xx, &self.yy, &self.zz, &self.xy, &self.xz, &self.yz]
    }

    /// Kinetic energy of one x-plane's interior (before the cell-volume
    /// factor): the deterministic reduction unit shared by the serial
    /// and parallel energy probes.
    fn kinetic_energy_plane(&self, x: usize) -> f64 {
        let d = self.dims;
        let mut e = 0.0f64;
        for y in 0..d.ny {
            let (us, vs, ws, rs) =
                (self.u.row(x, y), self.v.row(x, y), self.w.row(x, y), self.rho.row(x, y));
            for z in 0..d.nz {
                let v2 = (us[z] * us[z] + vs[z] * vs[z] + ws[z] * ws[z]) as f64;
                e += 0.5 * rs[z] as f64 * v2;
            }
        }
        e
    }

    /// Kinetic energy of the interior, J (cell volume × ½ρv²).
    ///
    /// Accumulated as one f64 partial per x-plane, folded in plane
    /// order — the same chunked reduction [`Self::kinetic_energy_par`]
    /// uses, so the two are bit-identical and health records don't
    /// depend on the `ExecMode`.
    pub fn kinetic_energy(&self) -> f64 {
        let vol = self.dx * self.dx * self.dx;
        (0..self.dims.nx).map(|x| self.kinetic_energy_plane(x)).sum::<f64>() * vol
    }

    /// Parallel [`Self::kinetic_energy`]: per-plane partials are
    /// computed on the pool, collected in plane order, and folded
    /// exactly like the serial probe — bit-identical for any thread
    /// count.
    pub fn kinetic_energy_par(&self) -> f64 {
        use rayon::prelude::*;
        let vol = self.dx * self.dx * self.dx;
        let partials: Vec<f64> =
            (0..self.dims.nx).into_par_iter().map(|x| self.kinetic_energy_plane(x)).collect();
        partials.into_iter().sum::<f64>() * vol
    }

    /// Largest absolute velocity anywhere (NaN-free sanity probe).
    pub fn peak_velocity(&self) -> f32 {
        self.u.max_abs().max(self.v.max_abs()).max(self.w.max_abs())
    }

    /// True when any velocity component has gone non-finite. (`max_abs`
    /// cannot be used here: `f32::max` ignores NaN operands.)
    pub fn has_blown_up(&self) -> bool {
        [&self.u, &self.v, &self.w].iter().any(|f| f.raw().iter().any(|v| !v.is_finite()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_model::HalfspaceModel;

    fn state(nonlinear: bool) -> SolverState {
        let model = HalfspaceModel::hard_rock();
        let options = StateOptions { nonlinear, ..Default::default() };
        SolverState::from_model(&model, Dims3::new(12, 10, 8), 100.0, (0.0, 0.0, 0.0), options)
    }

    #[test]
    fn array_count_matches_paper_scaling() {
        let lin = state(false);
        let nl = state(true);
        assert!(nl.array_count() > lin.array_count());
        // §3: moving to nonlinear adds ~25 % more arrays.
        let ratio = nl.array_count() as f64 / lin.array_count() as f64;
        assert!((1.15..1.45).contains(&ratio), "array ratio {ratio}");
        assert!(lin.array_count() >= 20);
        assert!(nl.array_count() >= 27);
    }

    #[test]
    fn material_fields_are_sampled() {
        let s = state(false);
        let m = sw_model::Material::hard_rock();
        assert!((s.mu.get(3, 3, 3) - m.mu()).abs() / m.mu() < 1e-6);
        assert!((s.lam.get(3, 3, 3) - m.lambda()).abs() / m.lambda() < 1e-6);
        assert_eq!(s.rho.get(0, 0, 0), 2700.0);
        assert_eq!(s.buoyancy.get(0, 0, 0), 1.0 / 2700.0);
        assert!((s.wp.get(0, 0, 0) - 1.0 / 800.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_buoyancy_tracks_density_edits() {
        let mut s = state(false);
        for v in s.rho.raw_mut() {
            *v *= 2.0;
        }
        s.rebuild_buoyancy();
        assert_eq!(s.buoyancy.get(3, 3, 3), 1.0 / 5400.0);
        // Halo density is zero; buoyancy must not become inf there.
        assert_eq!(s.buoyancy.at_i(-1, 0, 0), 0.0);
    }

    #[test]
    fn cfl_dt_is_stable_range() {
        let s = state(false);
        assert!(s.dt > 0.0 && s.dt < 100.0 / 6000.0, "dt {} s", s.dt);
    }

    #[test]
    fn lithostatic_prestress_grows_with_depth() {
        let s = state(true);
        let shallow = s.sigma0.get(0, 0, 0);
        let deep = s.sigma0.get(0, 0, 7);
        assert!(shallow < 0.0, "compression is negative");
        assert!(deep < shallow, "more compression at depth");
        assert!(s.pf.get(0, 0, 7) > 0.0, "pore pressure positive");
        assert!(s.cohes.get(0, 0, 7) > s.cohes.get(0, 0, 0));
    }

    #[test]
    fn sponge_damps_edges_not_interior_or_surface() {
        let s = state(false);
        // Interior of a small grid is inside the sponge reach, so use the
        // relative ordering instead of absolute 1.0.
        let corner = s.dcrj.get(0, 5, 7);
        let center = s.dcrj.get(6, 5, 1);
        assert!(corner < center, "edges damp harder: {corner} vs {center}");
        // free surface (z = 0) is not damped by the z criterion
        let surf = s.dcrj.get(6, 5, 0);
        assert!(surf >= corner);
    }

    #[test]
    fn energy_and_blowup_probes() {
        let mut s = state(false);
        assert_eq!(s.kinetic_energy(), 0.0);
        s.u.set(3, 3, 3, 2.0);
        let e = s.kinetic_energy();
        // ½ · 2700 · 4 · (100 m)³
        assert!((e - 0.5 * 2700.0 * 4.0 * 1.0e6).abs() / e < 1e-6);
        assert!(!s.has_blown_up());
        s.v.set(0, 0, 0, f32::NAN);
        assert!(s.has_blown_up());
    }

    #[test]
    fn linear_state_skips_plasticity_arrays() {
        let s = state(false);
        assert_eq!(s.cohes.get(3, 3, 3), 0.0);
        assert_eq!(s.sigma0.get(3, 3, 3), 0.0);
        // yldfac defaults to elastic everywhere in both modes
        assert_eq!(s.yldfac.get(3, 3, 3), 1.0);
    }
}
