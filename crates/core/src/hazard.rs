//! Seismic-hazard maps (Fig. 11e–f).
//!
//! "The hazard map (expressed by seismic intensity) for Tangshan
//! earthquake can be obtained by calculating the horizontal peak ground
//! velocity." The PGV → intensity conversion follows the Chinese seismic
//! intensity scale (GB/T 17742 class): `I = 3.00 + 3.77 · log₁₀(PGV)`
//! with PGV in cm/s, clamped to the scale's 1–12 range.

use sw_io::PgvRecorder;

/// Chinese seismic intensity from horizontal PGV in m/s.
pub fn intensity_from_pgv(pgv_ms: f32) -> f32 {
    if pgv_ms <= 0.0 {
        return 1.0;
    }
    let pgv_cms = pgv_ms * 100.0;
    (3.00 + 3.77 * pgv_cms.log10()).clamp(1.0, 12.0)
}

/// A gridded intensity map derived from a PGV recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct HazardMap {
    /// Surface extents.
    pub nx: usize,
    /// Surface extents along y.
    pub ny: usize,
    /// Intensity per surface point, row-major (x, y).
    pub intensity: Vec<f32>,
}

impl HazardMap {
    /// Build from accumulated PGV.
    pub fn from_pgv(rec: &PgvRecorder, nx: usize, ny: usize) -> Self {
        let intensity = rec.pgv.iter().map(|&v| intensity_from_pgv(v)).collect();
        Self { nx, ny, intensity }
    }

    /// Intensity at a surface point.
    pub fn at(&self, x: usize, y: usize) -> f32 {
        self.intensity[x * self.ny + y]
    }

    /// Maximum intensity on the map.
    pub fn max(&self) -> f32 {
        self.intensity.iter().copied().fold(1.0, f32::max)
    }

    /// Fraction of the map at or above `level` (the "red area" of
    /// Fig. 11e–f is level ≥ 9).
    pub fn fraction_at_or_above(&self, level: f32) -> f64 {
        let n = self.intensity.iter().filter(|&&i| i >= level).count();
        n as f64 / self.intensity.len() as f64
    }

    /// Render as an ASCII map (rows = y descending), digit = intensity.
    pub fn ascii(&self) -> String {
        let mut out = String::with_capacity((self.nx + 1) * self.ny);
        for y in (0..self.ny).rev() {
            for x in 0..self.nx {
                let i = self.at(x, y).round() as u32;
                out.push(char::from_digit(i.min(11), 12).unwrap_or('?'));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_scale_anchors() {
        // 1 cm/s → III; 10 cm/s → ~VI.8; 1 m/s → ~X.5.
        assert!((intensity_from_pgv(0.01) - 3.0).abs() < 0.01);
        assert!((intensity_from_pgv(0.1) - 6.77).abs() < 0.01);
        assert!((intensity_from_pgv(1.0) - 10.54).abs() < 0.01);
        // clamping
        assert_eq!(intensity_from_pgv(0.0), 1.0);
        assert_eq!(intensity_from_pgv(1.0e-6), 1.0);
        assert_eq!(intensity_from_pgv(100.0), 12.0);
    }

    #[test]
    fn intensity_is_monotone_in_pgv() {
        let mut prev = 0.0;
        for e in -4..3 {
            let i = intensity_from_pgv(10f32.powi(e));
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn map_statistics() {
        let mut rec = PgvRecorder::new(2, 2);
        rec.pgv = vec![0.01, 0.1, 1.0, 0.0];
        let map = HazardMap::from_pgv(&rec, 2, 2);
        assert!((map.at(0, 0) - 3.0).abs() < 0.01);
        assert!((map.max() - 10.54).abs() < 0.01);
        assert!((map.fraction_at_or_above(9.0) - 0.25).abs() < 1e-12);
        let ascii = map.ascii();
        assert_eq!(ascii.lines().count(), 2);
    }
}
