//! The unified software framework of Fig. 3.
//!
//! "A unified software framework that includes the dynamic rupture
//! generator, the wave propagation part, and the other supporting
//! functions, such as source partitioner, 3D model generator, restart
//! controller, and parallel I/O functions."
//!
//! [`UnifiedFramework`] chains the stages end to end: dynamic rupture on
//! the fault → kinematic source export → source partitioning → material
//! interpolation → wave propagation with recorders → hazard map.

use crate::driver::{run_multirank, MultiRankOutput, SimConfig, Simulation};
use crate::error::{ConfigError, RunError};
use crate::hazard::HazardMap;
use sw_io::Station;
use sw_model::VelocityModel;
use sw_parallel::RankGrid;
use sw_rupture::{export_kinematic, RuptureResult, RuptureSolver};

/// The end-to-end pipeline.
pub struct UnifiedFramework {
    /// The rupture stage (configured fault + stress + friction).
    pub rupture: RuptureSolver,
    /// The wave-propagation configuration (sources are filled in by the
    /// rupture stage).
    pub config: SimConfig,
    /// Slip rake handed to the source export, degrees.
    pub rake_deg: f64,
}

/// Everything the pipeline produces.
pub struct FrameworkOutput {
    /// The rupture stage's result (slip, front, snapshots — Fig. 10b).
    pub rupture: RuptureResult,
    /// Merged wave-propagation observables.
    pub waves: MultiRankOutput,
    /// The seismic-intensity hazard map (Fig. 11e–f).
    pub hazard: HazardMap,
}

impl UnifiedFramework {
    /// Run the complete cycle on `grid` ranks.
    #[allow(clippy::result_large_err)] // cold abort-path error; see Simulation::step_checked
    pub fn run(
        &self,
        model: &(dyn VelocityModel + Sync),
        grid: RankGrid,
        rupture_snapshot_times: &[f64],
    ) -> Result<FrameworkOutput, RunError> {
        // 1. Dynamic rupture (CG-FDM stage).
        let rupture = self.rupture.solve(rupture_snapshot_times);
        // 2. Export to kinematic subfaults on the wave mesh, lower to
        //    point sources (the source partitioner runs inside the
        //    multi-rank driver).
        let fault = export_kinematic(
            &self.rupture.geometry,
            &rupture,
            self.rupture.params.shear_modulus,
            self.config.dx,
            self.config.origin,
            self.rake_deg,
        );
        let mut config = self.config.clone();
        config.sources = fault.to_point_sources();
        // Drop sources that fall outside the wave mesh (a scaled-down
        // mesh may not cover the full fault).
        let d = config.dims;
        config.sources.retain(|s| s.ix < d.nx && s.iy < d.ny && s.iz < d.nz);
        // 3–4. Wave propagation with model interpolation and recording.
        let waves = run_multirank(model, &config, grid)?;
        // 5. Hazard map from the PGV field.
        let hazard = HazardMap::from_pgv(&waves.pgv, d.nx, d.ny);
        Ok(FrameworkOutput { rupture, waves, hazard })
    }

    /// Single-rank convenience (returns the `Simulation` for inspection).
    pub fn run_single(
        &self,
        model: &dyn VelocityModel,
        rupture_snapshot_times: &[f64],
    ) -> Result<(RuptureResult, Simulation), ConfigError> {
        let rupture = self.rupture.solve(rupture_snapshot_times);
        let fault = export_kinematic(
            &self.rupture.geometry,
            &rupture,
            self.rupture.params.shear_modulus,
            self.config.dx,
            self.config.origin,
            self.rake_deg,
        );
        let mut config = self.config.clone();
        config.sources = fault.to_point_sources();
        let d = config.dims;
        config.sources.retain(|s| s.ix < d.nx && s.iy < d.ny && s.iz < d.nz);
        let mut sim = Simulation::new(model, &config)?;
        sim.run(config.steps);
        Ok((rupture, sim))
    }

    /// Default station set: place one station per named site of a
    /// Tangshan-like model, mapped onto the mesh.
    pub fn stations_from_model(
        model: &sw_model::TangshanModel,
        dims: sw_grid::Dims3,
        dx: f64,
    ) -> Vec<Station> {
        model
            .stations
            .iter()
            .map(|(name, fx, fy)| Station {
                name: name.clone(),
                ix: (((fx * model.lx) / dx) as usize).min(dims.nx - 1),
                iy: (((fy * model.ly) / dx) as usize).min(dims.ny - 1),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_grid::Dims3;
    use sw_model::TangshanModel;
    use sw_rupture::{FaultGeometry, TectonicStress};

    /// A fully scaled-down Tangshan pipeline that runs in test time.
    fn tiny_framework() -> (TangshanModel, UnifiedFramework) {
        let model = TangshanModel::with_extent(12_000.0, 12_000.0, 6_000.0);
        let geometry = FaultGeometry::curved_strike_slip(
            (4_000.0, 4_000.0),
            5_000.0,
            3_000.0,
            500.0,
            30.0,
            20.0,
            0.3,
            1_000.0,
        );
        let mut params = sw_rupture::dynamics::RuptureParams::standard(500.0);
        params.t_end = 4.0;
        let rupture =
            RuptureSolver::new(geometry, &TectonicStress::north_china(), params, (0.3, 0.5));
        let dims = Dims3::new(24, 24, 12);
        let mut config = SimConfig::new(dims, 500.0, 40);
        config.options.sponge_width = 4;
        config.options.attenuation = false;
        config.stations = UnifiedFramework::stations_from_model(&model, dims, 500.0);
        (model, UnifiedFramework { rupture, config, rake_deg: 180.0 })
    }

    #[test]
    fn full_pipeline_produces_all_artifacts() {
        let (model, fw) = tiny_framework();
        let out = fw.run(&model, sw_parallel::RankGrid::new(2, 2), &[1.0]).expect("valid config");
        assert!(out.rupture.ruptured_fraction() > 0.3, "rupture happened");
        assert_eq!(out.rupture.snapshots.len(), 1, "Fig. 10b snapshot taken");
        assert!(out.waves.pgv.max() > 0.0, "ground motion reached the surface");
        assert!(out.hazard.max() > 1.0, "hazard map shows shaking");
        assert_eq!(out.waves.seismograms.len(), 2, "both stations recorded");
    }

    #[test]
    fn single_and_multi_rank_agree() {
        let (model, fw) = tiny_framework();
        let (_, sim) = fw.run_single(&model, &[]).expect("valid config");
        let out = fw.run(&model, sw_parallel::RankGrid::new(2, 2), &[]).expect("valid config");
        // same stations, same pgv field (bitwise)
        let single_pgv = sim.pgv;
        for x in 0..24 {
            for y in 0..24 {
                assert_eq!(
                    single_pgv.at(x, y),
                    out.waves.pgv.at(x, y),
                    "PGV mismatch at ({x},{y})"
                );
            }
        }
    }
}
