//! Execution modes: which implementation of the step kernels runs.
//!
//! The paper's production runs never compute on the management core —
//! every kernel of the step executes on the 64-CPE pool (§6.2, Fig. 4).
//! [`ExecMode`] is the host-side version of that switch: `Serial` runs
//! the reference kernels on the calling thread, `Parallel` routes every
//! phase (free surface, velocity, stress, plasticity, sponge, the §6.5
//! compression round trip, and checkpoint clones) through the Rayon
//! CPE-pool analogue in [`crate::kernels::parallel`], and `Auto` — the
//! default — picks `Parallel` when the grid is big enough to amortize the
//! fan-out and more than one worker thread is available.
//!
//! Both paths are **bit-identical** (pinned by the `exec_equivalence`
//! integration tests): the parallel kernels split the mesh into disjoint
//! x planes and keep the in-plane floating-point evaluation order
//! unchanged, so mode is purely a performance choice.
//!
//! ## Composing with the rank runtime
//!
//! `run_multirank` spawns one OS thread per rank; each rank's step then
//! fans out over the *shared, bounded* Rayon worker budget (see the
//! vendored `rayon` crate and `sw_parallel::run_ranks`). Helper
//! acquisition never blocks — a rank that finds the budget empty simply
//! runs its planes inline — so ranks × pool composes without deadlock
//! and the process never runs more than `ranks + threads − 1` busy
//! threads. Pin the budget with [`SimConfig::with_threads`]
//! (`--threads` on the CLI, `SWQUAKE_THREADS` in the environment).
//!
//! [`SimConfig::with_threads`]: crate::SimConfig::with_threads

use std::fmt;
use std::str::FromStr;

/// Grid size (interior points) above which `Auto` goes parallel. Below
/// it, plane fan-out overhead rivals the kernel work itself: a 32³ block
/// is roughly where one x plane reaches a few thousand points.
pub const AUTO_PARALLEL_THRESHOLD: usize = 32 * 32 * 32;

/// Which kernel implementations the driver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Reference serial kernels on the calling thread.
    Serial,
    /// Rayon CPE-pool kernels for every step phase.
    Parallel,
    /// SIMD-vectorized, cache-tiled kernels on the Rayon pool. Requires
    /// the `simd` cargo feature; without it the driver falls back to
    /// `Parallel` (documented, and reported via the perf ledger's exec
    /// stamp so the fallback is never silent in measurements).
    Simd,
    /// `Parallel` when the grid exceeds [`AUTO_PARALLEL_THRESHOLD`]
    /// points and the pool has more than one thread; `Serial` otherwise.
    #[default]
    Auto,
}

/// The concrete kernel path a mode resolved to for a given mesh — what
/// the driver actually routes each step phase through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// Reference serial kernels.
    Serial,
    /// Rayon x-plane fan-out, scalar inner loops.
    Parallel,
    /// Rayon x-plane fan-out with SIMD lanes and z–y cache tiling.
    Simd,
}

impl ExecPath {
    /// Whether this path fans work out over the Rayon pool (the SIMD
    /// path composes with the same x-plane decomposition, so every
    /// pool-based fan-out — compression, checkpoint clones, health
    /// scans — stays parallel under it).
    pub fn is_parallel(self) -> bool {
        !matches!(self, ExecPath::Serial)
    }
}

impl fmt::Display for ExecPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecPath::Serial => "serial",
            ExecPath::Parallel => "parallel",
            ExecPath::Simd => "simd",
        })
    }
}

/// Whether this build carries the vectorized kernels (`--features simd`).
pub const fn simd_compiled() -> bool {
    cfg!(feature = "simd")
}

impl ExecMode {
    /// The process-wide default: `SWQUAKE_EXEC` when set (same syntax as
    /// `--exec`; invalid values are ignored), `Auto` otherwise. Explicit
    /// [`crate::SimConfig::with_exec`] always wins over the environment.
    pub fn from_env() -> Self {
        std::env::var("SWQUAKE_EXEC").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
    }

    /// Resolve the mode for a mesh: `true` means run a pool-based path.
    pub fn resolve(self, points: usize) -> bool {
        self.resolve_path(points).is_parallel()
    }

    /// Resolve the mode for a mesh into the concrete kernel path.
    /// `Simd` degrades to `Parallel` when the `simd` feature is not
    /// compiled in (both are bit-identical to serial, so only throughput
    /// changes).
    pub fn resolve_path(self, points: usize) -> ExecPath {
        match self {
            ExecMode::Serial => ExecPath::Serial,
            ExecMode::Parallel => ExecPath::Parallel,
            ExecMode::Simd => {
                if simd_compiled() {
                    ExecPath::Simd
                } else {
                    ExecPath::Parallel
                }
            }
            ExecMode::Auto => {
                if points >= AUTO_PARALLEL_THRESHOLD && rayon::current_num_threads() > 1 {
                    ExecPath::Parallel
                } else {
                    ExecPath::Serial
                }
            }
        }
    }
}

impl FromStr for ExecMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "serial" => Ok(ExecMode::Serial),
            "parallel" => Ok(ExecMode::Parallel),
            "simd" => Ok(ExecMode::Simd),
            "auto" => Ok(ExecMode::Auto),
            other => {
                Err(format!("unknown exec mode `{other}` (expected serial|parallel|simd|auto)"))
            }
        }
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ExecMode::Serial => "serial",
            ExecMode::Parallel => "parallel",
            ExecMode::Simd => "simd",
            ExecMode::Auto => "auto",
        })
    }
}

/// Pin the global Rayon worker budget to `threads` (0 = leave the
/// current setting: hardware parallelism unless previously pinned).
/// Idempotent; the last call wins.
pub fn configure_threads(threads: usize) {
    if threads > 0 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .expect("the vendored pool accepts reconfiguration");
    }
}

/// The thread-count default from `SWQUAKE_THREADS` (0 = unset/invalid).
pub fn threads_from_env() -> usize {
    std::env::var("SWQUAKE_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// The health-probe stride default from `SWQUAKE_HEALTH_STRIDE`
/// (`None` = unset/invalid, fall back to the CLI/config default).
pub fn health_stride_from_env() -> Option<u64> {
    std::env::var("SWQUAKE_HEALTH_STRIDE").ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_round_trips() {
        for mode in [ExecMode::Serial, ExecMode::Parallel, ExecMode::Simd, ExecMode::Auto] {
            assert_eq!(mode.to_string().parse::<ExecMode>().unwrap(), mode);
        }
        assert_eq!("PARALLEL".parse::<ExecMode>().unwrap(), ExecMode::Parallel);
        assert_eq!("SIMD".parse::<ExecMode>().unwrap(), ExecMode::Simd);
        assert!("cpes".parse::<ExecMode>().is_err());
    }

    #[test]
    fn fixed_modes_ignore_grid_size() {
        assert!(!ExecMode::Serial.resolve(usize::MAX));
        assert!(ExecMode::Parallel.resolve(1));
        assert!(ExecMode::Simd.resolve(1), "simd is pool-based with or without the feature");
    }

    #[test]
    fn simd_path_honours_the_compiled_feature() {
        let path = ExecMode::Simd.resolve_path(1);
        if simd_compiled() {
            assert_eq!(path, ExecPath::Simd);
        } else {
            assert_eq!(path, ExecPath::Parallel, "feature off: degrade to parallel");
        }
        assert!(path.is_parallel());
        assert_eq!(ExecMode::Serial.resolve_path(usize::MAX), ExecPath::Serial);
        assert_eq!(ExecPath::Simd.to_string(), "simd");
    }

    #[test]
    fn auto_stays_serial_below_threshold() {
        assert!(!ExecMode::Auto.resolve(AUTO_PARALLEL_THRESHOLD - 1));
    }

    #[test]
    fn auto_above_threshold_follows_pool_width() {
        let expect = rayon::current_num_threads() > 1;
        assert_eq!(ExecMode::Auto.resolve(AUTO_PARALLEL_THRESHOLD), expect);
    }
}
