//! `swquake-core` — the paper's primary contribution: a nonlinear
//! staggered-grid finite-difference earthquake simulator in the AWP-ODC
//! lineage, redesigned around the Sunway memory schemes of §6.
//!
//! The solver integrates the velocity–stress formulation (paper eqs. 1–2)
//! with 4th-order staggered differences in space and leapfrog in time,
//! coarse-grained anelastic attenuation (the r1..r6 memory variables of
//! Fig. 5), Drucker–Prager plasticity (eqs. 3–4), a stress-imaging free
//! surface and Cerjan absorbing boundaries.
//!
//! * [`staggered`] — the 4th-order staggered difference operators
//!   (c₁ = 9/8, c₂ = −1/24) and CFL bound;
//! * [`state`] — the full simulation state: the 28 (linear) / 35+
//!   (nonlinear) 3-D arrays of §3, built from any `sw-model` velocity
//!   model;
//! * [`kernels`] — the paper's kernel set: `dvelcx`/`dvelcy` (velocity),
//!   `dstrqc` (stress + attenuation), `fstr` (free surface),
//!   `drprecpc_calc`/`drprecpc_app` (plasticity), `addsrc` (source
//!   injection), and the Cerjan sponge;
//! * [`flops`] — §7.1-convention flop accounting;
//! * [`driver`] — the per-rank timestep driver with recorders, restart
//!   control and on-the-fly compression;
//! * [`health`] — the in-situ simulation-health monitor: per-step field
//!   probes, the stability watchdog, and the compression error budget;
//! * [`exec`] — execution modes: serial reference kernels vs the Rayon
//!   CPE-pool analogue (bit-identical; §6.2's "never compute on the
//!   MPE" as a host-side switch);
//! * [`resident`] — compressed-resident wavefields: the dynamic arrays
//!   live as 16-bit planes and each phase streams column tiles through a
//!   small f32 slab, so scenarios bigger than RAM still run;
//! * [`framework`] — the unified workflow of Fig. 3 (rupture → partition
//!   → interpolate → propagate → record);
//! * [`hazard`] — PGV → Chinese seismic intensity hazard maps
//!   (Fig. 11e–f);
//! * [`roofline`] — the predicted-vs-simulated per-kernel attribution
//!   report (Table 3 / Fig. 7-style breakdown) joining the analytic
//!   blocking model, the calibrated perf model, and a run's telemetry;
//! * [`sunway`] — execution of a kernel through the simulated SW26010
//!   memory hierarchy (LDM windows + DMA + register-communication halos),
//!   bit-identical to the plain kernel while charging hardware costs.

pub mod driver;
pub mod error;
pub mod exec;
pub mod flops;
pub mod framework;
pub mod hazard;
pub mod health;
pub mod kernels;
pub mod resident;
pub mod roofline;
pub mod staggered;
pub mod state;
pub mod sunway;

pub use driver::{MultiRankOutput, ResumeInfo, SimConfig, Simulation};
pub use error::{ConfigError, KilledError, RestoreError, RunError, UnstableError};
pub use exec::{simd_compiled, ExecMode, ExecPath};
pub use framework::UnifiedFramework;
pub use resident::ResidentMode;
pub use state::SolverState;
