//! The stress update with attenuation (`dstrqc`).
//!
//! Paper eq. (2): `∂σ/∂t = λ(∇·v)I + μ(∇v + ∇vᵀ)`, plus one coarse-grained
//! anelastic memory variable per stress component (the `r1..r6` arrays of
//! Fig. 5d). The memory variables implement a standard-linear-solid
//! mechanism centered at the reference frequency: with weight `w ≈ 1/Q`,
//!
//! ```text
//! σⁿ⁺¹ = σⁿ + dt (E − r̄)        E = elastic stress rate
//! rⁿ⁺¹ = a rⁿ + b w E           a = (2τ−dt)/(2τ+dt), b = 2dt/(2τ+dt)
//! ```
//!
//! so a `Q = ∞` (w = 0) medium is exactly elastic and smaller Q decays
//! faster — the property the attenuation tests pin down.

use crate::staggered::{dxm, dxp, dym, dyp, dzm, dzp};
use crate::state::SolverState;
use std::ops::Range;

/// Update stresses (and memory variables) in `x_range × y_range` (full z).
pub fn update_stress_region(s: &mut SolverState, x_range: Range<usize>, y_range: Range<usize>) {
    let d = s.dims;
    let inv_dx = (1.0 / s.dx) as f32;
    let dt = s.dt as f32;
    let atten = s.options.attenuation;
    let tau = s.tau as f32;
    let (a_coef, b_coef) = if atten {
        ((2.0 * tau - dt) / (2.0 * tau + dt), 2.0 * dt / (2.0 * tau + dt))
    } else {
        (1.0, 0.0)
    };
    for x in x_range {
        for y in y_range.clone() {
            for z in 0..d.nz {
                let lam = s.lam.get(x, y, z);
                let mu = s.mu.get(x, y, z);
                // strain rates (1/s)
                let exx = dxm(&s.u, x, y, z) * inv_dx;
                let eyy = dym(&s.v, x, y, z) * inv_dx;
                let ezz = dzm(&s.w, x, y, z) * inv_dx;
                let div = exx + eyy + ezz;
                let exy = (dyp(&s.u, x, y, z) + dxp(&s.v, x, y, z)) * inv_dx;
                let exz = (dzp(&s.u, x, y, z) + dxp(&s.w, x, y, z)) * inv_dx;
                let eyz = (dzp(&s.v, x, y, z) + dyp(&s.w, x, y, z)) * inv_dx;
                // elastic stress rates (Pa/s)
                let rates = [
                    lam * div + 2.0 * mu * exx,
                    lam * div + 2.0 * mu * eyy,
                    lam * div + 2.0 * mu * ezz,
                    mu * exy,
                    mu * exz,
                    mu * eyz,
                ];
                let wp = s.wp.get(x, y, z);
                let ws = s.ws.get(x, y, z);
                let weights = [wp, wp, wp, ws, ws, ws];
                let fields: [&mut sw_grid::Field3; 6] =
                    [&mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy, &mut s.xz, &mut s.yz];
                for (c, field) in fields.into_iter().enumerate() {
                    let e = rates[c];
                    let r_old = s.r[c].get(x, y, z);
                    let (r_new, r_bar) = if atten {
                        let rn = a_coef * r_old + b_coef * weights[c] * e;
                        (rn, 0.5 * (rn + r_old))
                    } else {
                        (0.0, 0.0)
                    };
                    field.set(x, y, z, field.get(x, y, z) + dt * (e - r_bar));
                    if atten {
                        s.r[c].set(x, y, z, r_new);
                    }
                }
            }
        }
    }
}

/// `dstrqc`: the full-domain stress update.
pub fn dstrqc(s: &mut SolverState) {
    let d = s.dims;
    update_stress_region(s, 0..d.nx, 0..d.ny);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn state(attenuation: bool) -> SolverState {
        let opts = StateOptions { sponge_width: 0, attenuation, ..Default::default() };
        SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(8, 8, 8),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        )
    }

    /// A uniform velocity gradient du/dx produces the textbook stress
    /// rates: xx = (λ+2μ)ε̇, yy = zz = λε̇.
    #[test]
    fn uniaxial_strain_rates() {
        let mut s = state(false);
        let g = 0.5f32; // m/s per grid step
        for x in -2..10isize {
            for y in -2..10isize {
                for z in -2..10isize {
                    s.u.set_i(x, y, z, g * x as f32);
                }
            }
        }
        dstrqc(&mut s);
        let m = sw_model::Material::hard_rock();
        let e = g / s.dx as f32; // strain rate
        let dt = s.dt as f32;
        let expect_xx = (m.lambda() + 2.0 * m.mu()) * e * dt;
        let expect_yy = m.lambda() * e * dt;
        let got_xx = s.xx.get(4, 4, 4);
        let got_yy = s.yy.get(4, 4, 4);
        assert!((got_xx - expect_xx).abs() / expect_xx < 1e-4, "xx {got_xx} vs {expect_xx}");
        assert!((got_yy - expect_yy).abs() / expect_yy < 1e-4, "yy {got_yy} vs {expect_yy}");
        assert_eq!(s.xy.get(4, 4, 4), 0.0, "no shear from pure uniaxial strain");
    }

    /// A shear velocity gradient du/dy produces only xy stress.
    #[test]
    fn simple_shear_rates() {
        let mut s = state(false);
        let g = 0.5f32;
        for x in -2..10isize {
            for y in -2..10isize {
                for z in -2..10isize {
                    s.u.set_i(x, y, z, g * y as f32);
                }
            }
        }
        dstrqc(&mut s);
        let m = sw_model::Material::hard_rock();
        let expect = m.mu() * (g / s.dx as f32) * s.dt as f32;
        let got = s.xy.get(4, 4, 4);
        assert!((got - expect).abs() / expect < 1e-4, "xy {got} vs {expect}");
        assert!(s.xx.get(4, 4, 4).abs() < expect * 1e-5);
    }

    /// With attenuation on, repeated cycling loses stress amplitude
    /// relative to the elastic case; with w = 0 the memory variables stay
    /// zero and the result is bit-identical to the elastic path.
    #[test]
    fn attenuation_bleeds_energy() {
        let mut elastic = state(false);
        let mut anelastic = state(true);
        // make Q strong so one step shows a difference
        for v in anelastic.wp.raw_mut() {
            *v = 0.1; // Q = 10
        }
        for v in anelastic.ws.raw_mut() {
            *v = 0.1;
        }
        for s in [&mut elastic, &mut anelastic] {
            for x in -2..10isize {
                s.u.set_i(x, 4, 4, 0.5 * x as f32);
            }
        }
        for _ in 0..20 {
            dstrqc(&mut elastic);
            dstrqc(&mut anelastic);
        }
        let e = elastic.xx.get(4, 4, 4).abs();
        let a = anelastic.xx.get(4, 4, 4).abs();
        assert!(a < e, "attenuated stress {a} must trail elastic {e}");
        assert!(a > 0.5 * e, "but not unphysically fast");
    }

    #[test]
    fn zero_q_weight_matches_elastic_exactly() {
        let mut elastic = state(false);
        let mut anelastic = state(true);
        for v in anelastic.wp.raw_mut() {
            *v = 0.0;
        }
        for v in anelastic.ws.raw_mut() {
            *v = 0.0;
        }
        for s in [&mut elastic, &mut anelastic] {
            for x in -2..10isize {
                s.u.set_i(x, 4, 4, 0.5 * x as f32);
            }
        }
        dstrqc(&mut elastic);
        dstrqc(&mut anelastic);
        assert_eq!(elastic.xx.max_abs_diff(&anelastic.xx), 0.0);
        assert_eq!(anelastic.r[0].max_abs(), 0.0, "memory variables stay zero");
    }
}
