//! Fused-array kernel variants — the §6.4 "array fusion" as real code.
//!
//! The paper's MEM-level optimization fuses the co-located arrays so one
//! DMA transfer carries `k` components per point: velocity `(u, v, w)`
//! into 3-vectors and the six stresses into 6-vectors. On a cache-based
//! host the same transformation turns nine strided streams into two
//! unit-stride streams of wide elements, which is the memory-layout
//! experiment the `fusion` ablation bench measures.
//!
//! [`FusedWavefield`] owns the fused layout; [`dvelc_fused`] and
//! [`dstrqc_fused`] are the velocity/stress updates on it. Conversion to
//! and from the scalar [`SolverState`] layout is lossless, and the fused
//! kernels produce bit-identical wavefields (pinned by tests) because the
//! arithmetic per point is evaluated in the same order.

use crate::staggered::{C1, C2};
use crate::state::SolverState;
use sw_grid::{Vec3Field, Vec6Field};

/// The wavefields in the paper's fused layout.
#[derive(Debug, Clone)]
pub struct FusedWavefield {
    /// Velocity (u, v, w) as an AoS vec3 field.
    pub vel: Vec3Field,
    /// Stress (xx, yy, zz, xy, xz, yz) as an AoS vec6 field.
    pub stress: Vec6Field,
}

impl FusedWavefield {
    /// Fuse the scalar wavefields of a state.
    pub fn from_state(s: &SolverState) -> Self {
        Self {
            vel: Vec3Field::fuse([&s.u, &s.v, &s.w]),
            stress: Vec6Field::fuse([&s.xx, &s.yy, &s.zz, &s.xy, &s.xz, &s.yz]),
        }
    }

    /// Scatter the fused wavefields back into a state.
    pub fn into_state(self, s: &mut SolverState) {
        let [u, v, w] = self.vel.split();
        s.u = u;
        s.v = v;
        s.w = w;
        let [xx, yy, zz, xy, xz, yz] = self.stress.split();
        s.xx = xx;
        s.yy = yy;
        s.zz = zz;
        s.xy = xy;
        s.xz = xz;
        s.yz = yz;
    }
}

/// Stress component indices inside the vec6.
const XX: usize = 0;
const YY: usize = 1;
const ZZ: usize = 2;
const XY: usize = 3;
const XZ: usize = 4;
const YZ: usize = 5;

#[inline(always)]
fn d_plus(
    f: &Vec6Field,
    c: usize,
    x: isize,
    y: isize,
    z: isize,
    axis: (isize, isize, isize),
) -> f32 {
    let (dx, dy, dz) = axis;
    C1 * (f.comp_i(c, x + dx, y + dy, z + dz) - f.comp_i(c, x, y, z))
        + C2 * (f.comp_i(c, x + 2 * dx, y + 2 * dy, z + 2 * dz)
            - f.comp_i(c, x - dx, y - dy, z - dz))
}

#[inline(always)]
fn d_minus(
    f: &Vec6Field,
    c: usize,
    x: isize,
    y: isize,
    z: isize,
    axis: (isize, isize, isize),
) -> f32 {
    let (dx, dy, dz) = axis;
    C1 * (f.comp_i(c, x, y, z) - f.comp_i(c, x - dx, y - dy, z - dz))
        + C2 * (f.comp_i(c, x + dx, y + dy, z + dz)
            - f.comp_i(c, x - 2 * dx, y - 2 * dy, z - 2 * dz))
}

#[inline(always)]
fn v_plus(f: &Vec3Field, c: usize, x: isize, y: isize, z: isize, a: (isize, isize, isize)) -> f32 {
    C1 * (f.comp_i(c, x + a.0, y + a.1, z + a.2) - f.comp_i(c, x, y, z))
        + C2 * (f.comp_i(c, x + 2 * a.0, y + 2 * a.1, z + 2 * a.2)
            - f.comp_i(c, x - a.0, y - a.1, z - a.2))
}

#[inline(always)]
fn v_minus(f: &Vec3Field, c: usize, x: isize, y: isize, z: isize, a: (isize, isize, isize)) -> f32 {
    C1 * (f.comp_i(c, x, y, z) - f.comp_i(c, x - a.0, y - a.1, z - a.2))
        + C2 * (f.comp_i(c, x + a.0, y + a.1, z + a.2)
            - f.comp_i(c, x - 2 * a.0, y - 2 * a.1, z - 2 * a.2))
}

const AX: (isize, isize, isize) = (1, 0, 0);
const AY: (isize, isize, isize) = (0, 1, 0);
const AZ: (isize, isize, isize) = (0, 0, 1);

/// Velocity update on the fused layout (the whole domain, like
/// `dvelcx` + `dvelcy`).
pub fn dvelc_fused(w: &mut FusedWavefield, s: &SolverState) {
    let d = s.dims;
    let dt_dx = (s.dt / s.dx) as f32;
    let stress = &w.stress;
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let b = dt_dx / s.rho.get(x, y, z);
                let du = d_plus(stress, XX, xi, yi, zi, AX)
                    + d_minus(stress, XY, xi, yi, zi, AY)
                    + d_minus(stress, XZ, xi, yi, zi, AZ);
                let dv = d_minus(stress, XY, xi, yi, zi, AX)
                    + d_plus(stress, YY, xi, yi, zi, AY)
                    + d_minus(stress, YZ, xi, yi, zi, AZ);
                let dw = d_minus(stress, XZ, xi, yi, zi, AX)
                    + d_minus(stress, YZ, xi, yi, zi, AY)
                    + d_plus(stress, ZZ, xi, yi, zi, AZ);
                let mut v = w.vel.get(x, y, z);
                v[0] += b * du;
                v[1] += b * dv;
                v[2] += b * dw;
                w.vel.set(x, y, z, v);
            }
        }
    }
}

/// Elastic stress update on the fused layout (no attenuation term — the
/// fused path is the layout experiment; couple it with the memory
/// variables via the scalar path when needed).
pub fn dstrqc_fused(w: &mut FusedWavefield, s: &SolverState) {
    let d = s.dims;
    let inv_dx = (1.0 / s.dx) as f32;
    let dt = s.dt as f32;
    let vel = &w.vel;
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let lam = s.lam.get(x, y, z);
                let mu = s.mu.get(x, y, z);
                let exx = v_minus(vel, 0, xi, yi, zi, AX) * inv_dx;
                let eyy = v_minus(vel, 1, xi, yi, zi, AY) * inv_dx;
                let ezz = v_minus(vel, 2, xi, yi, zi, AZ) * inv_dx;
                let div = exx + eyy + ezz;
                let exy =
                    (v_plus(vel, 0, xi, yi, zi, AY) + v_plus(vel, 1, xi, yi, zi, AX)) * inv_dx;
                let exz =
                    (v_plus(vel, 0, xi, yi, zi, AZ) + v_plus(vel, 2, xi, yi, zi, AX)) * inv_dx;
                let eyz =
                    (v_plus(vel, 1, xi, yi, zi, AZ) + v_plus(vel, 2, xi, yi, zi, AY)) * inv_dx;
                let mut t = w.stress.get(x, y, z);
                t[XX] += dt * (lam * div + 2.0 * mu * exx);
                t[YY] += dt * (lam * div + 2.0 * mu * eyy);
                t[ZZ] += dt * (lam * div + 2.0 * mu * ezz);
                t[XY] += dt * (mu * exy);
                t[XZ] += dt * (mu * exz);
                t[YZ] += dt * (mu * eyz);
                w.stress.set(x, y, z, t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{dstrqc, velocity::update_velocity_region};
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn noisy_state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, attenuation: false, ..Default::default() };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(10, 12, 14),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e4);
            s.yy.set(x, y, z, v * 0.7e4);
            s.xy.set(x, y, z, -v * 5e3);
            s.yz.set(x, y, z, v * 3e3);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
        }
        s
    }

    #[test]
    fn fused_roundtrip_preserves_state() {
        let s = noisy_state();
        let mut s2 = s.clone();
        FusedWavefield::from_state(&s).into_state(&mut s2);
        assert_eq!(s.u.max_abs_diff(&s2.u), 0.0);
        assert_eq!(s.yz.max_abs_diff(&s2.yz), 0.0);
    }

    #[test]
    fn fused_velocity_matches_scalar_bitwise() {
        let mut scalar = noisy_state();
        let d = scalar.dims;
        update_velocity_region(&mut scalar, 0..d.nx, 0..d.ny);
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        dvelc_fused(&mut fused, &reference);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        assert_eq!(scalar.u.max_abs_diff(&out.u), 0.0);
        assert_eq!(scalar.v.max_abs_diff(&out.v), 0.0);
        assert_eq!(scalar.w.max_abs_diff(&out.w), 0.0);
    }

    #[test]
    fn fused_stress_matches_scalar_bitwise() {
        let mut scalar = noisy_state();
        dstrqc(&mut scalar);
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        dstrqc_fused(&mut fused, &reference);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        for (a, b) in scalar.stress().iter().zip(out.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn multiple_fused_steps_stay_identical() {
        let mut scalar = noisy_state();
        let d = scalar.dims;
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        for _ in 0..4 {
            update_velocity_region(&mut scalar, 0..d.nx, 0..d.ny);
            dstrqc(&mut scalar);
            dvelc_fused(&mut fused, &reference);
            dstrqc_fused(&mut fused, &reference);
        }
        let mut out = reference.clone();
        fused.into_state(&mut out);
        assert_eq!(scalar.u.max_abs_diff(&out.u), 0.0);
        assert_eq!(scalar.xx.max_abs_diff(&out.xx), 0.0);
    }
}
