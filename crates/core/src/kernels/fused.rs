//! Fused-array kernel variants — the §6.4 "array fusion" as real code.
//!
//! The paper's MEM-level optimization fuses the co-located arrays so one
//! DMA transfer carries `k` components per point: velocity `(u, v, w)`
//! into 3-vectors and the six stresses into 6-vectors. On a cache-based
//! host the same transformation turns nine strided streams into two
//! unit-stride streams of wide elements, which is the memory-layout
//! experiment the `fusion` ablation bench measures.
//!
//! [`FusedWavefield`] owns the fused layout; [`dvelc_fused`] and
//! [`dstrqc_fused`] are the velocity/stress updates on it. Conversion to
//! and from the scalar [`SolverState`] layout is lossless, and the fused
//! kernels produce bit-identical wavefields (pinned by tests) because the
//! arithmetic per point is evaluated in the same order.

use crate::staggered::{C1, C2};
use crate::state::SolverState;
use sw_grid::{Vec3Field, Vec6Field};
use sw_source::PointSource;

/// The wavefields in the paper's fused layout.
#[derive(Debug, Clone)]
pub struct FusedWavefield {
    /// Velocity (u, v, w) as an AoS vec3 field.
    pub vel: Vec3Field,
    /// Stress (xx, yy, zz, xy, xz, yz) as an AoS vec6 field.
    pub stress: Vec6Field,
}

impl FusedWavefield {
    /// Fuse the scalar wavefields of a state.
    pub fn from_state(s: &SolverState) -> Self {
        Self {
            vel: Vec3Field::fuse([&s.u, &s.v, &s.w]),
            stress: Vec6Field::fuse([&s.xx, &s.yy, &s.zz, &s.xy, &s.xz, &s.yz]),
        }
    }

    /// Scatter the fused wavefields back into a state.
    pub fn into_state(self, s: &mut SolverState) {
        let [u, v, w] = self.vel.split();
        s.u = u;
        s.v = v;
        s.w = w;
        let [xx, yy, zz, xy, xz, yz] = self.stress.split();
        s.xx = xx;
        s.yy = yy;
        s.zz = zz;
        s.xy = xy;
        s.xz = xz;
        s.yz = yz;
    }

    /// Copy the fused velocities into the state's scalar `(u, v, w)`
    /// without consuming the fused layout. The driver's fused production
    /// path calls this every step: seismogram/PGV recording reads the
    /// scalar velocity fields, so they are an output boundary.
    pub fn gather_velocities(&self, s: &mut SolverState) {
        for (c, f) in [&mut s.u, &mut s.v, &mut s.w].into_iter().enumerate() {
            for (dst, src) in f.raw_mut().iter_mut().zip(self.vel.raw()) {
                *dst = src[c];
            }
        }
    }

    /// Copy the fused stresses into the state's six scalar fields without
    /// consuming the fused layout. Only needed at checkpoint / health /
    /// snapshot boundaries — the fused path keeps stress fused between
    /// them.
    pub fn gather_stress(&self, s: &mut SolverState) {
        for (c, f) in [&mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy, &mut s.xz, &mut s.yz]
            .into_iter()
            .enumerate()
        {
            for (dst, src) in f.raw_mut().iter_mut().zip(self.stress.raw()) {
                *dst = src[c];
            }
        }
    }

    /// Full non-consuming write-back: velocities and stresses.
    pub fn gather_all(&self, s: &mut SolverState) {
        self.gather_velocities(s);
        self.gather_stress(s);
    }
}

/// Stress component indices inside the vec6.
const XX: usize = 0;
const YY: usize = 1;
const ZZ: usize = 2;
const XY: usize = 3;
const XZ: usize = 4;
const YZ: usize = 5;

#[inline(always)]
fn d_plus(
    f: &Vec6Field,
    c: usize,
    x: isize,
    y: isize,
    z: isize,
    axis: (isize, isize, isize),
) -> f32 {
    let (dx, dy, dz) = axis;
    C1 * (f.comp_i(c, x + dx, y + dy, z + dz) - f.comp_i(c, x, y, z))
        + C2 * (f.comp_i(c, x + 2 * dx, y + 2 * dy, z + 2 * dz)
            - f.comp_i(c, x - dx, y - dy, z - dz))
}

#[inline(always)]
fn d_minus(
    f: &Vec6Field,
    c: usize,
    x: isize,
    y: isize,
    z: isize,
    axis: (isize, isize, isize),
) -> f32 {
    let (dx, dy, dz) = axis;
    C1 * (f.comp_i(c, x, y, z) - f.comp_i(c, x - dx, y - dy, z - dz))
        + C2 * (f.comp_i(c, x + dx, y + dy, z + dz)
            - f.comp_i(c, x - 2 * dx, y - 2 * dy, z - 2 * dz))
}

#[inline(always)]
fn v_plus(f: &Vec3Field, c: usize, x: isize, y: isize, z: isize, a: (isize, isize, isize)) -> f32 {
    C1 * (f.comp_i(c, x + a.0, y + a.1, z + a.2) - f.comp_i(c, x, y, z))
        + C2 * (f.comp_i(c, x + 2 * a.0, y + 2 * a.1, z + 2 * a.2)
            - f.comp_i(c, x - a.0, y - a.1, z - a.2))
}

#[inline(always)]
fn v_minus(f: &Vec3Field, c: usize, x: isize, y: isize, z: isize, a: (isize, isize, isize)) -> f32 {
    C1 * (f.comp_i(c, x, y, z) - f.comp_i(c, x - a.0, y - a.1, z - a.2))
        + C2 * (f.comp_i(c, x + a.0, y + a.1, z + a.2)
            - f.comp_i(c, x - 2 * a.0, y - 2 * a.1, z - 2 * a.2))
}

const AX: (isize, isize, isize) = (1, 0, 0);
const AY: (isize, isize, isize) = (0, 1, 0);
const AZ: (isize, isize, isize) = (0, 0, 1);

/// Velocity update on the fused layout (the whole domain, like
/// `dvelcx` + `dvelcy`).
pub fn dvelc_fused(w: &mut FusedWavefield, s: &SolverState) {
    let d = s.dims;
    let dt_dx = (s.dt / s.dx) as f32;
    let stress = &w.stress;
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let b = dt_dx * s.buoyancy.get(x, y, z);
                let du = d_plus(stress, XX, xi, yi, zi, AX)
                    + d_minus(stress, XY, xi, yi, zi, AY)
                    + d_minus(stress, XZ, xi, yi, zi, AZ);
                let dv = d_minus(stress, XY, xi, yi, zi, AX)
                    + d_plus(stress, YY, xi, yi, zi, AY)
                    + d_minus(stress, YZ, xi, yi, zi, AZ);
                let dw = d_minus(stress, XZ, xi, yi, zi, AX)
                    + d_minus(stress, YZ, xi, yi, zi, AY)
                    + d_plus(stress, ZZ, xi, yi, zi, AZ);
                let mut v = w.vel.get(x, y, z);
                v[0] += b * du;
                v[1] += b * dv;
                v[2] += b * dw;
                w.vel.set(x, y, z, v);
            }
        }
    }
}

/// Elastic stress update on the fused layout (no attenuation term — the
/// fused path is the layout experiment; couple it with the memory
/// variables via the scalar path when needed).
pub fn dstrqc_fused(w: &mut FusedWavefield, s: &SolverState) {
    let d = s.dims;
    let inv_dx = (1.0 / s.dx) as f32;
    let dt = s.dt as f32;
    let vel = &w.vel;
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (xi, yi, zi) = (x as isize, y as isize, z as isize);
                let lam = s.lam.get(x, y, z);
                let mu = s.mu.get(x, y, z);
                let exx = v_minus(vel, 0, xi, yi, zi, AX) * inv_dx;
                let eyy = v_minus(vel, 1, xi, yi, zi, AY) * inv_dx;
                let ezz = v_minus(vel, 2, xi, yi, zi, AZ) * inv_dx;
                let div = exx + eyy + ezz;
                let exy =
                    (v_plus(vel, 0, xi, yi, zi, AY) + v_plus(vel, 1, xi, yi, zi, AX)) * inv_dx;
                let exz =
                    (v_plus(vel, 0, xi, yi, zi, AZ) + v_plus(vel, 2, xi, yi, zi, AX)) * inv_dx;
                let eyz =
                    (v_plus(vel, 1, xi, yi, zi, AZ) + v_plus(vel, 2, xi, yi, zi, AY)) * inv_dx;
                let mut t = w.stress.get(x, y, z);
                t[XX] += dt * (lam * div + 2.0 * mu * exx);
                t[YY] += dt * (lam * div + 2.0 * mu * eyy);
                t[ZZ] += dt * (lam * div + 2.0 * mu * ezz);
                t[XY] += dt * (mu * exy);
                t[XZ] += dt * (mu * exz);
                t[YZ] += dt * (mu * eyz);
                w.stress.set(x, y, z, t);
            }
        }
    }
}

/// Free-surface imaging on the fused layout — mirrors [`crate::kernels::fstr`]
/// component-for-component (σzz zeroed and antisymmetric, σxz/σyz
/// antisymmetric about the half-staggered surface, `w` symmetric).
pub fn fstr_fused(w: &mut FusedWavefield, s: &SolverState) {
    let d = s.dims;
    for x in 0..d.nx {
        for y in 0..d.ny {
            let (xi, yi) = (x as isize, y as isize);
            let st = &mut w.stress;
            st.set_comp_i(ZZ, xi, yi, 0, 0.0);
            st.set_comp_i(ZZ, xi, yi, -1, -st.comp_i(ZZ, xi, yi, 1));
            st.set_comp_i(ZZ, xi, yi, -2, -st.comp_i(ZZ, xi, yi, 2));
            st.set_comp_i(XZ, xi, yi, -1, -st.comp_i(XZ, xi, yi, 0));
            st.set_comp_i(XZ, xi, yi, -2, -st.comp_i(XZ, xi, yi, 1));
            st.set_comp_i(YZ, xi, yi, -1, -st.comp_i(YZ, xi, yi, 0));
            st.set_comp_i(YZ, xi, yi, -2, -st.comp_i(YZ, xi, yi, 1));
            let vel = &mut w.vel;
            vel.set_comp_i(2, xi, yi, -1, vel.comp_i(2, xi, yi, 0));
            vel.set_comp_i(2, xi, yi, -2, vel.comp_i(2, xi, yi, 1));
        }
    }
}

/// Source injection on the fused layout — same accumulation as
/// [`crate::kernels::addsrc`], one fused read-modify-write per source.
pub fn addsrc_fused(w: &mut FusedWavefield, s: &SolverState, sources: &[PointSource], t: f64) {
    let d = s.dims;
    let vol = s.dx * s.dx * s.dx;
    for src in sources {
        if src.ix >= d.nx || src.iy >= d.ny || src.iz >= d.nz {
            continue;
        }
        let inc = src.stress_increment(t, s.dt, vol);
        let mut t6 = w.stress.get(src.ix, src.iy, src.iz);
        for (c, i) in t6.iter_mut().zip(inc) {
            *c += i;
        }
        w.stress.set(src.ix, src.iy, src.iz, t6);
    }
}

/// Cerjan sponge on the fused layout. Each element is multiplied once by
/// the same damping factor as the scalar kernel, so the result is
/// bit-identical regardless of traversal order. The fused production
/// path is elastic-only (no memory variables), so only the nine
/// wavefield components are damped.
pub fn apply_sponge_fused(w: &mut FusedWavefield, s: &SolverState) {
    if s.options.sponge_width == 0 {
        return;
    }
    let d = s.dims;
    for x in 0..d.nx {
        for y in 0..d.ny {
            let damp = s.dcrj.row(x, y);
            for (v3, &g) in w.vel.z_run_mut(x, y).iter_mut().zip(damp) {
                for c in v3.iter_mut() {
                    *c *= g;
                }
            }
            for (t6, &g) in w.stress.z_run_mut(x, y).iter_mut().zip(damp) {
                for c in t6.iter_mut() {
                    *c *= g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{addsrc, apply_sponge, dstrqc, fstr, velocity::update_velocity_region};
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn noisy_state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, attenuation: false, ..Default::default() };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(10, 12, 14),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e4);
            s.yy.set(x, y, z, v * 0.7e4);
            s.xy.set(x, y, z, -v * 5e3);
            s.yz.set(x, y, z, v * 3e3);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
        }
        s
    }

    #[test]
    fn fused_roundtrip_preserves_state() {
        let s = noisy_state();
        let mut s2 = s.clone();
        FusedWavefield::from_state(&s).into_state(&mut s2);
        assert_eq!(s.u.max_abs_diff(&s2.u), 0.0);
        assert_eq!(s.yz.max_abs_diff(&s2.yz), 0.0);
    }

    #[test]
    fn fused_velocity_matches_scalar_bitwise() {
        let mut scalar = noisy_state();
        let d = scalar.dims;
        update_velocity_region(&mut scalar, 0..d.nx, 0..d.ny);
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        dvelc_fused(&mut fused, &reference);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        assert_eq!(scalar.u.max_abs_diff(&out.u), 0.0);
        assert_eq!(scalar.v.max_abs_diff(&out.v), 0.0);
        assert_eq!(scalar.w.max_abs_diff(&out.w), 0.0);
    }

    #[test]
    fn fused_stress_matches_scalar_bitwise() {
        let mut scalar = noisy_state();
        dstrqc(&mut scalar);
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        dstrqc_fused(&mut fused, &reference);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        for (a, b) in scalar.stress().iter().zip(out.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn fused_free_surface_matches_scalar_bitwise() {
        let mut scalar = noisy_state();
        fstr(&mut scalar);
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        fstr_fused(&mut fused, &reference);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        assert_eq!(scalar.zz.max_abs_diff(&out.zz), 0.0);
        assert_eq!(scalar.xz.max_abs_diff(&out.xz), 0.0);
        assert_eq!(scalar.yz.max_abs_diff(&out.yz), 0.0);
        assert_eq!(scalar.w.max_abs_diff(&out.w), 0.0);
        // the mirrored halo planes themselves must match too
        assert_eq!(out.zz.at_i(3, 4, -1), scalar.zz.at_i(3, 4, -1));
        assert_eq!(out.w.at_i(3, 4, -2), scalar.w.at_i(3, 4, -2));
    }

    #[test]
    fn fused_source_injection_matches_scalar_bitwise() {
        use sw_source::{MomentTensor, SourceTimeFunction};
        let src = PointSource {
            ix: 4,
            iy: 5,
            iz: 6,
            moment: MomentTensor::double_couple(30.0, 90.0, 0.0, 1.0e15),
            stf: SourceTimeFunction::Triangle { onset: 0.0, duration: 0.5 },
        };
        let oob = PointSource { ix: 100, ..src };
        let mut scalar = noisy_state();
        addsrc(&mut scalar, &[src, oob], 0.25);
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        addsrc_fused(&mut fused, &reference, &[src, oob], 0.25);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        for (a, b) in scalar.stress().iter().zip(out.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn fused_sponge_matches_scalar_bitwise() {
        let opts = StateOptions { attenuation: false, ..Default::default() };
        let mut scalar = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(16, 14, 12),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in scalar.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            scalar.xx.set(x, y, z, v * 1e4);
            scalar.u.set(x, y, z, v * 0.01);
            scalar.yz.set(x, y, z, v * 3e3);
        }
        assert!(scalar.options.sponge_width > 0, "fixture must exercise the sponge");
        let reference = scalar.clone();
        apply_sponge(&mut scalar);
        let mut fused = FusedWavefield::from_state(&reference);
        apply_sponge_fused(&mut fused, &reference);
        let mut out = reference.clone();
        fused.into_state(&mut out);
        assert_eq!(scalar.u.max_abs_diff(&out.u), 0.0);
        assert_eq!(scalar.xx.max_abs_diff(&out.xx), 0.0);
        assert_eq!(scalar.yz.max_abs_diff(&out.yz), 0.0);
    }

    #[test]
    fn gather_helpers_write_back_without_consuming() {
        let s = noisy_state();
        let fused = FusedWavefield::from_state(&s);
        let mut out = noisy_state();
        // scrub the wavefields so the gather has to restore them
        out.u.fill_with(|_, _, _| 0.0);
        out.xx.fill_with(|_, _, _| 0.0);
        fused.gather_velocities(&mut out);
        assert_eq!(s.u.max_abs_diff(&out.u), 0.0);
        assert_eq!(out.xx.max_abs(), 0.0, "velocities-only gather leaves stress alone");
        fused.gather_all(&mut out);
        assert_eq!(s.xx.max_abs_diff(&out.xx), 0.0);
        assert_eq!(s.yz.max_abs_diff(&out.yz), 0.0);
    }

    #[test]
    fn multiple_fused_steps_stay_identical() {
        let mut scalar = noisy_state();
        let d = scalar.dims;
        let reference = noisy_state();
        let mut fused = FusedWavefield::from_state(&reference);
        for _ in 0..4 {
            update_velocity_region(&mut scalar, 0..d.nx, 0..d.ny);
            dstrqc(&mut scalar);
            dvelc_fused(&mut fused, &reference);
            dstrqc_fused(&mut fused, &reference);
        }
        let mut out = reference.clone();
        fused.into_state(&mut out);
        assert_eq!(scalar.u.max_abs_diff(&out.u), 0.0);
        assert_eq!(scalar.xx.max_abs_diff(&out.xx), 0.0);
    }
}
