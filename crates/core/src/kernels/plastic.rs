//! Drucker–Prager plasticity (`drprecpc_calc`, `drprecpc_app`).
//!
//! Paper eqs. (3)–(4): the yield stress is
//! `Y(σ) = max(0, c·cosφ − (σₘ + P_f)·sinφ)` and when the deviatoric
//! stress magnitude `τ̄ = √J₂` exceeds `Y`, the deviator is scaled back
//! onto the yield surface: `σᵢⱼ = σₘδᵢⱼ + r·sᵢⱼ` with `r = Y/τ̄`.
//!
//! Sign convention: compression is negative, so the lithostatic prestress
//! `σ₀` (stored in the state) is negative and pore pressure `P_f`
//! positive. The *dynamic* stress carried by the FD arrays rides on top of
//! that prestress; the yield check uses the total mean stress.
//!
//! The paper reports `drprecpc_calc` as "the most time-consuming part of
//! the entire program" — it touches every point, reads the whole stress
//! tensor plus four material arrays, and takes a square root per point.

use crate::state::SolverState;
use std::ops::Range;

/// `drprecpc_calc`: compute the yield factor `r` for every point into
/// `yldfac` (1.0 where elastic). Returns the number of yielding points.
pub fn drprecpc_calc(s: &mut SolverState) -> usize {
    let nx = s.dims.nx;
    drprecpc_calc_region(s, 0..nx)
}

/// Pointwise yield-factor computation restricted to `x_range` columns.
pub fn drprecpc_calc_region(s: &mut SolverState, x_range: Range<usize>) -> usize {
    debug_assert!(s.options.nonlinear);
    let d = s.dims;
    let mut yielding = 0usize;
    for x in x_range {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let (sxx, syy, szz) = (s.xx.get(x, y, z), s.yy.get(x, y, z), s.zz.get(x, y, z));
                let (sxy, sxz, syz) = (s.xy.get(x, y, z), s.xz.get(x, y, z), s.yz.get(x, y, z));
                let mean_dyn = (sxx + syy + szz) / 3.0;
                let mean_total = mean_dyn + s.sigma0.get(x, y, z);
                // deviator of the total stress = deviator of the dynamic
                // part (the prestress is isotropic)
                let (dxx, dyy, dzz) = (sxx - mean_dyn, syy - mean_dyn, szz - mean_dyn);
                let j2 =
                    0.5 * (dxx * dxx + dyy * dyy + dzz * dzz) + sxy * sxy + sxz * sxz + syz * syz;
                let tau_bar = j2.sqrt();
                let c = s.cohes.get(x, y, z);
                let y_stress = (c * s.cosphi.get(x, y, z)
                    - (mean_total + s.pf.get(x, y, z)) * s.sinphi.get(x, y, z))
                .max(0.0);
                let r = if tau_bar > y_stress && tau_bar > 0.0 {
                    yielding += 1;
                    y_stress / tau_bar
                } else {
                    1.0
                };
                s.yldfac.set(x, y, z, r);
            }
        }
    }
    yielding
}

/// `drprecpc_app`: apply the yield factors — scale the stress deviator
/// back onto the yield surface and accumulate plastic strain.
pub fn drprecpc_app(s: &mut SolverState) {
    let nx = s.dims.nx;
    drprecpc_app_region(s, 0..nx);
}

/// Pointwise return mapping restricted to `x_range` columns.
pub fn drprecpc_app_region(s: &mut SolverState, x_range: Range<usize>) {
    debug_assert!(s.options.nonlinear);
    let d = s.dims;
    for x in x_range {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let r = s.yldfac.get(x, y, z);
                if r >= 1.0 {
                    continue;
                }
                let (sxx, syy, szz) = (s.xx.get(x, y, z), s.yy.get(x, y, z), s.zz.get(x, y, z));
                let mean = (sxx + syy + szz) / 3.0;
                s.xx.set(x, y, z, mean + r * (sxx - mean));
                s.yy.set(x, y, z, mean + r * (syy - mean));
                s.zz.set(x, y, z, mean + r * (szz - mean));
                s.xy.set(x, y, z, r * s.xy.get(x, y, z));
                s.xz.set(x, y, z, r * s.xz.get(x, y, z));
                s.yz.set(x, y, z, r * s.yz.get(x, y, z));
                // plastic strain increment ~ the relaxed deviatoric stress
                // over the shear modulus
                let mu = s.mu.get(x, y, z).max(1.0);
                let tau_rel = (1.0 - r)
                    * ((sxx - mean).powi(2) + (syy - mean).powi(2) + (szz - mean).powi(2)).sqrt();
                s.eqp.set(x, y, z, s.eqp.get(x, y, z) + tau_rel / mu);
            }
        }
    }
}

/// J₂ deviatoric magnitude of the dynamic stress at a point (test probe).
pub fn tau_bar_at(s: &SolverState, x: usize, y: usize, z: usize) -> f32 {
    let (sxx, syy, szz) = (s.xx.get(x, y, z), s.yy.get(x, y, z), s.zz.get(x, y, z));
    let mean = (sxx + syy + szz) / 3.0;
    let j2 = 0.5 * ((sxx - mean).powi(2) + (syy - mean).powi(2) + (szz - mean).powi(2))
        + s.xy.get(x, y, z).powi(2)
        + s.xz.get(x, y, z).powi(2)
        + s.yz.get(x, y, z).powi(2);
    j2.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{PlasticityConfig, StateOptions};
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn state() -> SolverState {
        let opts = StateOptions {
            sponge_width: 0,
            nonlinear: true,
            plasticity: PlasticityConfig {
                cohesion_surface: 1.0e6,
                cohesion_gradient: 0.0,
                friction_angle_deg: 30.0,
                fluid_pressure_ratio: 0.0,
            },
            ..Default::default()
        };
        SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(6, 6, 6),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        )
    }

    /// Yield stress formula check at a known point: Y = c·cosφ − (σm+Pf)·sinφ.
    #[test]
    fn yield_stress_matches_eq3() {
        let mut s = state();
        // Set shear well above yield at one point.
        s.xy.set(3, 3, 3, 50.0e6);
        let sigma0 = s.sigma0.get(3, 3, 3);
        let expect_y = 1.0e6 * (30f32.to_radians().cos()) - sigma0 * 30f32.to_radians().sin();
        let n = drprecpc_calc(&mut s);
        assert!(n >= 1);
        let r = s.yldfac.get(3, 3, 3);
        assert!((r - expect_y / 50.0e6).abs() / r < 1e-4, "r {r}");
    }

    /// After apply, the stress sits exactly on the yield surface.
    #[test]
    fn return_mapping_lands_on_the_surface() {
        let mut s = state();
        s.xy.set(3, 3, 3, 50.0e6);
        s.xx.set(3, 3, 3, 5.0e6);
        s.yy.set(3, 3, 3, -2.0e6);
        drprecpc_calc(&mut s);
        drprecpc_app(&mut s);
        // Recompute: τ̄ must equal Y within float tolerance.
        let mean_total = (s.xx.get(3, 3, 3) + s.yy.get(3, 3, 3) + s.zz.get(3, 3, 3)) / 3.0
            + s.sigma0.get(3, 3, 3);
        let y = (s.cohes.get(3, 3, 3) * s.cosphi.get(3, 3, 3)
            - (mean_total + s.pf.get(3, 3, 3)) * s.sinphi.get(3, 3, 3))
        .max(0.0);
        let tb = tau_bar_at(&s, 3, 3, 3);
        assert!((tb - y).abs() / y < 1e-3, "tau {tb} vs Y {y}");
        assert!(s.eqp.get(3, 3, 3) > 0.0, "plastic strain accumulated");
    }

    /// Elastic points are untouched by the apply pass.
    #[test]
    fn elastic_points_unchanged() {
        let mut s = state();
        s.xy.set(2, 2, 2, 1.0e3); // far below yield
        let before = s.xy.get(2, 2, 2);
        let n = drprecpc_calc(&mut s);
        assert_eq!(n, 0, "nothing yields");
        drprecpc_app(&mut s);
        assert_eq!(s.xy.get(2, 2, 2), before);
        assert_eq!(s.yldfac.get(2, 2, 2), 1.0);
    }

    /// Mean stress is preserved by the return mapping (only the deviator
    /// scales).
    #[test]
    fn mean_stress_preserved() {
        let mut s = state();
        s.xx.set(3, 3, 3, 40.0e6);
        s.yy.set(3, 3, 3, -10.0e6);
        s.xy.set(3, 3, 3, 60.0e6);
        let mean_before = (s.xx.get(3, 3, 3) + s.yy.get(3, 3, 3) + s.zz.get(3, 3, 3)) / 3.0;
        drprecpc_calc(&mut s);
        drprecpc_app(&mut s);
        let mean_after = (s.xx.get(3, 3, 3) + s.yy.get(3, 3, 3) + s.zz.get(3, 3, 3)) / 3.0;
        assert!((mean_before - mean_after).abs() <= mean_before.abs() * 1e-5);
    }

    /// Deeper points (more confinement) yield less for the same shear.
    #[test]
    fn confinement_raises_strength() {
        let mut s = state();
        let shear = 30.0e6f32;
        s.xy.set(3, 3, 0, shear);
        s.xy.set(3, 3, 5, shear);
        drprecpc_calc(&mut s);
        let r_shallow = s.yldfac.get(3, 3, 0);
        let r_deep = s.yldfac.get(3, 3, 5);
        assert!(r_deep > r_shallow, "deep {r_deep} vs shallow {r_shallow}");
    }

    /// Tensile mean stress can drive Y to zero: total deviatoric collapse.
    #[test]
    fn tension_cutoff() {
        let mut s = state();
        // Large tension overwhelming cohesion and lithostatic pressure.
        let t = 200.0e6f32;
        s.xx.set(3, 3, 0, t);
        s.yy.set(3, 3, 0, t);
        s.zz.set(3, 3, 0, t);
        s.xy.set(3, 3, 0, 10.0e6);
        drprecpc_calc(&mut s);
        drprecpc_app(&mut s);
        assert!(tau_bar_at(&s, 3, 3, 0) < 1.0, "deviator collapsed under tension");
    }
}
