//! Velocity updates (`dvelcx`, `dvelcy`).
//!
//! Paper eq. (1): `ρ ∂v/∂t = ∇·σ`. On the staggered grid, `u` lives at
//! `(i+1/2, j, k)`, `v` at `(i, j+1/2, k)` and `w` at `(i, j, k+1/2)`, so
//! each component's divergence mixes forward and backward operators.
//!
//! AWP-ODC splits the update into a *central* kernel (`dvelcx`) and the
//! y-boundary strips (`dvelcy`) so the central region can compute while
//! the y halos are in flight; both call into the same region update.

use crate::staggered::{dxm, dxp, dym, dyp, dzm, dzp};
use crate::state::SolverState;
use std::ops::Range;
use sw_grid::HALO_WIDTH;

/// Update velocities in the sub-box `x_range × y_range` (full z).
///
/// The per-cell density divide is hoisted into the precomputed
/// `buoyancy` field (`1/ρ`), so the hottest loop multiplies instead.
/// Bit-compat note: `dt_dx * (1/ρ)` rounds differently from `dt_dx / ρ`
/// in general, so this changed results vs the pre-buoyancy kernels by
/// ≤ 1 ulp per update; every execution path (scalar, parallel, SIMD,
/// fused) shares the same buoyancy formulation and stays bit-identical
/// across modes.
pub fn update_velocity_region(s: &mut SolverState, x_range: Range<usize>, y_range: Range<usize>) {
    let d = s.dims;
    let dt_dx = (s.dt / s.dx) as f32;
    for x in x_range {
        for y in y_range.clone() {
            for z in 0..d.nz {
                let b = dt_dx * s.buoyancy.get(x, y, z);
                let du = dxp(&s.xx, x, y, z) + dym(&s.xy, x, y, z) + dzm(&s.xz, x, y, z);
                let dv = dxm(&s.xy, x, y, z) + dyp(&s.yy, x, y, z) + dzm(&s.yz, x, y, z);
                let dw = dxm(&s.xz, x, y, z) + dym(&s.yz, x, y, z) + dzp(&s.zz, x, y, z);
                s.u.set(x, y, z, s.u.get(x, y, z) + b * du);
                s.v.set(x, y, z, s.v.get(x, y, z) + b * dv);
                s.w.set(x, y, z, s.w.get(x, y, z) + b * dw);
            }
        }
    }
}

/// `dvelcx`: the central region — all x, y away from the halo strips.
pub fn dvelcx(s: &mut SolverState) {
    let d = s.dims;
    let h = HALO_WIDTH.min(d.ny / 2);
    update_velocity_region(s, 0..d.nx, h..d.ny - h);
}

/// `dvelcy`: the two y-boundary strips of width `HALO_WIDTH` (computed
/// after the y halo has arrived).
pub fn dvelcy(s: &mut SolverState) {
    let d = s.dims;
    let h = HALO_WIDTH.min(d.ny / 2);
    update_velocity_region(s, 0..d.nx, 0..h);
    update_velocity_region(s, 0..d.nx, d.ny - h..d.ny);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, ..Default::default() };
        SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(10, 10, 8),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        )
    }

    #[test]
    fn zero_stress_means_zero_acceleration() {
        let mut s = state();
        dvelcx(&mut s);
        dvelcy(&mut s);
        assert_eq!(s.peak_velocity(), 0.0);
    }

    /// A uniform xx gradient accelerates u like a body force ∂xx/∂x / ρ.
    #[test]
    fn uniform_gradient_gives_uniform_acceleration() {
        let mut s = state();
        let g = 1.0e6; // Pa per grid step
        let d = s.dims;
        // fill including halo so every interior stencil sees the ramp
        for x in -2..(d.nx as isize + 2) {
            for y in -2..(d.ny as isize + 2) {
                for z in -2..(d.nz as isize + 2) {
                    s.xx.set_i(x, y, z, g * x as f32);
                }
            }
        }
        dvelcx(&mut s);
        dvelcy(&mut s);
        let expect = (s.dt / s.dx) as f32 * g / 2700.0;
        for x in 0..d.nx {
            let got = s.u.get(x, 5, 3);
            assert!((got - expect).abs() / expect < 1e-4, "u({x}) = {got} vs {expect}");
        }
        // v and w stay zero: no shear, no zz/yy
        assert_eq!(s.v.max_abs(), 0.0);
        assert_eq!(s.w.max_abs(), 0.0);
    }

    /// dvelcx + dvelcy together must equal one full-region update.
    #[test]
    fn split_kernels_cover_the_domain_once() {
        let mut a = state();
        let mut b = state();
        // random-ish stress state
        let d = a.dims;
        for (x, y, z) in d.iter() {
            let v = ((x * 7 + y * 13 + z * 29) % 17) as f32 - 8.0;
            a.xx.set(x, y, z, v);
            b.xx.set(x, y, z, v);
            a.xy.set(x, y, z, 0.5 * v);
            b.xy.set(x, y, z, 0.5 * v);
            a.yz.set(x, y, z, -0.25 * v);
            b.yz.set(x, y, z, -0.25 * v);
        }
        dvelcx(&mut a);
        dvelcy(&mut a);
        update_velocity_region(&mut b, 0..d.nx, 0..d.ny);
        assert_eq!(a.u.max_abs_diff(&b.u), 0.0);
        assert_eq!(a.v.max_abs_diff(&b.v), 0.0);
        assert_eq!(a.w.max_abs_diff(&b.w), 0.0);
    }

    /// Momentum change scales inversely with density.
    #[test]
    fn buoyancy_scaling() {
        let mut s = state();
        s.xx.set(5, 5, 3, 1.0e6);
        let mut heavy = s.clone();
        for v in heavy.rho.raw_mut() {
            *v *= 2.0;
        }
        heavy.rebuild_buoyancy();
        dvelcx(&mut s);
        dvelcx(&mut heavy);
        let a = s.u.get(5, 5, 3);
        let b = heavy.u.get(5, 5, 3);
        assert!((a - 2.0 * b).abs() <= a.abs() * 1e-5, "a={a} b={b}");
    }
}
