//! The free-surface kernel (`fstr`).
//!
//! Stress imaging at the z = 0 plane (the surface; depth grows with z):
//! the traction components vanish on the surface and are mirrored
//! antisymmetrically into the halo above it, so the velocity stencils
//! near the surface see a traction-free boundary:
//!
//! * `σzz(0) = 0`, `σzz(−k) = −σzz(k)`;
//! * `σxz`, `σyz` (stored at `k + 1/2`): `σ(−1) = −σ(0)`, `σ(−2) = −σ(1)`;
//! * `w` (stored at `k + 1/2`) mirrors symmetrically for the `D⁺z`
//!   stencil of `σzz`.
//!
//! Fig. 7 singles this kernel out: it touches only two z-planes per
//! column, so its arithmetic density is too low to profit from the CPEs
//! (4–5× speedup instead of ~30×).

use crate::state::SolverState;
use std::ops::Range;

/// Apply the free-surface condition to the stress (and `w`) halos.
pub fn fstr(s: &mut SolverState) {
    let nx = s.dims.nx;
    fstr_region(s, 0..nx);
}

/// Apply the free-surface condition to the columns in `x_range` only.
///
/// Every halo value `fstr` writes is read back only at the same `(x, y)`
/// column (the velocity/stress stencils are purely vertical through these
/// planes), so imaging a sub-range of columns is exactly the restriction
/// of the full kernel — the resident slab sweeps rely on this.
pub fn fstr_region(s: &mut SolverState, x_range: Range<usize>) {
    let d = s.dims;
    for x in x_range {
        for y in 0..d.ny {
            let (xi, yi) = (x as isize, y as isize);
            // zz: zero on the surface plane, antisymmetric above.
            s.zz.set(x, y, 0, 0.0);
            s.zz.set_i(xi, yi, -1, -s.zz.get(x, y, 1));
            s.zz.set_i(xi, yi, -2, -s.zz.get(x, y, 2));
            // xz, yz: antisymmetric about the surface (half-staggered).
            s.xz.set_i(xi, yi, -1, -s.xz.get(x, y, 0));
            s.xz.set_i(xi, yi, -2, -s.xz.get(x, y, 1));
            s.yz.set_i(xi, yi, -1, -s.yz.get(x, y, 0));
            s.yz.set_i(xi, yi, -2, -s.yz.get(x, y, 1));
            // w: symmetric continuation.
            s.w.set_i(xi, yi, -1, s.w.get(x, y, 0));
            s.w.set_i(xi, yi, -2, s.w.get(x, y, 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::velocity::dvelcx;
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, attenuation: false, ..Default::default() };
        SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(8, 8, 10),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        )
    }

    #[test]
    fn traction_components_vanish_and_mirror() {
        let mut s = state();
        for z in 0..10 {
            s.zz.set(4, 4, z, (z + 1) as f32);
            s.xz.set(4, 4, z, 10.0 * (z + 1) as f32);
        }
        fstr(&mut s);
        assert_eq!(s.zz.get(4, 4, 0), 0.0);
        assert_eq!(s.zz.at_i(4, 4, -1), -s.zz.get(4, 4, 1));
        assert_eq!(s.zz.at_i(4, 4, -2), -s.zz.get(4, 4, 2));
        assert_eq!(s.xz.at_i(4, 4, -1), -s.xz.get(4, 4, 0));
        assert_eq!(s.xz.at_i(4, 4, -2), -s.xz.get(4, 4, 1));
    }

    /// With imaging applied, a stress state that is pure σzz below the
    /// surface accelerates the surface upward (free surface rebounds)
    /// instead of being clamped.
    #[test]
    fn surface_rebounds() {
        let mut s = state();
        // compressive zz everywhere below the first plane
        for (x, y, z) in s.dims.iter() {
            if z >= 1 {
                s.zz.set(x, y, z, -1.0e6);
            }
        }
        fstr(&mut s);
        dvelcx(&mut s);
        // w at the surface staggered point (k = 0 is z = +1/2) feels
        // D+z(zz) = zz(1) − zz(0) < 0 → downward-negative... the sign
        // depends on the convention; the essential check is that the
        // surface moves while the deep interior (uniform zz) does not.
        let surf = s.w.get(4, 4, 0).abs();
        let deep = s.w.get(4, 4, 6).abs();
        assert!(surf > 0.0, "surface must accelerate");
        assert!(deep < surf * 1e-3, "uniform interior feels no net force");
    }

    /// Without fstr the same state leaves the surface inert — the kernel
    /// is what creates the boundary behaviour.
    #[test]
    fn without_fstr_no_rebound() {
        let mut s = state();
        for (x, y, z) in s.dims.iter() {
            if z >= 1 {
                s.zz.set(x, y, z, -1.0e6);
            }
        }
        dvelcx(&mut s);
        let with_halo_zero = s.w.get(4, 4, 0).abs();
        let mut s2 = state();
        for (x, y, z) in s2.dims.iter() {
            if z >= 1 {
                s2.zz.set(x, y, z, -1.0e6);
            }
        }
        fstr(&mut s2);
        dvelcx(&mut s2);
        assert!(
            (s2.w.get(4, 4, 0) - s.w.get(4, 4, 0)).abs() > 0.0
                || with_halo_zero != s2.w.get(4, 4, 0).abs(),
            "imaging changes the surface update"
        );
    }

    /// fstr touches only the surface region: deep stresses are untouched.
    #[test]
    fn interior_untouched() {
        let mut s = state();
        for (x, y, z) in s.dims.iter() {
            s.zz.set(x, y, z, (x + y + z) as f32);
        }
        let before = s.zz.get(4, 4, 7);
        fstr(&mut s);
        assert_eq!(s.zz.get(4, 4, 7), before);
    }
}
