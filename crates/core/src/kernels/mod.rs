//! The paper's kernel set (§7.2).
//!
//! * [`velocity`] — `dvelcx` / `dvelcy`: the velocity updates (central
//!   region and y-halo strips, split so halo communication overlaps the
//!   central computation);
//! * [`stress`] — `dstrqc`: the stress update with attenuation memory
//!   variables;
//! * [`freesurf`] — `fstr`: the stress-imaging free surface;
//! * [`fused`] — velocity/stress updates on the §6.4 fused array layout
//!   (the array-fusion ablation, bit-identical to the scalar kernels);
//! * [`plastic`] — `drprecpc_calc` / `drprecpc_app`: Drucker–Prager
//!   plasticity (paper eqs. 3–4);
//! * [`parallel`] — Rayon-parallel variants of every step kernel (the
//!   host analogue of the Athread CPE pool), bit-identical to the serial
//!   versions — `ExecMode::Parallel` routes the whole step through them;
//! * [`source`] — `addsrc`: moment-rate injection;
//! * [`sponge`] — the Cerjan absorbing boundary.

pub mod freesurf;
pub mod fused;
pub mod parallel;
pub mod plastic;
#[cfg(feature = "simd")]
pub mod simd;
pub mod source;
pub mod sponge;
pub mod stress;
pub mod velocity;

pub use freesurf::{fstr, fstr_region};
pub use fused::{
    addsrc_fused, apply_sponge_fused, dstrqc_fused, dvelc_fused, fstr_fused, FusedWavefield,
};
pub use parallel::{
    apply_sponge_par, drprecpc_app_par, drprecpc_calc_par, dstrqc_par, dvelc_par, fstr_par,
};
pub use plastic::{drprecpc_app, drprecpc_app_region, drprecpc_calc, drprecpc_calc_region};
pub use source::addsrc;
pub use sponge::{apply_sponge, apply_sponge_region};
pub use stress::dstrqc;
pub use velocity::{dvelcx, dvelcy};
