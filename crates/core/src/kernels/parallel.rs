//! Rayon-parallel kernel variants (the host-side analogue of the Athread
//! CPE pool).
//!
//! The paper's level-3 decomposition hands disjoint regions of a CG block
//! to 64 CPE threads. On the host we hand disjoint **x planes** to the
//! Rayon pool: the velocity update writes only `(u, v, w)` and reads only
//! stress/density, and every plane's writes stay inside that plane, so
//! the split is race-free by construction and the result is bit-identical
//! to the serial kernels (pinned by tests — within one plane the
//! floating-point evaluation order is unchanged).

use crate::staggered::{dxm, dxp, dym, dyp, dzm, dzp};
use crate::state::SolverState;
use rayon::prelude::*;
use sw_grid::HALO_WIDTH;

/// Rayon-parallel velocity update (`dvelcx` + `dvelcy` in one pass).
pub fn dvelc_par(s: &mut SolverState) {
    let d = s.dims;
    let p = s.u.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let dt_dx = (s.dt / s.dx) as f32;
    let (xx, yy, zz) = (&s.xx, &s.yy, &s.zz);
    let (xy, xz, yz) = (&s.xy, &s.xz, &s.yz);
    let rho = &s.rho;
    let u_planes = s.u.raw_mut().par_chunks_mut(stride);
    let v_planes = s.v.raw_mut().par_chunks_mut(stride);
    let w_planes = s.w.raw_mut().par_chunks_mut(stride);
    u_planes.zip(v_planes).zip(w_planes).enumerate().skip(h).take(d.nx).for_each(
        |(px, ((up, vp), wp))| {
            let x = px - h;
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let o = (y + h) * p.nz + (z + h);
                    let b = dt_dx / rho.get(x, y, z);
                    let du = dxp(xx, x, y, z) + dym(xy, x, y, z) + dzm(xz, x, y, z);
                    let dv = dxm(xy, x, y, z) + dyp(yy, x, y, z) + dzm(yz, x, y, z);
                    let dw = dxm(xz, x, y, z) + dym(yz, x, y, z) + dzp(zz, x, y, z);
                    up[o] += b * du;
                    vp[o] += b * dv;
                    wp[o] += b * dw;
                }
            }
        },
    );
}

/// Rayon-parallel stress update (`dstrqc`): writes the six stresses and
/// six memory variables, reads the velocities.
pub fn dstrqc_par(s: &mut SolverState) {
    let d = s.dims;
    let p = s.xx.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let inv_dx = (1.0 / s.dx) as f32;
    let dt = s.dt as f32;
    let atten = s.options.attenuation;
    let tau = s.tau as f32;
    let (a_coef, b_coef) = if atten {
        ((2.0 * tau - dt) / (2.0 * tau + dt), 2.0 * dt / (2.0 * tau + dt))
    } else {
        (1.0, 0.0)
    };
    let (u, v, w) = (&s.u, &s.v, &s.w);
    let (lam, mu, wp_f, ws_f) = (&s.lam, &s.mu, &s.wp, &s.ws);
    let [r0, r1, r2, r3, r4, r5] = &mut s.r;
    let planes =
        s.xx.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride))
            .zip(r0.raw_mut().par_chunks_mut(stride))
            .zip(r1.raw_mut().par_chunks_mut(stride))
            .zip(r2.raw_mut().par_chunks_mut(stride))
            .zip(r3.raw_mut().par_chunks_mut(stride))
            .zip(r4.raw_mut().par_chunks_mut(stride))
            .zip(r5.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, (((((((((((pxx, pyy), pzz), pxy), pxz), pyz), pr0), pr1), pr2), pr3), pr4), pr5))| {
            let x = px - h;
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let o = (y + h) * p.nz + (z + h);
                    let l = lam.get(x, y, z);
                    let m = mu.get(x, y, z);
                    let exx = dxm(u, x, y, z) * inv_dx;
                    let eyy = dym(v, x, y, z) * inv_dx;
                    let ezz = dzm(w, x, y, z) * inv_dx;
                    let div = exx + eyy + ezz;
                    let exy = (dyp(u, x, y, z) + dxp(v, x, y, z)) * inv_dx;
                    let exz = (dzp(u, x, y, z) + dxp(w, x, y, z)) * inv_dx;
                    let eyz = (dzp(v, x, y, z) + dyp(w, x, y, z)) * inv_dx;
                    let rates = [
                        l * div + 2.0 * m * exx,
                        l * div + 2.0 * m * eyy,
                        l * div + 2.0 * m * ezz,
                        m * exy,
                        m * exz,
                        m * eyz,
                    ];
                    let wpv = wp_f.get(x, y, z);
                    let wsv = ws_f.get(x, y, z);
                    let weights = [wpv, wpv, wpv, wsv, wsv, wsv];
                    let stress: [&mut f32; 6] = [
                        &mut pxx[o],
                        &mut pyy[o],
                        &mut pzz[o],
                        &mut pxy[o],
                        &mut pxz[o],
                        &mut pyz[o],
                    ];
                    let mem: [&mut f32; 6] = [
                        &mut pr0[o],
                        &mut pr1[o],
                        &mut pr2[o],
                        &mut pr3[o],
                        &mut pr4[o],
                        &mut pr5[o],
                    ];
                    for c in 0..6 {
                        let e = rates[c];
                        let (r_new, r_bar) = if atten {
                            let rn = a_coef * *mem[c] + b_coef * weights[c] * e;
                            (rn, 0.5 * (rn + *mem[c]))
                        } else {
                            (0.0, 0.0)
                        };
                        *stress[c] += dt * (e - r_bar);
                        if atten {
                            *mem[c] = r_new;
                        }
                    }
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{dstrqc, dvelcx, dvelcy};
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn noisy_state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, ..Default::default() };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(12, 14, 10),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e4);
            s.xy.set(x, y, z, -v * 5e3);
            s.yz.set(x, y, z, v * 3e3);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
        }
        s
    }

    #[test]
    fn parallel_velocity_matches_serial_bitwise() {
        let mut serial = noisy_state();
        dvelcx(&mut serial);
        dvelcy(&mut serial);
        let mut par = noisy_state();
        dvelc_par(&mut par);
        assert_eq!(serial.u.max_abs_diff(&par.u), 0.0);
        assert_eq!(serial.v.max_abs_diff(&par.v), 0.0);
        assert_eq!(serial.w.max_abs_diff(&par.w), 0.0);
    }

    #[test]
    fn parallel_stress_matches_serial_bitwise() {
        let mut serial = noisy_state();
        dstrqc(&mut serial);
        let mut par = noisy_state();
        dstrqc_par(&mut par);
        for (a, b) in serial.stress().iter().zip(par.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        for (a, b) in serial.r.iter().zip(par.r.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn repeated_steps_stay_identical() {
        let mut serial = noisy_state();
        let mut par = noisy_state();
        for _ in 0..5 {
            dvelcx(&mut serial);
            dvelcy(&mut serial);
            dstrqc(&mut serial);
            dvelc_par(&mut par);
            dstrqc_par(&mut par);
        }
        assert_eq!(serial.u.max_abs_diff(&par.u), 0.0);
        assert_eq!(serial.xx.max_abs_diff(&par.xx), 0.0);
    }
}
