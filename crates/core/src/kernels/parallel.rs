//! Rayon-parallel kernel variants (the host-side analogue of the Athread
//! CPE pool).
//!
//! The paper's level-3 decomposition hands disjoint regions of a CG block
//! to 64 CPE threads. On the host we hand disjoint **x planes** to the
//! Rayon pool: the velocity update writes only `(u, v, w)` and reads only
//! stress/density, and every plane's writes stay inside that plane, so
//! the split is race-free by construction and the result is bit-identical
//! to the serial kernels (pinned by tests — within one plane the
//! floating-point evaluation order is unchanged).
//!
//! The same decomposition covers the whole production step: free surface
//! ([`fstr_par`]), plasticity ([`drprecpc_calc_par`] /
//! [`drprecpc_app_par`]), and the Cerjan sponge ([`apply_sponge_par`])
//! are all column-local, so planes never interfere. That matches the
//! paper's §6.2 point that *every* kernel must leave the management core:
//! any phase left serial re-serializes the iteration.

use crate::staggered::{dxm, dxp, dym, dyp, dzm, dzp};
use crate::state::SolverState;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use sw_grid::HALO_WIDTH;

/// Rayon-parallel velocity update (`dvelcx` + `dvelcy` in one pass).
pub fn dvelc_par(s: &mut SolverState) {
    let d = s.dims;
    let p = s.u.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let dt_dx = (s.dt / s.dx) as f32;
    let (xx, yy, zz) = (&s.xx, &s.yy, &s.zz);
    let (xy, xz, yz) = (&s.xy, &s.xz, &s.yz);
    let buoyancy = &s.buoyancy;
    let u_planes = s.u.raw_mut().par_chunks_mut(stride);
    let v_planes = s.v.raw_mut().par_chunks_mut(stride);
    let w_planes = s.w.raw_mut().par_chunks_mut(stride);
    u_planes.zip(v_planes).zip(w_planes).enumerate().skip(h).take(d.nx).for_each(
        |(px, ((up, vp), wp))| {
            let x = px - h;
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let o = (y + h) * p.nz + (z + h);
                    let b = dt_dx * buoyancy.get(x, y, z);
                    let du = dxp(xx, x, y, z) + dym(xy, x, y, z) + dzm(xz, x, y, z);
                    let dv = dxm(xy, x, y, z) + dyp(yy, x, y, z) + dzm(yz, x, y, z);
                    let dw = dxm(xz, x, y, z) + dym(yz, x, y, z) + dzp(zz, x, y, z);
                    up[o] += b * du;
                    vp[o] += b * dv;
                    wp[o] += b * dw;
                }
            }
        },
    );
}

/// Rayon-parallel stress update (`dstrqc`): writes the six stresses and
/// six memory variables, reads the velocities.
pub fn dstrqc_par(s: &mut SolverState) {
    let d = s.dims;
    let p = s.xx.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let inv_dx = (1.0 / s.dx) as f32;
    let dt = s.dt as f32;
    let atten = s.options.attenuation;
    let tau = s.tau as f32;
    let (a_coef, b_coef) = if atten {
        ((2.0 * tau - dt) / (2.0 * tau + dt), 2.0 * dt / (2.0 * tau + dt))
    } else {
        (1.0, 0.0)
    };
    let (u, v, w) = (&s.u, &s.v, &s.w);
    let (lam, mu, wp_f, ws_f) = (&s.lam, &s.mu, &s.wp, &s.ws);
    let [r0, r1, r2, r3, r4, r5] = &mut s.r;
    let planes =
        s.xx.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride))
            .zip(r0.raw_mut().par_chunks_mut(stride))
            .zip(r1.raw_mut().par_chunks_mut(stride))
            .zip(r2.raw_mut().par_chunks_mut(stride))
            .zip(r3.raw_mut().par_chunks_mut(stride))
            .zip(r4.raw_mut().par_chunks_mut(stride))
            .zip(r5.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, (((((((((((pxx, pyy), pzz), pxy), pxz), pyz), pr0), pr1), pr2), pr3), pr4), pr5))| {
            let x = px - h;
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let o = (y + h) * p.nz + (z + h);
                    let l = lam.get(x, y, z);
                    let m = mu.get(x, y, z);
                    let exx = dxm(u, x, y, z) * inv_dx;
                    let eyy = dym(v, x, y, z) * inv_dx;
                    let ezz = dzm(w, x, y, z) * inv_dx;
                    let div = exx + eyy + ezz;
                    let exy = (dyp(u, x, y, z) + dxp(v, x, y, z)) * inv_dx;
                    let exz = (dzp(u, x, y, z) + dxp(w, x, y, z)) * inv_dx;
                    let eyz = (dzp(v, x, y, z) + dyp(w, x, y, z)) * inv_dx;
                    let rates = [
                        l * div + 2.0 * m * exx,
                        l * div + 2.0 * m * eyy,
                        l * div + 2.0 * m * ezz,
                        m * exy,
                        m * exz,
                        m * eyz,
                    ];
                    let wpv = wp_f.get(x, y, z);
                    let wsv = ws_f.get(x, y, z);
                    let weights = [wpv, wpv, wpv, wsv, wsv, wsv];
                    let stress: [&mut f32; 6] = [
                        &mut pxx[o],
                        &mut pyy[o],
                        &mut pzz[o],
                        &mut pxy[o],
                        &mut pxz[o],
                        &mut pyz[o],
                    ];
                    let mem: [&mut f32; 6] = [
                        &mut pr0[o],
                        &mut pr1[o],
                        &mut pr2[o],
                        &mut pr3[o],
                        &mut pr4[o],
                        &mut pr5[o],
                    ];
                    for c in 0..6 {
                        let e = rates[c];
                        let (r_new, r_bar) = if atten {
                            let rn = a_coef * *mem[c] + b_coef * weights[c] * e;
                            (rn, 0.5 * (rn + *mem[c]))
                        } else {
                            (0.0, 0.0)
                        };
                        *stress[c] += dt * (e - r_bar);
                        if atten {
                            *mem[c] = r_new;
                        }
                    }
                }
            }
        },
    );
}

/// Rayon-parallel free surface (`fstr`): stress imaging per (x, y)
/// column. Every column's reads and writes stay inside its own x plane
/// (surface planes z ∈ {0, 1, 2} and the halo planes z ∈ {−1, −2}), so
/// handing whole planes to the pool is race-free and bit-identical.
pub fn fstr_par(s: &mut SolverState) {
    let d = s.dims;
    let p = s.zz.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let zz_planes = s.zz.raw_mut().par_chunks_mut(stride);
    let xz_planes = s.xz.raw_mut().par_chunks_mut(stride);
    let yz_planes = s.yz.raw_mut().par_chunks_mut(stride);
    let w_planes = s.w.raw_mut().par_chunks_mut(stride);
    zz_planes.zip(xz_planes).zip(yz_planes).zip(w_planes).enumerate().skip(h).take(d.nx).for_each(
        |(_px, (((pzz, pxz), pyz), pw))| {
            for y in 0..d.ny {
                let at = |z_pad: usize| (y + h) * p.nz + z_pad;
                // zz: zero on the surface plane, antisymmetric above.
                pzz[at(h)] = 0.0;
                pzz[at(h - 1)] = -pzz[at(h + 1)];
                pzz[at(h - 2)] = -pzz[at(h + 2)];
                // xz, yz: antisymmetric about the surface (half-staggered).
                pxz[at(h - 1)] = -pxz[at(h)];
                pxz[at(h - 2)] = -pxz[at(h + 1)];
                pyz[at(h - 1)] = -pyz[at(h)];
                pyz[at(h - 2)] = -pyz[at(h + 1)];
                // w: symmetric continuation.
                pw[at(h - 1)] = pw[at(h)];
                pw[at(h - 2)] = pw[at(h + 1)];
            }
        },
    );
}

/// Rayon-parallel `drprecpc_calc`: writes only `yldfac`, reads the six
/// stresses and the static material arrays. Returns the number of
/// yielding points; per-plane counts are accumulated atomically, which is
/// exact (integer addition is associative).
pub fn drprecpc_calc_par(s: &mut SolverState) -> usize {
    debug_assert!(s.options.nonlinear);
    let d = s.dims;
    let p = s.yldfac.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let (xx, yy, zz) = (&s.xx, &s.yy, &s.zz);
    let (xy, xz, yz) = (&s.xy, &s.xz, &s.yz);
    let (sigma0, cohes, cosphi, sinphi, pf) = (&s.sigma0, &s.cohes, &s.cosphi, &s.sinphi, &s.pf);
    let yielding = AtomicUsize::new(0);
    s.yldfac.raw_mut().par_chunks_mut(stride).enumerate().skip(h).take(d.nx).for_each(
        |(px, pyld)| {
            let x = px - h;
            let mut local = 0usize;
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let o = (y + h) * p.nz + (z + h);
                    let (sxx, syy, szz) = (xx.get(x, y, z), yy.get(x, y, z), zz.get(x, y, z));
                    let (sxy, sxz, syz) = (xy.get(x, y, z), xz.get(x, y, z), yz.get(x, y, z));
                    let mean_dyn = (sxx + syy + szz) / 3.0;
                    let mean_total = mean_dyn + sigma0.get(x, y, z);
                    let (dxx, dyy, dzz) = (sxx - mean_dyn, syy - mean_dyn, szz - mean_dyn);
                    let j2 = 0.5 * (dxx * dxx + dyy * dyy + dzz * dzz)
                        + sxy * sxy
                        + sxz * sxz
                        + syz * syz;
                    let tau_bar = j2.sqrt();
                    let c = cohes.get(x, y, z);
                    let y_stress = (c * cosphi.get(x, y, z)
                        - (mean_total + pf.get(x, y, z)) * sinphi.get(x, y, z))
                    .max(0.0);
                    let r = if tau_bar > y_stress && tau_bar > 0.0 {
                        local += 1;
                        y_stress / tau_bar
                    } else {
                        1.0
                    };
                    pyld[o] = r;
                }
            }
            yielding.fetch_add(local, Ordering::Relaxed);
        },
    );
    yielding.into_inner()
}

/// Rayon-parallel `drprecpc_app`: scales each point's stress deviator
/// back onto the yield surface and accumulates plastic strain. Point-
/// local (reads/writes only its own cell), so planes split race-free.
pub fn drprecpc_app_par(s: &mut SolverState) {
    debug_assert!(s.options.nonlinear);
    let d = s.dims;
    let p = s.xx.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let (yldfac, mu) = (&s.yldfac, &s.mu);
    let planes =
        s.xx.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride))
            .zip(s.eqp.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, ((((((pxx, pyy), pzz), pxy), pxz), pyz), peqp))| {
            let x = px - h;
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let r = yldfac.get(x, y, z);
                    if r >= 1.0 {
                        continue;
                    }
                    let o = (y + h) * p.nz + (z + h);
                    let (sxx, syy, szz) = (pxx[o], pyy[o], pzz[o]);
                    let mean = (sxx + syy + szz) / 3.0;
                    pxx[o] = mean + r * (sxx - mean);
                    pyy[o] = mean + r * (syy - mean);
                    pzz[o] = mean + r * (szz - mean);
                    pxy[o] *= r;
                    pxz[o] *= r;
                    pyz[o] *= r;
                    let m = mu.get(x, y, z).max(1.0);
                    let tau_rel = (1.0 - r)
                        * ((sxx - mean).powi(2) + (syy - mean).powi(2) + (szz - mean).powi(2))
                            .sqrt();
                    peqp[o] += tau_rel / m;
                }
            }
        },
    );
}

/// Rayon-parallel Cerjan sponge: multiplies the nine wavefields (and the
/// six memory variables under attenuation) by the damping profile. Each
/// field value is scaled independently, so splitting the fields into two
/// zipped passes changes nothing bitwise.
pub fn apply_sponge_par(s: &mut SolverState) {
    let d = s.dims;
    if s.options.sponge_width == 0 {
        return;
    }
    let p = s.u.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let dcrj = &s.dcrj;
    let planes =
        s.u.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.v.raw_mut().par_chunks_mut(stride))
            .zip(s.w.raw_mut().par_chunks_mut(stride))
            .zip(s.xx.raw_mut().par_chunks_mut(stride))
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, ((((((((pu, pv), pw), pxx), pyy), pzz), pxy), pxz), pyz))| {
            let x = px - h;
            for y in 0..d.ny {
                let damp = dcrj.row(x, y);
                let base = (y + h) * p.nz + h;
                for plane in [&mut *pu, pv, pw, pxx, pyy, pzz, pxy, pxz, pyz] {
                    for (v, &g) in plane[base..base + d.nz].iter_mut().zip(damp) {
                        *v *= g;
                    }
                }
            }
        },
    );
    if s.options.attenuation {
        let [r0, r1, r2, r3, r4, r5] = &mut s.r;
        let planes = r0
            .raw_mut()
            .par_chunks_mut(stride)
            .zip(r1.raw_mut().par_chunks_mut(stride))
            .zip(r2.raw_mut().par_chunks_mut(stride))
            .zip(r3.raw_mut().par_chunks_mut(stride))
            .zip(r4.raw_mut().par_chunks_mut(stride))
            .zip(r5.raw_mut().par_chunks_mut(stride));
        planes.enumerate().skip(h).take(d.nx).for_each(|(px, (((((p0, p1), p2), p3), p4), p5))| {
            let x = px - h;
            for y in 0..d.ny {
                let damp = dcrj.row(x, y);
                let base = (y + h) * p.nz + h;
                for plane in [&mut *p0, p1, p2, p3, p4, p5] {
                    for (v, &g) in plane[base..base + d.nz].iter_mut().zip(damp) {
                        *v *= g;
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{apply_sponge, drprecpc_app, drprecpc_calc, dstrqc, dvelcx, dvelcy, fstr};
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn noisy_state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, ..Default::default() };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(12, 14, 10),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e4);
            s.xy.set(x, y, z, -v * 5e3);
            s.yz.set(x, y, z, v * 3e3);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
        }
        s
    }

    #[test]
    fn parallel_velocity_matches_serial_bitwise() {
        let mut serial = noisy_state();
        dvelcx(&mut serial);
        dvelcy(&mut serial);
        let mut par = noisy_state();
        dvelc_par(&mut par);
        assert_eq!(serial.u.max_abs_diff(&par.u), 0.0);
        assert_eq!(serial.v.max_abs_diff(&par.v), 0.0);
        assert_eq!(serial.w.max_abs_diff(&par.w), 0.0);
    }

    #[test]
    fn parallel_stress_matches_serial_bitwise() {
        let mut serial = noisy_state();
        dstrqc(&mut serial);
        let mut par = noisy_state();
        dstrqc_par(&mut par);
        for (a, b) in serial.stress().iter().zip(par.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        for (a, b) in serial.r.iter().zip(par.r.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn repeated_steps_stay_identical() {
        let mut serial = noisy_state();
        let mut par = noisy_state();
        for _ in 0..5 {
            dvelcx(&mut serial);
            dvelcy(&mut serial);
            dstrqc(&mut serial);
            dvelc_par(&mut par);
            dstrqc_par(&mut par);
        }
        assert_eq!(serial.u.max_abs_diff(&par.u), 0.0);
        assert_eq!(serial.xx.max_abs_diff(&par.xx), 0.0);
    }

    /// Noisy state with every physics option the new kernels touch:
    /// nonlinearity (for plasticity), attenuation (for the sponge's
    /// memory-variable pass), and a sponge band.
    fn noisy_full_state() -> SolverState {
        let opts = StateOptions {
            sponge_width: 3,
            nonlinear: true,
            attenuation: true,
            plasticity: crate::state::PlasticityConfig {
                cohesion_surface: 1.0e5,
                cohesion_gradient: 0.0,
                friction_angle_deg: 30.0,
                fluid_pressure_ratio: 0.0,
            },
            ..Default::default()
        };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(12, 14, 10),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e6);
            s.yy.set(x, y, z, -v * 4e5);
            s.zz.set(x, y, z, v * 7e5);
            s.xy.set(x, y, z, -v * 5e5);
            s.xz.set(x, y, z, v * 2e5);
            s.yz.set(x, y, z, v * 3e5);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
            for r in s.r.iter_mut() {
                r.set(x, y, z, v * 1e3);
            }
        }
        s
    }

    #[test]
    fn parallel_free_surface_matches_serial_bitwise() {
        let mut serial = noisy_full_state();
        fstr(&mut serial);
        let mut par = noisy_full_state();
        fstr_par(&mut par);
        for (a, b) in [
            (&serial.zz, &par.zz),
            (&serial.xz, &par.xz),
            (&serial.yz, &par.yz),
            (&serial.w, &par.w),
        ] {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        // Halo planes too (max_abs_diff only covers the interior).
        for x in 0..12isize {
            for y in 0..14isize {
                for z in [-1isize, -2] {
                    assert_eq!(serial.zz.at_i(x, y, z), par.zz.at_i(x, y, z));
                    assert_eq!(serial.xz.at_i(x, y, z), par.xz.at_i(x, y, z));
                    assert_eq!(serial.yz.at_i(x, y, z), par.yz.at_i(x, y, z));
                    assert_eq!(serial.w.at_i(x, y, z), par.w.at_i(x, y, z));
                }
            }
        }
    }

    #[test]
    fn parallel_plasticity_matches_serial_bitwise() {
        let mut serial = noisy_full_state();
        let n_serial = drprecpc_calc(&mut serial);
        drprecpc_app(&mut serial);
        let mut par = noisy_full_state();
        let n_par = drprecpc_calc_par(&mut par);
        drprecpc_app_par(&mut par);
        assert!(n_serial > 0, "the noisy state must actually yield somewhere");
        assert_eq!(n_serial, n_par);
        assert_eq!(serial.yldfac.max_abs_diff(&par.yldfac), 0.0);
        assert_eq!(serial.eqp.max_abs_diff(&par.eqp), 0.0);
        for (a, b) in serial.stress().iter().zip(par.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn parallel_sponge_matches_serial_bitwise() {
        let mut serial = noisy_full_state();
        apply_sponge(&mut serial);
        let mut par = noisy_full_state();
        apply_sponge_par(&mut par);
        for (a, b) in [
            (&serial.u, &par.u),
            (&serial.v, &par.v),
            (&serial.w, &par.w),
            (&serial.xx, &par.xx),
            (&serial.yy, &par.yy),
            (&serial.zz, &par.zz),
            (&serial.xy, &par.xy),
            (&serial.xz, &par.xz),
            (&serial.yz, &par.yz),
        ] {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        for (a, b) in serial.r.iter().zip(par.r.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn parallel_full_phase_sequence_stays_identical() {
        let mut serial = noisy_full_state();
        let mut par = noisy_full_state();
        for _ in 0..3 {
            fstr(&mut serial);
            dvelcx(&mut serial);
            dvelcy(&mut serial);
            fstr(&mut serial);
            dstrqc(&mut serial);
            drprecpc_calc(&mut serial);
            drprecpc_app(&mut serial);
            apply_sponge(&mut serial);

            fstr_par(&mut par);
            dvelc_par(&mut par);
            fstr_par(&mut par);
            dstrqc_par(&mut par);
            drprecpc_calc_par(&mut par);
            drprecpc_app_par(&mut par);
            apply_sponge_par(&mut par);
        }
        assert_eq!(serial.u.max_abs_diff(&par.u), 0.0);
        assert_eq!(serial.xx.max_abs_diff(&par.xx), 0.0);
        assert_eq!(serial.eqp.max_abs_diff(&par.eqp), 0.0);
        for (a, b) in serial.r.iter().zip(par.r.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }
}
