//! SIMD-vectorized, cache-tiled kernel variants (`--features simd`).
//!
//! The third rung of the execution ladder: the same x-plane Rayon
//! decomposition as [`crate::kernels::parallel`] (the CPE-pool
//! analogue), but with the innermost contiguous z axis processed in
//! [`F32x8`] lanes and the z–y loop nest cache-blocked. This is the
//! host-side version of the paper's register-level vectorization inside
//! each CPE's LDM window (§6.3): z is the fastest memory axis, so a z
//! row is the unit-stride run every stencil streams over, and a z–y
//! tile is the working set that stays cache-resident while its x-plane
//! taps are reused.
//!
//! ## Bit-compat contract
//!
//! Every kernel here is **bit-identical** to its serial counterpart
//! (pinned by the tests below and by `tests/exec_equivalence.rs`): the
//! lane structs evaluate the same expression tree per element, in the
//! same order, and never contract into fused multiply-adds. Tiling and
//! lane width change only *which order cells are visited*, never the
//! arithmetic within a cell — and every cell's update is independent
//! within a kernel pass. Reductions that cross cells (the plasticity
//! yield count) are integer-only and therefore order-free.
//!
//! ## Kernel coverage
//!
//! * [`dvelc_simd`] — velocity update, vector lanes + z–y tiles;
//! * [`dstrqc_simd`] — stress + attenuation memory update, vector
//!   lanes + z–y tiles;
//! * [`fstr_simd`] — free surface; touches two z planes per column so
//!   there is no contiguous run to vectorize (the paper's Fig. 7 makes
//!   the same observation for the CPEs: 4–5× instead of ~30×), so it
//!   delegates to the plane-parallel scalar kernel;
//! * [`drprecpc_calc_simd`] / [`drprecpc_app_simd`] — plasticity as
//!   slice-based row loops (branch + `sqrt` per point resist lane
//!   structs without per-lane selects; contiguous-row indexing removes
//!   the per-point offset arithmetic and lets the compiler if-convert);
//! * [`apply_sponge_simd`] — damping multiply in vector lanes.

use crate::staggered::{dxm, dxp, dym, dyp, dzm, dzp, C1, C2};
use crate::state::SolverState;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use sw_grid::simd::{F32x8, LANES};
use sw_grid::tile::blocks;
use sw_grid::{Field3, HALO_WIDTH};

pub use super::parallel::fstr_par as fstr_simd;

/// z extent of a cache tile. A tile's hot set is ~30 rows (taps across
/// nine fields) × `TILE_Z` × 4 B ≈ 60 KB at 512 — sized to sit in L2
/// with room for the write streams.
pub const TILE_Z: usize = 512;

/// y extent of a cache tile: bounds how far apart in memory the y-tap
/// rows of one tile pass can be.
pub const TILE_Y: usize = 32;

/// `C1*(a[i] − b[i]) + C2*(c[i] − d[i])` over one lane — the shape of
/// every x/y stencil tap, whose four operands live in four different
/// (contiguous) rows at the same z index.
#[inline(always)]
fn lane4(a: &[f32], b: &[f32], c: &[f32], d: &[f32], i: usize) -> F32x8 {
    C1 * (F32x8::load(&a[i..]) - F32x8::load(&b[i..]))
        + C2 * (F32x8::load(&c[i..]) - F32x8::load(&d[i..]))
}

/// `dzp` on one halo-extended row at local index `i`: the z taps are
/// shifted loads from the *same* row.
#[inline(always)]
fn lane_dzp(r: &[f32], i: usize) -> F32x8 {
    C1 * (F32x8::load(&r[i + 1..]) - F32x8::load(&r[i..]))
        + C2 * (F32x8::load(&r[i + 2..]) - F32x8::load(&r[i - 1..]))
}

/// `dzm` on one halo-extended row at local index `i`.
#[inline(always)]
fn lane_dzm(r: &[f32], i: usize) -> F32x8 {
    C1 * (F32x8::load(&r[i..]) - F32x8::load(&r[i - 1..]))
        + C2 * (F32x8::load(&r[i + 1..]) - F32x8::load(&r[i - 2..]))
}

/// The halo-extended tile row of `f` at plane offset `(ox, oy)` from
/// the output column `(x, y)` — the tap rows every vector stencil
/// combines elementwise.
#[inline(always)]
fn trow(f: &Field3, x: isize, ox: isize, y: isize, oy: isize, z0: usize, len: usize) -> &[f32] {
    f.row_tile(x + ox, y + oy, z0, len)
}

/// SIMD velocity update over the whole domain (`dvelcx` + `dvelcy`).
pub fn dvelc_simd(s: &mut SolverState) {
    dvelc_simd_tiled(s, TILE_Y, TILE_Z);
}

/// Tile-parametrized body of [`dvelc_simd`] (exposed so tests can force
/// tile boundaries through small meshes).
#[doc(hidden)]
pub fn dvelc_simd_tiled(s: &mut SolverState, tile_y: usize, tile_z: usize) {
    let d = s.dims;
    let p = s.u.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let dt_dx = (s.dt / s.dx) as f32;
    let (xx, yy, zz) = (&s.xx, &s.yy, &s.zz);
    let (xy, xz, yz) = (&s.xy, &s.xz, &s.yz);
    let buoyancy = &s.buoyancy;
    let u_planes = s.u.raw_mut().par_chunks_mut(stride);
    let v_planes = s.v.raw_mut().par_chunks_mut(stride);
    let w_planes = s.w.raw_mut().par_chunks_mut(stride);
    u_planes.zip(v_planes).zip(w_planes).enumerate().skip(h).take(d.nx).for_each(
        |(px, ((up, vp), wp))| {
            let x = px - h;
            let xi = x as isize;
            for (z0, zlen) in blocks(d.nz, tile_z) {
                for (y0, ylen) in blocks(d.ny, tile_y) {
                    for y in y0..y0 + ylen {
                        let yi = y as isize;
                        // du = dxp(xx) + dym(xy) + dzm(xz)
                        let xx_c = trow(xx, xi, 0, yi, 0, z0, zlen);
                        let xx_xm1 = trow(xx, xi, -1, yi, 0, z0, zlen);
                        let xx_xp1 = trow(xx, xi, 1, yi, 0, z0, zlen);
                        let xx_xp2 = trow(xx, xi, 2, yi, 0, z0, zlen);
                        let xy_c = trow(xy, xi, 0, yi, 0, z0, zlen);
                        let xy_ym1 = trow(xy, xi, 0, yi, -1, z0, zlen);
                        let xy_yp1 = trow(xy, xi, 0, yi, 1, z0, zlen);
                        let xy_ym2 = trow(xy, xi, 0, yi, -2, z0, zlen);
                        let xz_c = trow(xz, xi, 0, yi, 0, z0, zlen);
                        // dv = dxm(xy) + dyp(yy) + dzm(yz)
                        let xy_xm1 = trow(xy, xi, -1, yi, 0, z0, zlen);
                        let xy_xp1 = trow(xy, xi, 1, yi, 0, z0, zlen);
                        let xy_xm2 = trow(xy, xi, -2, yi, 0, z0, zlen);
                        let yy_c = trow(yy, xi, 0, yi, 0, z0, zlen);
                        let yy_ym1 = trow(yy, xi, 0, yi, -1, z0, zlen);
                        let yy_yp1 = trow(yy, xi, 0, yi, 1, z0, zlen);
                        let yy_yp2 = trow(yy, xi, 0, yi, 2, z0, zlen);
                        let yz_c = trow(yz, xi, 0, yi, 0, z0, zlen);
                        // dw = dxm(xz) + dym(yz) + dzp(zz)
                        let xz_xm1 = trow(xz, xi, -1, yi, 0, z0, zlen);
                        let xz_xp1 = trow(xz, xi, 1, yi, 0, z0, zlen);
                        let xz_xm2 = trow(xz, xi, -2, yi, 0, z0, zlen);
                        let yz_ym1 = trow(yz, xi, 0, yi, -1, z0, zlen);
                        let yz_yp1 = trow(yz, xi, 0, yi, 1, z0, zlen);
                        let yz_ym2 = trow(yz, xi, 0, yi, -2, z0, zlen);
                        let zz_c = trow(zz, xi, 0, yi, 0, z0, zlen);
                        let b_row = trow(buoyancy, xi, 0, yi, 0, z0, zlen);
                        let obase = (y + h) * p.nz + h + z0;
                        let mut t = 0usize;
                        while t + LANES <= zlen {
                            let li = t + h;
                            let vb = F32x8::splat(dt_dx) * F32x8::load(&b_row[li..]);
                            let du = lane4(xx_xp1, xx_c, xx_xp2, xx_xm1, li)
                                + lane4(xy_c, xy_ym1, xy_yp1, xy_ym2, li)
                                + lane_dzm(xz_c, li);
                            let dv = lane4(xy_c, xy_xm1, xy_xp1, xy_xm2, li)
                                + lane4(yy_yp1, yy_c, yy_yp2, yy_ym1, li)
                                + lane_dzm(yz_c, li);
                            let dw = lane4(xz_c, xz_xm1, xz_xp1, xz_xm2, li)
                                + lane4(yz_c, yz_ym1, yz_yp1, yz_ym2, li)
                                + lane_dzp(zz_c, li);
                            let o = obase + t;
                            (F32x8::load(&up[o..]) + vb * du).store(&mut up[o..]);
                            (F32x8::load(&vp[o..]) + vb * dv).store(&mut vp[o..]);
                            (F32x8::load(&wp[o..]) + vb * dw).store(&mut wp[o..]);
                            t += LANES;
                        }
                        // scalar tail: identical formulas via the shared
                        // staggered operators
                        for z in z0 + t..z0 + zlen {
                            let o = (y + h) * p.nz + (z + h);
                            let b = dt_dx * buoyancy.get(x, y, z);
                            let du = dxp(xx, x, y, z) + dym(xy, x, y, z) + dzm(xz, x, y, z);
                            let dv = dxm(xy, x, y, z) + dyp(yy, x, y, z) + dzm(yz, x, y, z);
                            let dw = dxm(xz, x, y, z) + dym(yz, x, y, z) + dzp(zz, x, y, z);
                            up[o] += b * du;
                            vp[o] += b * dv;
                            wp[o] += b * dw;
                        }
                    }
                }
            }
        },
    );
}

/// SIMD stress update (`dstrqc`) with the attenuation memory variables.
pub fn dstrqc_simd(s: &mut SolverState) {
    dstrqc_simd_tiled(s, TILE_Y, TILE_Z);
}

/// Tile-parametrized body of [`dstrqc_simd`].
#[doc(hidden)]
pub fn dstrqc_simd_tiled(s: &mut SolverState, tile_y: usize, tile_z: usize) {
    let d = s.dims;
    let p = s.xx.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let inv_dx = (1.0 / s.dx) as f32;
    let dt = s.dt as f32;
    let atten = s.options.attenuation;
    let tau = s.tau as f32;
    let (a_coef, b_coef) = if atten {
        ((2.0 * tau - dt) / (2.0 * tau + dt), 2.0 * dt / (2.0 * tau + dt))
    } else {
        (1.0, 0.0)
    };
    let (u, v, w) = (&s.u, &s.v, &s.w);
    let (lam, mu, wp_f, ws_f) = (&s.lam, &s.mu, &s.wp, &s.ws);
    let [r0, r1, r2, r3, r4, r5] = &mut s.r;
    let planes =
        s.xx.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride))
            .zip(r0.raw_mut().par_chunks_mut(stride))
            .zip(r1.raw_mut().par_chunks_mut(stride))
            .zip(r2.raw_mut().par_chunks_mut(stride))
            .zip(r3.raw_mut().par_chunks_mut(stride))
            .zip(r4.raw_mut().par_chunks_mut(stride))
            .zip(r5.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, (((((((((((pxx, pyy), pzz), pxy), pxz), pyz), pr0), pr1), pr2), pr3), pr4), pr5))| {
            let x = px - h;
            let xi = x as isize;
            let stress: [&mut [f32]; 6] = [pxx, pyy, pzz, pxy, pxz, pyz];
            let mem: [&mut [f32]; 6] = [pr0, pr1, pr2, pr3, pr4, pr5];
            for (z0, zlen) in blocks(d.nz, tile_z) {
                for (y0, ylen) in blocks(d.ny, tile_y) {
                    for y in y0..y0 + ylen {
                        let yi = y as isize;
                        let u_c = trow(u, xi, 0, yi, 0, z0, zlen);
                        let u_xm1 = trow(u, xi, -1, yi, 0, z0, zlen);
                        let u_xp1 = trow(u, xi, 1, yi, 0, z0, zlen);
                        let u_xm2 = trow(u, xi, -2, yi, 0, z0, zlen);
                        let u_yp1 = trow(u, xi, 0, yi, 1, z0, zlen);
                        let u_yp2 = trow(u, xi, 0, yi, 2, z0, zlen);
                        let u_ym1 = trow(u, xi, 0, yi, -1, z0, zlen);
                        let v_c = trow(v, xi, 0, yi, 0, z0, zlen);
                        let v_xp1 = trow(v, xi, 1, yi, 0, z0, zlen);
                        let v_xp2 = trow(v, xi, 2, yi, 0, z0, zlen);
                        let v_xm1 = trow(v, xi, -1, yi, 0, z0, zlen);
                        let v_ym1 = trow(v, xi, 0, yi, -1, z0, zlen);
                        let v_yp1 = trow(v, xi, 0, yi, 1, z0, zlen);
                        let v_ym2 = trow(v, xi, 0, yi, -2, z0, zlen);
                        let w_c = trow(w, xi, 0, yi, 0, z0, zlen);
                        let w_xp1 = trow(w, xi, 1, yi, 0, z0, zlen);
                        let w_xp2 = trow(w, xi, 2, yi, 0, z0, zlen);
                        let w_xm1 = trow(w, xi, -1, yi, 0, z0, zlen);
                        let w_yp1 = trow(w, xi, 0, yi, 1, z0, zlen);
                        let w_yp2 = trow(w, xi, 0, yi, 2, z0, zlen);
                        let w_ym1 = trow(w, xi, 0, yi, -1, z0, zlen);
                        let lam_r = trow(lam, xi, 0, yi, 0, z0, zlen);
                        let mu_r = trow(mu, xi, 0, yi, 0, z0, zlen);
                        let wp_r = trow(wp_f, xi, 0, yi, 0, z0, zlen);
                        let ws_r = trow(ws_f, xi, 0, yi, 0, z0, zlen);
                        let obase = (y + h) * p.nz + h + z0;
                        let vinv = F32x8::splat(inv_dx);
                        let mut t = 0usize;
                        while t + LANES <= zlen {
                            let li = t + h;
                            let o = obase + t;
                            let vl = F32x8::load(&lam_r[li..]);
                            let vm = F32x8::load(&mu_r[li..]);
                            let exx = lane4(u_c, u_xm1, u_xp1, u_xm2, li) * vinv;
                            let eyy = lane4(v_c, v_ym1, v_yp1, v_ym2, li) * vinv;
                            let ezz = lane_dzm(w_c, li) * vinv;
                            let div = exx + eyy + ezz;
                            let exy = (lane4(u_yp1, u_c, u_yp2, u_ym1, li)
                                + lane4(v_xp1, v_c, v_xp2, v_xm1, li))
                                * vinv;
                            let exz =
                                (lane_dzp(u_c, li) + lane4(w_xp1, w_c, w_xp2, w_xm1, li)) * vinv;
                            let eyz =
                                (lane_dzp(v_c, li) + lane4(w_yp1, w_c, w_yp2, w_ym1, li)) * vinv;
                            let rates = [
                                vl * div + 2.0 * vm * exx,
                                vl * div + 2.0 * vm * eyy,
                                vl * div + 2.0 * vm * ezz,
                                vm * exy,
                                vm * exz,
                                vm * eyz,
                            ];
                            if atten {
                                let vwp = F32x8::load(&wp_r[li..]);
                                let vws = F32x8::load(&ws_r[li..]);
                                let weights = [vwp, vwp, vwp, vws, vws, vws];
                                for c in 0..6 {
                                    let e = rates[c];
                                    let r_old = F32x8::load(&mem[c][o..]);
                                    let rn = a_coef * r_old + b_coef * weights[c] * e;
                                    let r_bar = 0.5 * (rn + r_old);
                                    (F32x8::load(&stress[c][o..]) + dt * (e - r_bar))
                                        .store(&mut stress[c][o..]);
                                    rn.store(&mut mem[c][o..]);
                                }
                            } else {
                                let zero = F32x8::splat(0.0);
                                for c in 0..6 {
                                    let e = rates[c];
                                    (F32x8::load(&stress[c][o..]) + dt * (e - zero))
                                        .store(&mut stress[c][o..]);
                                }
                            }
                            t += LANES;
                        }
                        // scalar tail via the shared staggered operators
                        for z in z0 + t..z0 + zlen {
                            let o = (y + h) * p.nz + (z + h);
                            let l = lam.get(x, y, z);
                            let m = mu.get(x, y, z);
                            let exx = dxm(u, x, y, z) * inv_dx;
                            let eyy = dym(v, x, y, z) * inv_dx;
                            let ezz = dzm(w, x, y, z) * inv_dx;
                            let div = exx + eyy + ezz;
                            let exy = (dyp(u, x, y, z) + dxp(v, x, y, z)) * inv_dx;
                            let exz = (dzp(u, x, y, z) + dxp(w, x, y, z)) * inv_dx;
                            let eyz = (dzp(v, x, y, z) + dyp(w, x, y, z)) * inv_dx;
                            let rates = [
                                l * div + 2.0 * m * exx,
                                l * div + 2.0 * m * eyy,
                                l * div + 2.0 * m * ezz,
                                m * exy,
                                m * exz,
                                m * eyz,
                            ];
                            let wpv = wp_f.get(x, y, z);
                            let wsv = ws_f.get(x, y, z);
                            let weights = [wpv, wpv, wpv, wsv, wsv, wsv];
                            for c in 0..6 {
                                let e = rates[c];
                                let (r_new, r_bar) = if atten {
                                    let rn = a_coef * mem[c][o] + b_coef * weights[c] * e;
                                    (rn, 0.5 * (rn + mem[c][o]))
                                } else {
                                    (0.0, 0.0)
                                };
                                stress[c][o] += dt * (e - r_bar);
                                if atten {
                                    mem[c][o] = r_new;
                                }
                            }
                        }
                    }
                }
            }
        },
    );
}

/// SIMD `drprecpc_calc`: slice-based contiguous-row loops (the branch
/// and per-point `sqrt` keep this one scalar in the lane sense; the row
/// indexing is what the auto-vectorizer needs to if-convert the hot
/// arithmetic). Returns the number of yielding points.
pub fn drprecpc_calc_simd(s: &mut SolverState) -> usize {
    debug_assert!(s.options.nonlinear);
    let d = s.dims;
    let p = s.yldfac.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let (xx, yy, zz) = (&s.xx, &s.yy, &s.zz);
    let (xy, xz, yz) = (&s.xy, &s.xz, &s.yz);
    let (sigma0, cohes, cosphi, sinphi, pf) = (&s.sigma0, &s.cohes, &s.cosphi, &s.sinphi, &s.pf);
    let yielding = AtomicUsize::new(0);
    s.yldfac.raw_mut().par_chunks_mut(stride).enumerate().skip(h).take(d.nx).for_each(
        |(px, pyld)| {
            let x = px - h;
            let mut local = 0usize;
            for y in 0..d.ny {
                let (rxx, ryy, rzz) = (xx.row(x, y), yy.row(x, y), zz.row(x, y));
                let (rxy, rxz, ryz) = (xy.row(x, y), xz.row(x, y), yz.row(x, y));
                let rsig = sigma0.row(x, y);
                let (rc, rcos, rsin, rpf) =
                    (cohes.row(x, y), cosphi.row(x, y), sinphi.row(x, y), pf.row(x, y));
                let base = (y + h) * p.nz + h;
                let out = &mut pyld[base..base + d.nz];
                for z in 0..d.nz {
                    let (sxx, syy, szz) = (rxx[z], ryy[z], rzz[z]);
                    let (sxy, sxz, syz) = (rxy[z], rxz[z], ryz[z]);
                    let mean_dyn = (sxx + syy + szz) / 3.0;
                    let mean_total = mean_dyn + rsig[z];
                    let (dxx, dyy, dzz) = (sxx - mean_dyn, syy - mean_dyn, szz - mean_dyn);
                    let j2 = 0.5 * (dxx * dxx + dyy * dyy + dzz * dzz)
                        + sxy * sxy
                        + sxz * sxz
                        + syz * syz;
                    let tau_bar = j2.sqrt();
                    let c = rc[z];
                    let y_stress = (c * rcos[z] - (mean_total + rpf[z]) * rsin[z]).max(0.0);
                    let r = if tau_bar > y_stress && tau_bar > 0.0 {
                        local += 1;
                        y_stress / tau_bar
                    } else {
                        1.0
                    };
                    out[z] = r;
                }
            }
            yielding.fetch_add(local, Ordering::Relaxed);
        },
    );
    yielding.into_inner()
}

/// SIMD `drprecpc_app`: slice-based contiguous-row return mapping.
pub fn drprecpc_app_simd(s: &mut SolverState) {
    debug_assert!(s.options.nonlinear);
    let d = s.dims;
    let p = s.xx.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let (yldfac, mu) = (&s.yldfac, &s.mu);
    let planes =
        s.xx.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride))
            .zip(s.eqp.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, ((((((pxx, pyy), pzz), pxy), pxz), pyz), peqp))| {
            let x = px - h;
            for y in 0..d.ny {
                let ryld = yldfac.row(x, y);
                let rmu = mu.row(x, y);
                let base = (y + h) * p.nz + h;
                for z in 0..d.nz {
                    let r = ryld[z];
                    if r >= 1.0 {
                        continue;
                    }
                    let o = base + z;
                    let (sxx, syy, szz) = (pxx[o], pyy[o], pzz[o]);
                    let mean = (sxx + syy + szz) / 3.0;
                    pxx[o] = mean + r * (sxx - mean);
                    pyy[o] = mean + r * (syy - mean);
                    pzz[o] = mean + r * (szz - mean);
                    pxy[o] *= r;
                    pxz[o] *= r;
                    pyz[o] *= r;
                    let m = rmu[z].max(1.0);
                    let tau_rel = (1.0 - r)
                        * ((sxx - mean).powi(2) + (syy - mean).powi(2) + (szz - mean).powi(2))
                            .sqrt();
                    peqp[o] += tau_rel / m;
                }
            }
        },
    );
}

/// SIMD Cerjan sponge: the damping multiply in vector lanes with a
/// scalar tail (each element is scaled independently, so lane width is
/// invisible bitwise).
pub fn apply_sponge_simd(s: &mut SolverState) {
    let d = s.dims;
    if s.options.sponge_width == 0 {
        return;
    }
    let p = s.u.padded_dims();
    let stride = p.ny * p.nz;
    let h = HALO_WIDTH;
    let dcrj = &s.dcrj;
    #[inline(always)]
    fn damp_row(seg: &mut [f32], damp: &[f32]) {
        let n = seg.len();
        let mut t = 0usize;
        while t + LANES <= n {
            (F32x8::load(&seg[t..]) * F32x8::load(&damp[t..])).store(&mut seg[t..]);
            t += LANES;
        }
        for z in t..n {
            seg[z] *= damp[z];
        }
    }
    let planes =
        s.u.raw_mut()
            .par_chunks_mut(stride)
            .zip(s.v.raw_mut().par_chunks_mut(stride))
            .zip(s.w.raw_mut().par_chunks_mut(stride))
            .zip(s.xx.raw_mut().par_chunks_mut(stride))
            .zip(s.yy.raw_mut().par_chunks_mut(stride))
            .zip(s.zz.raw_mut().par_chunks_mut(stride))
            .zip(s.xy.raw_mut().par_chunks_mut(stride))
            .zip(s.xz.raw_mut().par_chunks_mut(stride))
            .zip(s.yz.raw_mut().par_chunks_mut(stride));
    planes.enumerate().skip(h).take(d.nx).for_each(
        |(px, ((((((((pu, pv), pw), pxx), pyy), pzz), pxy), pxz), pyz))| {
            let x = px - h;
            for y in 0..d.ny {
                let damp = dcrj.row(x, y);
                let base = (y + h) * p.nz + h;
                for plane in [&mut *pu, pv, pw, pxx, pyy, pzz, pxy, pxz, pyz] {
                    damp_row(&mut plane[base..base + d.nz], damp);
                }
            }
        },
    );
    if s.options.attenuation {
        let [r0, r1, r2, r3, r4, r5] = &mut s.r;
        let planes = r0
            .raw_mut()
            .par_chunks_mut(stride)
            .zip(r1.raw_mut().par_chunks_mut(stride))
            .zip(r2.raw_mut().par_chunks_mut(stride))
            .zip(r3.raw_mut().par_chunks_mut(stride))
            .zip(r4.raw_mut().par_chunks_mut(stride))
            .zip(r5.raw_mut().par_chunks_mut(stride));
        planes.enumerate().skip(h).take(d.nx).for_each(|(px, (((((p0, p1), p2), p3), p4), p5))| {
            let x = px - h;
            for y in 0..d.ny {
                let damp = dcrj.row(x, y);
                let base = (y + h) * p.nz + h;
                for plane in [&mut *p0, p1, p2, p3, p4, p5] {
                    damp_row(&mut plane[base..base + d.nz], damp);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{apply_sponge, drprecpc_app, drprecpc_calc, dstrqc, dvelcx, dvelcy, fstr};
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    /// nz = 19 forces a 3-element scalar tail after two full lanes.
    fn noisy_state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, ..Default::default() };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(12, 14, 19),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e4);
            s.xy.set(x, y, z, -v * 5e3);
            s.yz.set(x, y, z, v * 3e3);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
        }
        s
    }

    fn noisy_full_state() -> SolverState {
        let opts = StateOptions {
            sponge_width: 3,
            nonlinear: true,
            attenuation: true,
            plasticity: crate::state::PlasticityConfig {
                cohesion_surface: 1.0e5,
                cohesion_gradient: 0.0,
                friction_angle_deg: 30.0,
                fluid_pressure_ratio: 0.0,
            },
            ..Default::default()
        };
        let mut s = SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(12, 14, 19),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        );
        for (x, y, z) in s.dims.iter() {
            let v = ((x * 31 + y * 17 + z * 7) % 23) as f32 - 11.0;
            s.xx.set(x, y, z, v * 1e6);
            s.yy.set(x, y, z, -v * 4e5);
            s.zz.set(x, y, z, v * 7e5);
            s.xy.set(x, y, z, -v * 5e5);
            s.xz.set(x, y, z, v * 2e5);
            s.yz.set(x, y, z, v * 3e5);
            s.u.set(x, y, z, v * 0.01);
            s.v.set(x, y, z, -v * 0.02);
            s.w.set(x, y, z, v * 0.005);
            for r in s.r.iter_mut() {
                r.set(x, y, z, v * 1e3);
            }
        }
        s
    }

    #[test]
    fn simd_velocity_matches_serial_bitwise() {
        let mut serial = noisy_state();
        dvelcx(&mut serial);
        dvelcy(&mut serial);
        let mut simd = noisy_state();
        dvelc_simd(&mut simd);
        assert_eq!(serial.u.max_abs_diff(&simd.u), 0.0);
        assert_eq!(serial.v.max_abs_diff(&simd.v), 0.0);
        assert_eq!(serial.w.max_abs_diff(&simd.w), 0.0);
    }

    /// Tiny tiles force tile seams through the middle of the mesh; the
    /// result must not change (tiling only reorders cell visits).
    #[test]
    fn tile_boundaries_are_invisible() {
        let mut whole = noisy_state();
        dvelc_simd_tiled(&mut whole, usize::MAX, usize::MAX);
        let mut tiled = noisy_state();
        dvelc_simd_tiled(&mut tiled, 3, 5);
        assert_eq!(whole.u.max_abs_diff(&tiled.u), 0.0);
        assert_eq!(whole.w.max_abs_diff(&tiled.w), 0.0);
        let mut s_whole = noisy_full_state();
        dstrqc_simd_tiled(&mut s_whole, usize::MAX, usize::MAX);
        let mut s_tiled = noisy_full_state();
        dstrqc_simd_tiled(&mut s_tiled, 3, 5);
        for (a, b) in s_whole.stress().iter().zip(s_tiled.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        for (a, b) in s_whole.r.iter().zip(s_tiled.r.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn simd_stress_matches_serial_bitwise() {
        // attenuation on (full state) and off (noisy state): both paths
        for (mut serial, mut simd) in
            [(noisy_state(), noisy_state()), (noisy_full_state(), noisy_full_state())]
        {
            dstrqc(&mut serial);
            dstrqc_simd(&mut simd);
            for (a, b) in serial.stress().iter().zip(simd.stress().iter()) {
                assert_eq!(a.max_abs_diff(b), 0.0);
            }
            for (a, b) in serial.r.iter().zip(simd.r.iter()) {
                assert_eq!(a.max_abs_diff(b), 0.0);
            }
        }
    }

    #[test]
    fn simd_free_surface_matches_serial_bitwise() {
        let mut serial = noisy_full_state();
        fstr(&mut serial);
        let mut simd = noisy_full_state();
        fstr_simd(&mut simd);
        for (a, b) in [(&serial.zz, &simd.zz), (&serial.xz, &simd.xz), (&serial.w, &simd.w)] {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
        assert_eq!(serial.zz.at_i(4, 4, -2), simd.zz.at_i(4, 4, -2));
    }

    #[test]
    fn simd_plasticity_matches_serial_bitwise() {
        let mut serial = noisy_full_state();
        let n_serial = drprecpc_calc(&mut serial);
        drprecpc_app(&mut serial);
        let mut simd = noisy_full_state();
        let n_simd = drprecpc_calc_simd(&mut simd);
        drprecpc_app_simd(&mut simd);
        assert!(n_serial > 0, "the noisy state must actually yield somewhere");
        assert_eq!(n_serial, n_simd);
        assert_eq!(serial.yldfac.max_abs_diff(&simd.yldfac), 0.0);
        assert_eq!(serial.eqp.max_abs_diff(&simd.eqp), 0.0);
        for (a, b) in serial.stress().iter().zip(simd.stress().iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0);
        }
    }

    #[test]
    fn simd_sponge_matches_serial_bitwise() {
        let mut serial = noisy_full_state();
        apply_sponge(&mut serial);
        let mut simd = noisy_full_state();
        apply_sponge_simd(&mut simd);
        assert_eq!(serial.u.max_abs_diff(&simd.u), 0.0);
        assert_eq!(serial.xx.max_abs_diff(&simd.xx), 0.0);
        assert_eq!(serial.r[3].max_abs_diff(&simd.r[3]), 0.0);
    }

    #[test]
    fn repeated_simd_steps_stay_identical() {
        let mut serial = noisy_state();
        let mut simd = noisy_state();
        for _ in 0..5 {
            dvelcx(&mut serial);
            dvelcy(&mut serial);
            dstrqc(&mut serial);
            dvelc_simd(&mut simd);
            dstrqc_simd(&mut simd);
        }
        assert_eq!(serial.u.max_abs_diff(&simd.u), 0.0);
        assert_eq!(serial.xx.max_abs_diff(&simd.xx), 0.0);
    }
}
