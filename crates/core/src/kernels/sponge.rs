//! The Cerjan absorbing sponge.
//!
//! Multiplies velocity, stress, and memory variables by the precomputed
//! damping profile `dcrj` (1 in the interior, < 1 in the sponge bands
//! along the five absorbing faces), gradually absorbing outgoing waves so
//! the mesh boundary does not reflect them back into the region of
//! interest.

use crate::state::SolverState;
use std::ops::Range;

/// Apply the sponge to all dynamic fields.
pub fn apply_sponge(s: &mut SolverState) {
    let nx = s.dims.nx;
    apply_sponge_region(s, 0..nx);
}

/// Apply the sponge to the columns in `x_range` only.
///
/// The damping is a pointwise multiply by `dcrj`, so restricting the x
/// range is exactly the restriction of the full kernel.
pub fn apply_sponge_region(s: &mut SolverState, x_range: Range<usize>) {
    let d = s.dims;
    if s.options.sponge_width == 0 {
        return;
    }
    for x in x_range {
        for y in 0..d.ny {
            let damp: Vec<f32> = s.dcrj.row(x, y).to_vec();
            for f in [
                &mut s.u, &mut s.v, &mut s.w, &mut s.xx, &mut s.yy, &mut s.zz, &mut s.xy,
                &mut s.xz, &mut s.yz,
            ] {
                for (v, &g) in f.row_mut(x, y).iter_mut().zip(&damp) {
                    *v *= g;
                }
            }
            if s.options.attenuation {
                for f in s.r.iter_mut() {
                    for (v, &g) in f.row_mut(x, y).iter_mut().zip(&damp) {
                        *v *= g;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;

    fn state(width: usize) -> SolverState {
        let opts = StateOptions { sponge_width: width, ..Default::default() };
        SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::new(16, 16, 16),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        )
    }

    #[test]
    fn sponge_damps_boundary_preserves_center() {
        let mut s = state(4);
        for (x, y, z) in s.dims.iter() {
            s.u.set(x, y, z, 1.0);
        }
        apply_sponge(&mut s);
        assert!(s.u.get(0, 8, 8) < 1.0, "edge damped");
        assert_eq!(s.u.get(8, 8, 8), 1.0, "center untouched");
        // repeated application decays monotonically
        let e1 = s.u.get(0, 8, 8);
        apply_sponge(&mut s);
        assert!(s.u.get(0, 8, 8) < e1);
    }

    #[test]
    fn free_surface_is_not_damped() {
        let mut s = state(4);
        for (x, y, z) in s.dims.iter() {
            s.w.set(x, y, z, 1.0);
        }
        apply_sponge(&mut s);
        // z = 0 at the horizontal center: no damping from the z axis…
        assert_eq!(s.w.get(8, 8, 0), 1.0);
        // …but the bottom absorbs.
        assert!(s.w.get(8, 8, 15) < 1.0);
    }

    #[test]
    fn zero_width_is_a_noop() {
        let mut s = state(0);
        for (x, y, z) in s.dims.iter() {
            s.xx.set(x, y, z, 3.0);
        }
        apply_sponge(&mut s);
        assert_eq!(s.xx.get(0, 0, 15), 3.0);
    }
}
