//! Source injection (`addsrc`).
//!
//! Adds each point source's moment-rate stress glut to the stress tensor
//! at its grid cell. Sources outside this (sub)domain are skipped — rank-
//! local source lists come pre-partitioned by `sw-source`'s partitioner.

use crate::state::SolverState;
use sw_source::PointSource;

/// Inject `sources` at simulation time `t`.
pub fn addsrc(s: &mut SolverState, sources: &[PointSource], t: f64) {
    let d = s.dims;
    let vol = s.dx * s.dx * s.dx;
    for src in sources {
        if src.ix >= d.nx || src.iy >= d.ny || src.iz >= d.nz {
            continue;
        }
        let inc = src.stress_increment(t, s.dt, vol);
        let (x, y, z) = (src.ix, src.iy, src.iz);
        s.xx.set(x, y, z, s.xx.get(x, y, z) + inc[0]);
        s.yy.set(x, y, z, s.yy.get(x, y, z) + inc[1]);
        s.zz.set(x, y, z, s.zz.get(x, y, z) + inc[2]);
        s.xy.set(x, y, z, s.xy.get(x, y, z) + inc[3]);
        s.xz.set(x, y, z, s.xz.get(x, y, z) + inc[4]);
        s.yz.set(x, y, z, s.yz.get(x, y, z) + inc[5]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateOptions;
    use sw_grid::Dims3;
    use sw_model::HalfspaceModel;
    use sw_source::{MomentTensor, SourceTimeFunction};

    fn state() -> SolverState {
        let opts = StateOptions { sponge_width: 0, ..Default::default() };
        SolverState::from_model(
            &HalfspaceModel::hard_rock(),
            Dims3::cube(8),
            100.0,
            (0.0, 0.0, 0.0),
            opts,
        )
    }

    fn source(ix: usize) -> PointSource {
        PointSource {
            ix,
            iy: 4,
            iz: 4,
            moment: MomentTensor::double_couple(30.0, 90.0, 0.0, 1.0e15),
            stf: SourceTimeFunction::Triangle { onset: 0.0, duration: 0.5 },
        }
    }

    #[test]
    fn injection_changes_only_the_source_cell() {
        let mut s = state();
        addsrc(&mut s, &[source(4)], 0.25);
        assert!(s.xy.get(4, 4, 4).abs() > 0.0);
        assert_eq!(s.xy.get(5, 4, 4), 0.0);
        assert_eq!(s.xx.get(3, 3, 3), 0.0);
    }

    #[test]
    fn out_of_domain_sources_are_skipped() {
        let mut s = state();
        addsrc(&mut s, &[source(100)], 0.25);
        assert_eq!(s.xy.max_abs(), 0.0);
    }

    #[test]
    fn injection_accumulates_over_steps() {
        let mut s = state();
        addsrc(&mut s, &[source(4)], 0.25);
        let one = s.xy.get(4, 4, 4);
        addsrc(&mut s, &[source(4)], 0.25);
        assert!((s.xy.get(4, 4, 4) - 2.0 * one).abs() <= one.abs() * 1e-5);
    }
}
