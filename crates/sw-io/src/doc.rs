//! Durable single-document state files (campaign manifests, summaries).
//!
//! The checkpoint [`store`](crate::store) established the workspace's
//! durability conventions: every visible write is an atomic
//! temp+fsync+rename ([`checkpoint::write_atomic`]), and stray `.tmp`
//! staging files from a crashed writer are swept when the directory is
//! reopened. [`DocFile`] packages those conventions for a single JSON
//! document that is rewritten whole on every state change — the shape a
//! campaign `MANIFEST.json` needs: a crash between scenario-state
//! transitions leaves either the previous manifest or the complete new
//! one, never a torn file.

use crate::checkpoint;
use std::path::{Path, PathBuf};

/// One durably-rewritten document on disk.
#[derive(Debug, Clone)]
pub struct DocFile {
    path: PathBuf,
}

impl DocFile {
    /// Address a document at `path`, creating the parent directory and
    /// sweeping a stale staging file from a crashed writer. The document
    /// itself is not created until the first [`DocFile::save`].
    pub fn at(path: impl Into<PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = checkpoint::temp_path(&path);
        if tmp.exists() {
            std::fs::remove_file(&tmp)?;
        }
        Ok(Self { path })
    }

    /// The document's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a committed document exists.
    pub fn exists(&self) -> bool {
        self.path.exists()
    }

    /// Replace the document atomically (temp + fsync + rename + dir
    /// fsync).
    pub fn save(&self, text: &str) -> std::io::Result<()> {
        checkpoint::write_atomic(&self.path, text.as_bytes())
    }

    /// Read the committed document.
    pub fn load(&self) -> std::io::Result<String> {
        std::fs::read_to_string(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("swq_doc_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn save_then_load_roundtrips() {
        let doc = DocFile::at(dir("rt").join("MANIFEST.json")).unwrap();
        assert!(!doc.exists());
        doc.save("{\"a\":1}").unwrap();
        assert!(doc.exists());
        assert_eq!(doc.load().unwrap(), "{\"a\":1}");
        doc.save("{\"a\":2}").unwrap();
        assert_eq!(doc.load().unwrap(), "{\"a\":2}");
    }

    #[test]
    fn reopen_sweeps_stale_staging_files() {
        let d = dir("sweep");
        let path = d.join("MANIFEST.json");
        let doc = DocFile::at(&path).unwrap();
        doc.save("committed").unwrap();
        // A crashed writer leaves a staged temp behind…
        std::fs::write(checkpoint::temp_path(&path), "torn").unwrap();
        // …which reopening sweeps, leaving the committed doc intact.
        let doc = DocFile::at(&path).unwrap();
        assert!(!checkpoint::temp_path(&path).exists());
        assert_eq!(doc.load().unwrap(), "committed");
    }
}
