//! Observation recorders (the "Snapshot/Seismo Recorder" of Fig. 3).
//!
//! * [`SeismogramRecorder`] — velocity time histories at named stations
//!   (Fig. 6 / Fig. 11a–b);
//! * [`SnapshotRecorder`] — decimated surface-velocity snapshots
//!   (Fig. 11c–d);
//! * [`PgvRecorder`] — horizontal peak ground velocity per surface point,
//!   the input to the seismic-intensity hazard maps (Fig. 11e–f).

use serde::{Deserialize, Serialize};
use sw_grid::{Dims3, Field3};

/// A recording station at a surface grid point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Station {
    /// Station name.
    pub name: String,
    /// Grid index along x.
    pub ix: usize,
    /// Grid index along y.
    pub iy: usize,
}

/// One station's recorded three-component velocity history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Seismogram {
    /// The station.
    pub station: Station,
    /// Sample interval, s.
    pub dt: f64,
    /// Velocity samples `(vx, vy, vz)`, m/s.
    pub samples: Vec<[f32; 3]>,
}

impl Seismogram {
    /// Peak absolute horizontal velocity, m/s.
    pub fn peak_horizontal(&self) -> f32 {
        self.samples.iter().map(|s| (s[0] * s[0] + s[1] * s[1]).sqrt()).fold(0.0, f32::max)
    }

    /// Root-mean-square misfit of the x component against a reference
    /// seismogram, normalized by the reference RMS — the quantitative
    /// form of the Fig. 6 compressed-vs-base comparison.
    pub fn normalized_misfit(&self, reference: &Seismogram) -> f64 {
        assert_eq!(self.samples.len(), reference.samples.len());
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in self.samples.iter().zip(&reference.samples) {
            for c in 0..3 {
                num += ((a[c] - b[c]) as f64).powi(2);
                den += (b[c] as f64).powi(2);
            }
        }
        if den == 0.0 {
            if num == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (num / den).sqrt()
        }
    }
}

/// Records velocity histories at stations.
#[derive(Debug, Clone, PartialEq)]
pub struct SeismogramRecorder {
    records: Vec<Seismogram>,
}

impl SeismogramRecorder {
    /// Recorder for `stations` sampling every `dt` seconds.
    pub fn new(stations: Vec<Station>, dt: f64) -> Self {
        Self {
            records: stations
                .into_iter()
                .map(|station| Seismogram { station, dt, samples: Vec::new() })
                .collect(),
        }
    }

    /// Record one step: sample the surface (z = 0) velocity at every
    /// station.
    pub fn record(&mut self, u: &Field3, v: &Field3, w: &Field3) {
        for rec in &mut self.records {
            let (ix, iy) = (rec.station.ix, rec.station.iy);
            rec.samples.push([u.get(ix, iy, 0), v.get(ix, iy, 0), w.get(ix, iy, 0)]);
        }
    }

    /// Record one step from a surface-velocity sampler `(ix, iy) →
    /// (vx, vy, vz)` — the entry point for state representations that
    /// have no full f32 arrays to hand (e.g. compressed-resident
    /// wavefields decode exactly the tapped cells).
    pub fn record_with(&mut self, mut sample: impl FnMut(usize, usize) -> [f32; 3]) {
        for rec in &mut self.records {
            rec.samples.push(sample(rec.station.ix, rec.station.iy));
        }
    }

    /// The recorded seismograms.
    pub fn seismograms(&self) -> &[Seismogram] {
        &self.records
    }

    /// Replace sample histories from checkpointed seismograms, matched
    /// by station name (a resumed run appends where the killed run
    /// stopped). Stations absent from `saved` keep their (empty)
    /// history; extra saved stations are ignored.
    pub fn restore_samples(&mut self, saved: &[Seismogram]) {
        for rec in &mut self.records {
            if let Some(s) = saved.iter().find(|s| s.station.name == rec.station.name) {
                rec.samples = s.samples.clone();
            }
        }
    }

    /// Look up one station by name.
    pub fn get(&self, name: &str) -> Option<&Seismogram> {
        self.records.iter().find(|r| r.station.name == name)
    }
}

/// Records decimated surface snapshots of |v|.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotRecorder {
    /// Take every `stride`-th point along x and y.
    pub stride: usize,
    /// Snapshots `(time, values)` with row-major decimated layout.
    pub snapshots: Vec<(f64, Vec<f32>)>,
}

impl SnapshotRecorder {
    /// Recorder with the given decimation.
    pub fn new(stride: usize) -> Self {
        assert!(stride > 0);
        Self { stride, snapshots: Vec::new() }
    }

    /// Decimated extents for a mesh.
    pub fn snapshot_dims(&self, dims: Dims3) -> (usize, usize) {
        (dims.nx.div_ceil(self.stride), dims.ny.div_ceil(self.stride))
    }

    /// Capture the surface |v| field at time `t`.
    pub fn capture(&mut self, t: f64, u: &Field3, v: &Field3, w: &Field3) {
        let d = u.dims();
        let mut out = Vec::new();
        for x in (0..d.nx).step_by(self.stride) {
            for y in (0..d.ny).step_by(self.stride) {
                let (a, b, c) = (u.get(x, y, 0), v.get(x, y, 0), w.get(x, y, 0));
                out.push((a * a + b * b + c * c).sqrt());
            }
        }
        self.snapshots.push((t, out));
    }
}

/// Accumulates horizontal peak ground velocity over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PgvRecorder {
    nx: usize,
    ny: usize,
    /// Peak |v_horizontal| per surface point, row-major (x, y).
    pub pgv: Vec<f32>,
}

impl PgvRecorder {
    /// Recorder over an `nx × ny` surface.
    pub fn new(nx: usize, ny: usize) -> Self {
        Self { nx, ny, pgv: vec![0.0; nx * ny] }
    }

    /// Rebuild a recorder from checkpointed parts.
    pub fn from_parts(nx: usize, ny: usize, pgv: Vec<f32>) -> Self {
        assert_eq!(pgv.len(), nx * ny);
        Self { nx, ny, pgv }
    }

    /// Surface extent along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Surface extent along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Fold in one step's surface velocities.
    pub fn record(&mut self, u: &Field3, v: &Field3) {
        let d = u.dims();
        debug_assert_eq!((d.nx, d.ny), (self.nx, self.ny));
        for x in 0..self.nx {
            for y in 0..self.ny {
                let (a, b) = (u.get(x, y, 0), v.get(x, y, 0));
                let h = (a * a + b * b).sqrt();
                let p = &mut self.pgv[x * self.ny + y];
                if h > *p {
                    *p = h;
                }
            }
        }
    }

    /// Fold in one step from a surface-velocity sampler `(x, y) →
    /// (vx, vy)` (see [`SeismogramRecorder::record_with`]).
    pub fn record_with(&mut self, mut sample: impl FnMut(usize, usize) -> (f32, f32)) {
        for x in 0..self.nx {
            for y in 0..self.ny {
                let (a, b) = sample(x, y);
                let h = (a * a + b * b).sqrt();
                let p = &mut self.pgv[x * self.ny + y];
                if h > *p {
                    *p = h;
                }
            }
        }
    }

    /// PGV at a surface point.
    pub fn at(&self, x: usize, y: usize) -> f32 {
        self.pgv[x * self.ny + y]
    }

    /// Maximum PGV anywhere.
    pub fn max(&self) -> f32 {
        self.pgv.iter().copied().fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(val: f32) -> (Field3, Field3, Field3) {
        let d = Dims3::new(4, 4, 3);
        (Field3::filled(d, 2, val), Field3::filled(d, 2, -val), Field3::filled(d, 2, 0.5 * val))
    }

    #[test]
    fn seismograms_sample_surface_velocity() {
        let mut rec =
            SeismogramRecorder::new(vec![Station { name: "Ninghe".into(), ix: 1, iy: 2 }], 0.01);
        let (u, v, w) = fields(2.0);
        rec.record(&u, &v, &w);
        let (u2, v2, w2) = fields(3.0);
        rec.record(&u2, &v2, &w2);
        let s = rec.get("Ninghe").unwrap();
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0], [2.0, -2.0, 1.0]);
        assert!((s.peak_horizontal() - (9.0f32 + 9.0).sqrt()).abs() < 1e-6);
        assert!(rec.get("Nowhere").is_none());
    }

    #[test]
    fn misfit_zero_for_identical_and_positive_otherwise() {
        let mut rec =
            SeismogramRecorder::new(vec![Station { name: "A".into(), ix: 0, iy: 0 }], 0.01);
        let (u, v, w) = fields(1.0);
        rec.record(&u, &v, &w);
        let a = rec.seismograms()[0].clone();
        let mut b = a.clone();
        assert_eq!(a.normalized_misfit(&b), 0.0);
        b.samples[0][0] += 0.1;
        assert!(a.normalized_misfit(&b) > 0.0);
    }

    #[test]
    fn snapshots_are_decimated() {
        let mut rec = SnapshotRecorder::new(2);
        let (u, v, w) = fields(1.0);
        rec.capture(0.5, &u, &v, &w);
        let (sx, sy) = rec.snapshot_dims(u.dims());
        assert_eq!((sx, sy), (2, 2));
        assert_eq!(rec.snapshots.len(), 1);
        assert_eq!(rec.snapshots[0].1.len(), 4);
        let expect = (1.0f32 + 1.0 + 0.25).sqrt();
        assert!((rec.snapshots[0].1[0] - expect).abs() < 1e-6);
    }

    #[test]
    fn pgv_keeps_the_running_maximum() {
        let mut rec = PgvRecorder::new(4, 4);
        let (u, v, _) = fields(1.0);
        rec.record(&u, &v);
        let first = rec.at(0, 0);
        let (u2, v2, _) = fields(0.2);
        rec.record(&u2, &v2);
        assert_eq!(rec.at(0, 0), first, "smaller later motion keeps the peak");
        let (u3, v3, _) = fields(5.0);
        rec.record(&u3, &v3);
        assert!(rec.at(0, 0) > first);
        assert_eq!(rec.max(), rec.at(1, 1));
    }
}
