//! Durable append-only JSONL files (`perf_history.jsonl` and friends).
//!
//! A history file accumulates one JSON record per line across many
//! process lifetimes, so the write discipline differs from the
//! atomic-replace documents in [`crate::doc`]: the file is opened in
//! append mode, the record (with its trailing newline) lands in **one**
//! `write` call — POSIX appends of one buffer do not interleave with
//! other appenders — and the file is fsynced before the handle drops,
//! so a crash after [`append_line`] returns cannot lose the record.
//! A torn final line from a crash *mid*-append is tolerated by
//! [`read_lines`], which skips lines that do not parse as JSON objects.

use std::io::Write;
use std::path::Path;

/// Append one record to a JSONL file, creating it (and its parent
/// directory) if needed. `line` must be a single JSON document without
/// embedded newlines; the trailing newline is added here.
pub fn append_line(path: &Path, line: &str) -> std::io::Result<()> {
    debug_assert!(!line.contains('\n'), "JSONL records must be single-line");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    file.write_all(buf.as_bytes())?;
    file.sync_all()
}

/// Read every line of a JSONL file that parses as a JSON value,
/// silently skipping torn or malformed lines (a crash mid-append can
/// leave at most one). Returns an empty list for a missing file.
pub fn read_lines(path: &Path) -> std::io::Result<Vec<serde_json::Value>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    Ok(text.lines().filter_map(|l| serde_json::from_str(l).ok()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("swquake_jsonl_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_accumulates_lines_across_opens() {
        let dir = temp_dir("append");
        let path = dir.join("history.jsonl");
        append_line(&path, "{\"step\": 1}").unwrap();
        append_line(&path, "{\"step\": 2}").unwrap();
        let lines = read_lines(&path).unwrap();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].get("step").unwrap().as_u64(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_skips_torn_lines_and_missing_files() {
        let dir = temp_dir("torn");
        let path = dir.join("history.jsonl");
        assert!(read_lines(&path).unwrap().is_empty(), "missing file reads as empty");
        append_line(&path, "{\"ok\": true}").unwrap();
        // Simulate a crash mid-append: a torn, unterminated fragment.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"torn\": ").unwrap();
        }
        let lines = read_lines(&path).unwrap();
        assert_eq!(lines.len(), 1, "torn line is skipped");
        // The next append still lands on its own... line boundary is
        // gone, so the merged line is also skipped — but the one after
        // parses again.
        append_line(&path, "{\"ok\": 2}").unwrap();
        append_line(&path, "{\"ok\": 3}").unwrap();
        let lines = read_lines(&path).unwrap();
        assert!(lines.len() >= 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn creates_parent_directories() {
        let dir = temp_dir("parents");
        let path = dir.join("nested/deep/history.jsonl");
        append_line(&path, "{}").unwrap();
        assert_eq!(read_lines(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
