//! Group I/O and balanced I/O forwarding (§6.2).
//!
//! 160,000 ranks cannot open 160,000 files: the paper groups ranks,
//! aggregates each group's data at a leader, and balances the leaders over
//! the I/O forwarding nodes, reaching "a peak I/O bandwidth of 120 GB/s
//! (92.3 % of the file system we use)". This module provides both the
//! functional aggregation (gather group members' buffers at the leader in
//! rank order) and the bandwidth model that reproduces those numbers.

use serde::{Deserialize, Serialize};

/// Parameters of the I/O subsystem model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupIoModel {
    /// Ranks per I/O group.
    pub group_size: usize,
    /// Number of I/O forwarding nodes.
    pub forwarding_nodes: usize,
    /// Peak bandwidth of one forwarding node, bytes/s.
    pub node_bandwidth: f64,
    /// File-system ceiling, bytes/s (the paper's 130 GB/s class system).
    pub filesystem_bandwidth: f64,
}

impl GroupIoModel {
    /// The TaihuLight-like configuration: 80 forwarding nodes at
    /// 1.625 GB/s behind a 130 GB/s file system.
    pub fn taihulight() -> Self {
        Self {
            group_size: 512,
            forwarding_nodes: 80,
            node_bandwidth: 1.625e9,
            filesystem_bandwidth: 130.0e9,
        }
    }

    /// Leader rank of a given rank's group.
    pub fn leader_of(&self, rank: usize) -> usize {
        rank / self.group_size * self.group_size
    }

    /// Forwarding node serving a group, balanced round-robin (the
    /// "balanced I/O forwarding" of Fig. 3).
    pub fn forwarding_node_of(&self, group: usize) -> usize {
        group % self.forwarding_nodes
    }

    /// Aggregate bandwidth when `groups` leaders write concurrently with
    /// balanced forwarding, bytes/s.
    pub fn aggregate_bandwidth(&self, groups: usize) -> f64 {
        let active_nodes = groups.min(self.forwarding_nodes) as f64;
        (active_nodes * self.node_bandwidth).min(self.filesystem_bandwidth)
    }

    /// Aggregate bandwidth with *unbalanced* forwarding (all groups hash
    /// onto a fraction of the nodes) — what the balancing fixes.
    pub fn unbalanced_bandwidth(&self, groups: usize, hot_fraction: f64) -> f64 {
        let nodes = (self.forwarding_nodes as f64 * hot_fraction).max(1.0);
        (nodes.min(groups as f64) * self.node_bandwidth).min(self.filesystem_bandwidth)
    }

    /// Seconds to write `bytes` from `ranks` ranks.
    pub fn write_seconds(&self, bytes: f64, ranks: usize) -> f64 {
        let groups = ranks.div_ceil(self.group_size);
        bytes / self.aggregate_bandwidth(groups)
    }

    /// Functional aggregation: gather per-rank buffers of one group at the
    /// leader, in rank order (what the leader actually writes).
    pub fn gather_group(&self, members: &[(usize, Vec<u8>)]) -> Vec<u8> {
        let mut sorted: Vec<&(usize, Vec<u8>)> = members.iter().collect();
        sorted.sort_by_key(|(rank, _)| *rank);
        let mut out = Vec::with_capacity(sorted.iter().map(|(_, b)| b.len()).sum());
        for (_, buf) in sorted {
            out.extend_from_slice(buf);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_bandwidth_matches_paper() {
        // §6.2: 120 GB/s peak = 92.3 % of the file system.
        let m = GroupIoModel::taihulight();
        let bw = m.aggregate_bandwidth(313); // 160,000 ranks / 512
        let gbs = bw / 1e9;
        assert!((gbs - 120.0).abs() < 15.0, "aggregate {gbs} GB/s");
        let frac = bw / m.filesystem_bandwidth;
        assert!((frac - 0.923).abs() < 0.1, "fraction {frac}");
    }

    #[test]
    fn balancing_beats_hot_spotting() {
        let m = GroupIoModel::taihulight();
        let balanced = m.aggregate_bandwidth(313);
        let unbalanced = m.unbalanced_bandwidth(313, 0.25);
        assert!(balanced > 3.0 * unbalanced, "{balanced} vs {unbalanced}");
    }

    #[test]
    fn few_groups_cannot_saturate() {
        let m = GroupIoModel::taihulight();
        assert!(m.aggregate_bandwidth(4) < m.aggregate_bandwidth(80));
        assert_eq!(m.aggregate_bandwidth(80), m.aggregate_bandwidth(200));
    }

    #[test]
    fn checkpoint_time_at_scale() {
        // The 16-m case: 108 TB of restart wavefields. Uncompressed at
        // 120 GB/s that's ~15 minutes — the pain §6.2 describes; LZ4 at
        // ratio ~2 halves it.
        let m = GroupIoModel::taihulight();
        let t_raw = m.write_seconds(108e12, 160_000);
        assert!((800.0..1000.0).contains(&t_raw), "raw write {t_raw} s");
        let t_lz4 = m.write_seconds(54e12, 160_000);
        assert!(t_lz4 < t_raw / 1.9);
    }

    #[test]
    fn leaders_and_forwarding_nodes() {
        let m = GroupIoModel::taihulight();
        assert_eq!(m.leader_of(0), 0);
        assert_eq!(m.leader_of(511), 0);
        assert_eq!(m.leader_of(512), 512);
        // Round-robin balance: consecutive groups hit different nodes.
        assert_ne!(m.forwarding_node_of(0), m.forwarding_node_of(1));
        assert_eq!(m.forwarding_node_of(0), m.forwarding_node_of(80));
    }

    #[test]
    fn gather_orders_by_rank() {
        let m = GroupIoModel::taihulight();
        let members = vec![(7usize, vec![7u8]), (3, vec![3u8, 3]), (5, vec![5u8])];
        assert_eq!(m.gather_group(&members), vec![3, 3, 5, 7]);
    }
}
