//! I/O subsystems (the bottom band of Fig. 3: "LZ4 Compression, Group I/O,
//! Balanced I/O Forwarding") plus the observation recorders.
//!
//! * [`checkpoint`] — checkpoint/restart of the full wavefield state with
//!   from-scratch LZ4 block compression and integrity checksums (§6.2: the
//!   16-m Tangshan case would need 108 TB of restart wavefields without
//!   compression);
//! * [`store`] — the durable checkpoint lifecycle: atomic generation
//!   files, a versioned manifest with keep-N retention, and
//!   corrupt-generation fallback on restore;
//! * [`groupio`] — the group-I/O and balanced-forwarding aggregation model
//!   that reaches "a peak I/O bandwidth of 120 GB/s (92.3 % of the file
//!   system we use)";
//! * [`doc`] — durable single-JSON-document files (campaign manifests)
//!   reusing the store's atomic-write and temp-sweep conventions;
//! * [`jsonl`] — durable append-only JSONL history files (one fsynced
//!   single-buffer append per record, e.g. `perf_history.jsonl`);
//! * [`recorder`] — seismogram, snapshot and peak-ground-velocity
//!   recorders (the "Snapshot/Seismo Recorder" box of Fig. 3).

pub mod checkpoint;
pub mod doc;
pub mod groupio;
pub mod jsonl;
pub mod recorder;
pub mod store;

pub use checkpoint::{Checkpoint, CheckpointError, ReadError, RestartController};
pub use doc::DocFile;
pub use groupio::GroupIoModel;
pub use recorder::{PgvRecorder, SeismogramRecorder, SnapshotRecorder, Station};
pub use store::{CheckpointStore, Manifest, ManifestGeneration, RestoredGeneration, StoreError};
