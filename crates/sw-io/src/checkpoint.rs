//! Checkpoint / restart.
//!
//! "The toughest challenge comes from the checkpoints for restart. All the
//! wavefields required by the checkpoint aggregate to a size of 108 TB in
//! the 16-meter resolution case … therefore, we integrate the LZ4
//! compression to reduce the size for a smoother run." (§6.2)
//!
//! A [`Checkpoint`] carries every named wavefield (interior only — halos
//! are re-exchanged on restart), LZ4-compressed per field, plus the
//! observation state accumulated so far (seismogram histories, the PGV
//! accumulator, the useful-flops counter) so a resumed run reproduces the
//! uninterrupted run's outputs byte-for-byte — not just its wavefields.
//!
//! Integrity is layered: a whole-file FNV-64 checksum (the trailing 8
//! bytes) is verified *before* any length field is trusted, so a bit flip
//! or truncation anywhere in the image is a classified
//! [`CheckpointError`] rather than a panic, allocation blow-up, or silent
//! wrong decode; per-field checksums then localize which wavefield a
//! deeper corruption hit.
//!
//! [`Checkpoint::write_file`] is crash-consistent: the image is staged to
//! a temp file, fsynced, atomically renamed over the destination, and the
//! directory is fsynced — a crash at any instant leaves either the old
//! file or the new one, never a torn hybrid.

use std::path::{Path, PathBuf};

use crate::recorder::{Seismogram, Station};
use sw_compress::lz4;
use sw_grid::{Dims3, Field3};

/// Minimal little-endian cursor over a byte slice (replaces `bytes::Buf`;
/// the crate registry is unreachable in this build environment).
///
/// All `get_*` methods assume the caller checked `remaining()` first,
/// matching how the decoder below is written.
trait ReadLe {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f32_le(&mut self) -> f32;
    fn get_f64_le(&mut self) -> f64;
}

impl ReadLe for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.advance(1);
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Serialization magic (format v2: recorder state + whole-file checksum).
const MAGIC: u32 = 0x5351_4b32; // "SQK2"

/// Magic of the pre-recorder v1 format, recognized only to give a
/// clearer error than "not a checkpoint".
const MAGIC_V1: u32 = 0x5351_4b31; // "SQK1"

/// Error decoding a checkpoint image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic or too short to carry the fixed header.
    BadHeader,
    /// Written by an incompatible format version.
    BadVersion {
        /// The magic found in the file.
        found: u32,
    },
    /// Whole-file checksum mismatch: the image was truncated or
    /// bit-flipped somewhere after it was encoded.
    CorruptFile,
    /// LZ4 payload failed to decode or a section is inconsistent.
    BadPayload,
    /// Per-field checksum mismatch (corruption localized to one field).
    Corrupt {
        /// Field whose checksum failed.
        field: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "not a swquake checkpoint"),
            CheckpointError::BadVersion { found } => {
                write!(f, "unsupported checkpoint format (magic {found:#010x})")
            }
            CheckpointError::CorruptFile => {
                write!(f, "checkpoint image corrupt (whole-file checksum mismatch)")
            }
            CheckpointError::BadPayload => write!(f, "LZ4 payload corrupt"),
            CheckpointError::Corrupt { field } => write!(f, "checksum mismatch in field {field}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Error reading a checkpoint from disk: either the file couldn't be
/// read at all, or its contents failed to decode. This flattens the old
/// `io::Result<Result<_, CheckpointError>>` nesting into one variant set
/// callers can match directly.
#[derive(Debug)]
pub enum ReadError {
    /// The file couldn't be read.
    Io {
        /// Path of the checkpoint file.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The file's contents are not a valid checkpoint.
    Decode {
        /// Path of the checkpoint file.
        path: PathBuf,
        /// What's wrong with the image.
        error: CheckpointError,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io { path, source } => {
                write!(f, "cannot read checkpoint {}: {source}", path.display())
            }
            ReadError::Decode { path, error } => {
                write!(f, "checkpoint {} invalid: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io { source, .. } => Some(source),
            ReadError::Decode { error, .. } => Some(error),
        }
    }
}

/// A snapshot of the simulation state at one step.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Time-step index.
    pub step: u64,
    /// Simulated time, s.
    pub time: f64,
    /// Useful flops accumulated up to `step` (resumes continue the
    /// telemetry counter instead of restarting it at zero).
    pub flops: f64,
    /// Named wavefields (name, field).
    pub fields: Vec<(String, Field3)>,
    /// Full station histories up to `step`: a resumed run appends to
    /// these and writes byte-identical seismogram CSVs.
    pub seismograms: Vec<Seismogram>,
    /// PGV accumulator `(nx, ny, values)`, when hazard recording is on.
    pub pgv: Option<(usize, usize, Vec<f32>)>,
}

/// FNV-1a over raw bytes: cheap, order-sensitive, dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn checksum(data: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Crash-consistent file write: stage to `<path>.tmp`, fsync, rename over
/// `path`, fsync the directory. A crash at any point leaves either the
/// previous file or the complete new one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = stage_temp(path, bytes)?;
    commit_staged(&tmp, path)
}

/// First half of [`write_atomic`]: write + fsync the temp file, return
/// its path. Split out so fault injection can crash "between" the halves.
pub fn stage_temp(path: &Path, bytes: &[u8]) -> std::io::Result<PathBuf> {
    use std::io::Write;
    let tmp = temp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    Ok(tmp)
}

/// Second half of [`write_atomic`]: rename the staged temp file into
/// place and fsync the parent directory so the rename itself is durable.
pub fn commit_staged(tmp: &Path, path: &Path) -> std::io::Result<()> {
    std::fs::rename(tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync is advisory on some filesystems; opening can
        // fail (e.g. on exotic mounts) without threatening the rename.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// The staging name used by [`write_atomic`] (stray `.tmp` files from a
/// crashed writer are cleaned up by the checkpoint store on open).
pub fn temp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

impl Checkpoint {
    /// Serialize: header, per-field sections, seismogram and PGV
    /// sections, then a trailing whole-file FNV-64 checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&self.flops.to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (name, field) in &self.fields {
            let interior = field.interior_to_vec();
            let compressed = lz4::compress_f32(&interior);
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let d = field.dims();
            out.extend_from_slice(&(d.nx as u64).to_le_bytes());
            out.extend_from_slice(&(d.ny as u64).to_le_bytes());
            out.extend_from_slice(&(d.nz as u64).to_le_bytes());
            out.extend_from_slice(&(field.halo() as u32).to_le_bytes());
            out.extend_from_slice(&checksum(&interior).to_le_bytes());
            out.extend_from_slice(&(compressed.len() as u64).to_le_bytes());
            out.extend_from_slice(&compressed);
        }
        out.extend_from_slice(&(self.seismograms.len() as u32).to_le_bytes());
        for s in &self.seismograms {
            out.extend_from_slice(&(s.station.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.station.name.as_bytes());
            out.extend_from_slice(&(s.station.ix as u64).to_le_bytes());
            out.extend_from_slice(&(s.station.iy as u64).to_le_bytes());
            out.extend_from_slice(&s.dt.to_le_bytes());
            out.extend_from_slice(&(s.samples.len() as u64).to_le_bytes());
            for sample in &s.samples {
                for c in sample {
                    out.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
        match &self.pgv {
            Some((nx, ny, values)) => {
                out.push(1);
                out.extend_from_slice(&(*nx as u64).to_le_bytes());
                out.extend_from_slice(&(*ny as u64).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            None => out.push(0),
        }
        let file_sum = fnv1a(&out);
        out.extend_from_slice(&file_sum.to_le_bytes());
        out
    }

    /// Deserialize and verify.
    ///
    /// The whole-file checksum is verified before anything else, so on
    /// any post-encode corruption — flipped bits, truncation, garbage —
    /// this returns a classified error without trusting a single length
    /// field from the damaged image.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.remaining() < 4 {
            return Err(CheckpointError::BadHeader);
        }
        let magic = u32::from_le_bytes(buf[..4].try_into().unwrap());
        if magic != MAGIC {
            if magic == MAGIC_V1 {
                return Err(CheckpointError::BadVersion { found: magic });
            }
            return Err(CheckpointError::BadHeader);
        }
        // Fixed header (magic + step + time + flops + n_fields) plus the
        // trailing checksum is the smallest possible valid image.
        if buf.remaining() < 4 + 8 + 8 + 8 + 4 + 8 {
            return Err(CheckpointError::CorruptFile);
        }
        let body_len = buf.remaining() - 8;
        let stored_sum = u64::from_le_bytes(buf[body_len..].try_into().unwrap());
        if fnv1a(&buf[..body_len]) != stored_sum {
            return Err(CheckpointError::CorruptFile);
        }
        buf = &buf[..body_len];
        buf.advance(4); // magic, already checked
        let step = buf.get_u64_le();
        let time = buf.get_f64_le();
        let flops = buf.get_f64_le();
        let n = buf.get_u32_le() as usize;
        // Every bound below is belt-and-braces: the checksum already
        // vouched for the image, so a failure here means an encoder bug,
        // and CorruptFile keeps it an error instead of a panic.
        let mut fields = Vec::with_capacity(n.min(buf.remaining()));
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err(CheckpointError::CorruptFile);
            }
            let name_len = buf.get_u16_le() as usize;
            if buf.remaining() < name_len {
                return Err(CheckpointError::CorruptFile);
            }
            let name = String::from_utf8_lossy(&buf[..name_len]).into_owned();
            buf.advance(name_len);
            if buf.remaining() < 8 * 3 + 4 + 8 + 8 {
                return Err(CheckpointError::CorruptFile);
            }
            let dims = Dims3::new(
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
            );
            let halo = buf.get_u32_le() as usize;
            let sum = buf.get_u64_le();
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(CheckpointError::CorruptFile);
            }
            let interior =
                lz4::decompress_f32(&buf[..len]).map_err(|_| CheckpointError::BadPayload)?;
            buf.advance(len);
            if interior.len() != dims.len() {
                return Err(CheckpointError::BadPayload);
            }
            if checksum(&interior) != sum {
                return Err(CheckpointError::Corrupt { field: name });
            }
            let mut field = Field3::new(dims, halo);
            field.interior_from_slice(&interior);
            fields.push((name, field));
        }
        if buf.remaining() < 4 {
            return Err(CheckpointError::CorruptFile);
        }
        let n_seismo = buf.get_u32_le() as usize;
        let mut seismograms = Vec::with_capacity(n_seismo.min(buf.remaining()));
        for _ in 0..n_seismo {
            if buf.remaining() < 2 {
                return Err(CheckpointError::CorruptFile);
            }
            let name_len = buf.get_u16_le() as usize;
            if buf.remaining() < name_len {
                return Err(CheckpointError::CorruptFile);
            }
            let name = String::from_utf8_lossy(&buf[..name_len]).into_owned();
            buf.advance(name_len);
            if buf.remaining() < 8 + 8 + 8 + 8 {
                return Err(CheckpointError::CorruptFile);
            }
            let ix = buf.get_u64_le() as usize;
            let iy = buf.get_u64_le() as usize;
            let dt = buf.get_f64_le();
            let n_samples = buf.get_u64_le() as usize;
            if buf.remaining() < n_samples.saturating_mul(12) {
                return Err(CheckpointError::CorruptFile);
            }
            let mut samples = Vec::with_capacity(n_samples);
            for _ in 0..n_samples {
                samples.push([buf.get_f32_le(), buf.get_f32_le(), buf.get_f32_le()]);
            }
            seismograms.push(Seismogram { station: Station { name, ix, iy }, dt, samples });
        }
        if buf.remaining() < 1 {
            return Err(CheckpointError::CorruptFile);
        }
        let pgv = match buf.get_u8() {
            0 => None,
            1 => {
                if buf.remaining() < 16 {
                    return Err(CheckpointError::CorruptFile);
                }
                let nx = buf.get_u64_le() as usize;
                let ny = buf.get_u64_le() as usize;
                let count = nx.saturating_mul(ny);
                if buf.remaining() < count.saturating_mul(4) {
                    return Err(CheckpointError::CorruptFile);
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(buf.get_f32_le());
                }
                Some((nx, ny, values))
            }
            _ => return Err(CheckpointError::CorruptFile),
        };
        if buf.remaining() != 0 {
            return Err(CheckpointError::CorruptFile);
        }
        Ok(Self { step, time, flops, fields, seismograms, pgv })
    }

    /// Uncompressed wavefield payload size in bytes (the "108 TB"
    /// accounting).
    pub fn raw_bytes(&self) -> usize {
        self.fields.iter().map(|(_, f)| f.dims().bytes_f32()).sum()
    }

    /// Write to a file crash-consistently (see [`write_atomic`]).
    pub fn write_file(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, &self.encode())
    }

    /// Read and verify a checkpoint file.
    pub fn read_file(path: &Path) -> Result<Self, ReadError> {
        let bytes = std::fs::read(path)
            .map_err(|source| ReadError::Io { path: path.to_path_buf(), source })?;
        Self::decode(&bytes).map_err(|error| ReadError::Decode { path: path.to_path_buf(), error })
    }
}

/// Decides when to checkpoint ("Restart Controller" of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartController {
    /// Steps between checkpoints (0 = never).
    pub interval: u64,
}

impl RestartController {
    /// True when `step` is a checkpoint step.
    pub fn due(&self, step: u64) -> bool {
        self.interval > 0 && step > 0 && step.is_multiple_of(self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let d = Dims3::new(6, 5, 7);
        let mut u = Field3::new(d, 2);
        u.fill_with(|x, y, z| ((x + 2 * y + 3 * z) as f32 * 0.01).sin());
        let mut xx = Field3::new(d, 2);
        xx.fill_with(|x, y, z| (x * y) as f32 - z as f32);
        Checkpoint {
            step: 4200,
            time: 12.75,
            flops: 3.5e9,
            fields: vec![("u".into(), u), ("xx".into(), xx)],
            seismograms: vec![Seismogram {
                station: Station { name: "Ninghe".into(), ix: 3, iy: 2 },
                dt: 0.01,
                samples: vec![[0.1, -0.2, 0.3], [0.4, 0.5, -0.6]],
            }],
            pgv: Some((2, 3, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5])),
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = sample();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back.step, 4200);
        assert_eq!(back.time, 12.75);
        assert_eq!(back.flops, 3.5e9);
        assert_eq!(back.fields.len(), 2);
        for ((an, af), (bn, bf)) in c.fields.iter().zip(&back.fields) {
            assert_eq!(an, bn);
            assert_eq!(af.max_abs_diff(bf), 0.0, "field {an} must be bit-exact");
        }
        assert_eq!(back.seismograms, c.seismograms);
        assert_eq!(back.pgv, c.pgv);
    }

    #[test]
    fn roundtrip_without_aux_state() {
        let mut c = sample();
        c.seismograms.clear();
        c.pgv = None;
        let back = Checkpoint::decode(&c.encode()).unwrap();
        assert!(back.seismograms.is_empty());
        assert!(back.pgv.is_none());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::BadHeader));
    }

    #[test]
    fn v1_magic_reported_as_version_mismatch() {
        let mut bytes = sample().encode();
        bytes[..4].copy_from_slice(&MAGIC_V1.to_le_bytes());
        assert_eq!(
            Checkpoint::decode(&bytes),
            Err(CheckpointError::BadVersion { found: MAGIC_V1 })
        );
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode().to_vec();
        // Flip a byte inside the image (past the header, before the
        // trailing checksum): the whole-file checksum catches it.
        let mut corrupt = bytes.clone();
        let idx = bytes.len() - 20;
        corrupt[idx] ^= 0x01;
        assert_eq!(Checkpoint::decode(&corrupt), Err(CheckpointError::CorruptFile));
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = sample().encode();
        for cut in [3, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn compression_shrinks_smooth_wavefields() {
        let c = sample();
        let encoded = c.encode().len();
        // Smooth fields leave plenty of byte-level redundancy.
        assert!(encoded < c.raw_bytes() * 2, "encoded {encoded} raw {}", c.raw_bytes());
    }

    #[test]
    fn file_roundtrip_and_flattened_errors() {
        let dir = std::env::temp_dir().join("swquake_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.swq");
        let c = sample();
        c.write_file(&path).unwrap();
        let back = Checkpoint::read_file(&path).unwrap();
        assert_eq!(back.step, c.step);
        assert!(!temp_path(&path).exists(), "atomic write must not leave its staging file behind");
        // Decode failures and I/O failures arrive as distinct variants.
        std::fs::write(&path, b"junk").unwrap();
        assert!(matches!(
            Checkpoint::read_file(&path),
            Err(ReadError::Decode { error: CheckpointError::BadHeader, .. })
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(Checkpoint::read_file(&path), Err(ReadError::Io { .. })));
    }

    #[test]
    fn restart_controller_schedule() {
        let rc = RestartController { interval: 100 };
        assert!(!rc.due(0));
        assert!(!rc.due(99));
        assert!(rc.due(100));
        assert!(rc.due(500));
        let never = RestartController { interval: 0 };
        assert!(!never.due(100));
    }
}
