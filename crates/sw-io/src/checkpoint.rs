//! Checkpoint / restart.
//!
//! "The toughest challenge comes from the checkpoints for restart. All the
//! wavefields required by the checkpoint aggregate to a size of 108 TB in
//! the 16-meter resolution case … therefore, we integrate the LZ4
//! compression to reduce the size for a smoother run." (§6.2)
//!
//! A [`Checkpoint`] carries every named wavefield (interior only — halos
//! are re-exchanged on restart), LZ4-compressed per field, with a
//! checksum so corrupted restarts are detected rather than silently
//! propagated.

use sw_compress::lz4;
use sw_grid::{Dims3, Field3};

/// Minimal little-endian cursor over a byte slice (replaces `bytes::Buf`;
/// the crate registry is unreachable in this build environment).
///
/// All `get_*` methods assume the caller checked `remaining()` first,
/// matching how the decoder below is written.
trait ReadLe {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_f64_le(&mut self) -> f64;
}

impl ReadLe for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().unwrap());
        self.advance(2);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.advance(8);
        v
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Serialization magic.
const MAGIC: u32 = 0x5351_4b31; // "SQK1"

/// Error decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Wrong magic or truncated header.
    BadHeader,
    /// LZ4 payload failed to decode.
    BadPayload,
    /// Checksum mismatch (corruption).
    Corrupt {
        /// Field whose checksum failed.
        field: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader => write!(f, "not a swquake checkpoint"),
            CheckpointError::BadPayload => write!(f, "LZ4 payload corrupt"),
            CheckpointError::Corrupt { field } => write!(f, "checksum mismatch in field {field}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A snapshot of the simulation state at one step.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Time-step index.
    pub step: u64,
    /// Simulated time, s.
    pub time: f64,
    /// Named wavefields (name, field).
    pub fields: Vec<(String, Field3)>,
}

fn checksum(data: &[f32]) -> u64 {
    // FNV-1a over the raw bits: cheap and order-sensitive.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl Checkpoint {
    /// Serialize: header, then per-field (name, dims, halo, checksum,
    /// LZ4(interior)).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.time.to_le_bytes());
        out.extend_from_slice(&(self.fields.len() as u32).to_le_bytes());
        for (name, field) in &self.fields {
            let interior = field.interior_to_vec();
            let compressed = lz4::compress_f32(&interior);
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            let d = field.dims();
            out.extend_from_slice(&(d.nx as u64).to_le_bytes());
            out.extend_from_slice(&(d.ny as u64).to_le_bytes());
            out.extend_from_slice(&(d.nz as u64).to_le_bytes());
            out.extend_from_slice(&(field.halo() as u32).to_le_bytes());
            out.extend_from_slice(&checksum(&interior).to_le_bytes());
            out.extend_from_slice(&(compressed.len() as u64).to_le_bytes());
            out.extend_from_slice(&compressed);
        }
        out
    }

    /// Deserialize and verify.
    pub fn decode(mut buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.remaining() < 24 || buf.get_u32_le() != MAGIC {
            return Err(CheckpointError::BadHeader);
        }
        let step = buf.get_u64_le();
        let time = buf.get_f64_le();
        let n = buf.get_u32_le() as usize;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err(CheckpointError::BadHeader);
            }
            let name_len = buf.get_u16_le() as usize;
            if buf.remaining() < name_len {
                return Err(CheckpointError::BadHeader);
            }
            let name = String::from_utf8_lossy(&buf[..name_len]).into_owned();
            buf.advance(name_len);
            if buf.remaining() < 8 * 3 + 4 + 8 + 8 {
                return Err(CheckpointError::BadHeader);
            }
            let dims = Dims3::new(
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
                buf.get_u64_le() as usize,
            );
            let halo = buf.get_u32_le() as usize;
            let sum = buf.get_u64_le();
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(CheckpointError::BadHeader);
            }
            let interior =
                lz4::decompress_f32(&buf[..len]).map_err(|_| CheckpointError::BadPayload)?;
            buf.advance(len);
            if interior.len() != dims.len() {
                return Err(CheckpointError::BadPayload);
            }
            if checksum(&interior) != sum {
                return Err(CheckpointError::Corrupt { field: name });
            }
            let mut field = Field3::new(dims, halo);
            field.interior_from_slice(&interior);
            fields.push((name, field));
        }
        Ok(Self { step, time, fields })
    }

    /// Uncompressed payload size in bytes (the "108 TB" accounting).
    pub fn raw_bytes(&self) -> usize {
        self.fields.iter().map(|(_, f)| f.dims().bytes_f32()).sum()
    }

    /// Write to a file.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Read from a file.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<Result<Self, CheckpointError>> {
        Ok(Self::decode(&std::fs::read(path)?))
    }
}

/// Decides when to checkpoint ("Restart Controller" of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartController {
    /// Steps between checkpoints (0 = never).
    pub interval: u64,
}

impl RestartController {
    /// True when `step` is a checkpoint step.
    pub fn due(&self, step: u64) -> bool {
        self.interval > 0 && step > 0 && step.is_multiple_of(self.interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let d = Dims3::new(6, 5, 7);
        let mut u = Field3::new(d, 2);
        u.fill_with(|x, y, z| ((x + 2 * y + 3 * z) as f32 * 0.01).sin());
        let mut xx = Field3::new(d, 2);
        xx.fill_with(|x, y, z| (x * y) as f32 - z as f32);
        Checkpoint { step: 4200, time: 12.75, fields: vec![("u".into(), u), ("xx".into(), xx)] }
    }

    #[test]
    fn roundtrip_is_exact() {
        let c = sample();
        let bytes = c.encode();
        let back = Checkpoint::decode(&bytes).unwrap();
        assert_eq!(back.step, 4200);
        assert_eq!(back.time, 12.75);
        assert_eq!(back.fields.len(), 2);
        for ((an, af), (bn, bf)) in c.fields.iter().zip(&back.fields) {
            assert_eq!(an, bn);
            assert_eq!(af.max_abs_diff(bf), 0.0, "field {an} must be bit-exact");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().encode().to_vec();
        bytes[0] ^= 0xff;
        assert_eq!(Checkpoint::decode(&bytes), Err(CheckpointError::BadHeader));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode().to_vec();
        // Flip a byte inside the first compressed payload (past the header).
        let mut corrupt = bytes.clone();
        let idx = bytes.len() - 9;
        corrupt[idx] ^= 0x01;
        let r = Checkpoint::decode(&corrupt);
        assert!(r.is_err(), "corruption must not decode cleanly");
    }

    #[test]
    fn truncation_is_an_error() {
        let bytes = sample().encode();
        for cut in [3, 20, bytes.len() / 2] {
            assert!(Checkpoint::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn compression_shrinks_smooth_wavefields() {
        let c = sample();
        let encoded = c.encode().len();
        // Smooth fields leave plenty of byte-level redundancy.
        assert!(encoded < c.raw_bytes() * 2, "encoded {encoded} raw {}", c.raw_bytes());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("swquake_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.swq");
        let c = sample();
        c.write_file(&path).unwrap();
        let back = Checkpoint::read_file(&path).unwrap().unwrap();
        assert_eq!(back.step, c.step);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restart_controller_schedule() {
        let rc = RestartController { interval: 100 };
        assert!(!rc.due(0));
        assert!(!rc.due(99));
        assert!(rc.due(100));
        assert!(rc.due(500));
        let never = RestartController { interval: 0 };
        assert!(!never.due(100));
    }
}
