//! Durable checkpoint store: a directory of atomic checkpoint files plus
//! a versioned manifest tracking generations.
//!
//! The layout under the checkpoint directory is
//!
//! ```text
//! MANIFEST.json            versioned index of committed generations
//! ckpt-00000120-r0.swq     rank 0's image for the step-120 generation
//! ckpt-00000120-r1.swq     rank 1's image …
//! ```
//!
//! A *generation* is one step's images for every rank. Ranks stage their
//! files first (each via the atomic temp-fsync-rename protocol of
//! [`crate::checkpoint::write_atomic`]); only after all ranks have
//! written does one caller commit the generation by atomically rewriting
//! the manifest. The manifest is therefore the single source of truth: a
//! crash between file writes and the commit leaves a generation that is
//! simply never referenced, and a crash mid-manifest-write leaves the
//! previous manifest.
//!
//! Retention keeps the newest `keep` generations; on restore,
//! [`CheckpointStore::restore_newest_valid`] walks generations newest
//! first, fully decoding every rank image, and falls back past any
//! generation that fails validation — returning which ones were skipped
//! and why so the caller can surface a health Warning instead of dying.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::checkpoint::{self, Checkpoint, ReadError};
use sw_fault::{FaultHook, FaultKind};

/// On-disk manifest schema version (bump on any layout change; the
/// golden-file test pins the serialized form).
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// Manifest file name inside the checkpoint directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Default generations retained.
pub const DEFAULT_KEEP: usize = 3;

/// One committed checkpoint generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestGeneration {
    /// Step the generation snapshots.
    pub step: u64,
    /// Simulated time at `step`, s.
    pub time: f64,
    /// Number of ranks (and files).
    pub ranks: usize,
    /// File names relative to the checkpoint directory, rank order.
    pub files: Vec<String>,
    /// Total encoded bytes across the generation's files.
    pub encoded_bytes: u64,
}

/// The versioned checkpoint index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Schema version of this file.
    pub schema_version: u32,
    /// Retention: newest generations kept.
    pub keep: usize,
    /// Committed generations, oldest first.
    pub generations: Vec<ManifestGeneration>,
}

/// Error writing one rank's checkpoint image.
#[derive(Debug)]
pub enum WriteError {
    /// The underlying write failed (or a fault plan injected a failure).
    Io(std::io::Error),
    /// An injected mid-write kill: the temp file was staged but never
    /// renamed, exactly as if the process died between the two.
    Killed,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Io(e) => write!(f, "checkpoint write failed: {e}"),
            WriteError::Killed => write!(f, "killed mid-checkpoint-write (injected)"),
        }
    }
}

impl std::error::Error for WriteError {}

/// Error opening or updating the store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io {
        /// Path involved.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The manifest is missing, unparsable, or the wrong schema.
    BadManifest {
        /// Manifest path.
        path: PathBuf,
        /// What's wrong.
        detail: String,
    },
    /// The manifest's generations expect a different rank count than
    /// the resuming run provides.
    RankMismatch {
        /// Ranks recorded in the newest generation.
        manifest: usize,
        /// Ranks the resuming run has.
        run: usize,
    },
    /// Every committed generation failed validation (or none exist).
    NoValidGeneration {
        /// Generations that were tried and why each was rejected.
        tried: Vec<(u64, String)>,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "checkpoint store I/O error at {}: {source}", path.display())
            }
            StoreError::BadManifest { path, detail } => {
                write!(f, "bad checkpoint manifest {}: {detail}", path.display())
            }
            StoreError::RankMismatch { manifest, run } => write!(
                f,
                "checkpoint store holds {manifest}-rank generations but the run has {run} ranks"
            ),
            StoreError::NoValidGeneration { tried } => {
                if tried.is_empty() {
                    write!(f, "checkpoint store has no committed generations to resume from")
                } else {
                    write!(f, "no valid checkpoint generation (tried ")?;
                    for (i, (step, why)) in tried.iter().enumerate() {
                        if i > 0 {
                            write!(f, "; ")?;
                        }
                        write!(f, "step {step}: {why}")?;
                    }
                    write!(f, ")")
                }
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// A generation restored from disk, plus what had to be skipped to
/// reach it.
#[derive(Debug)]
pub struct RestoredGeneration {
    /// Step of the restored generation.
    pub step: u64,
    /// Simulated time at `step`, s.
    pub time: f64,
    /// Decoded per-rank checkpoints, rank order.
    pub checkpoints: Vec<Checkpoint>,
    /// Newer generations skipped as invalid: `(step, reason)` — surface
    /// these as Warnings, they mean the fallback path actually fired.
    pub skipped: Vec<(u64, String)>,
}

/// Durable checkpoint store rooted at one directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
    manifest: Mutex<Manifest>,
    fault: FaultHook,
}

fn io_err(path: &Path, source: std::io::Error) -> StoreError {
    StoreError::Io { path: path.to_path_buf(), source }
}

impl CheckpointStore {
    /// Start a fresh store: create the directory, clear any checkpoint
    /// files and staging leftovers from prior runs, write an empty
    /// manifest.
    pub fn create(dir: &Path, keep: usize) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let store = Self {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
            manifest: Mutex::new(Manifest {
                schema_version: MANIFEST_SCHEMA_VERSION,
                keep: keep.max(1),
                generations: Vec::new(),
            }),
            fault: None,
        };
        store.sweep(true)?;
        store.persist_manifest()?;
        Ok(store)
    }

    /// Open an existing store for resume: the manifest must be present
    /// and valid. Staging leftovers from a crashed writer are swept;
    /// committed checkpoint files are untouched.
    pub fn open(dir: &Path, keep: usize) -> Result<Self, StoreError> {
        let path = dir.join(MANIFEST_NAME);
        let text = std::fs::read_to_string(&path).map_err(|source| {
            if source.kind() == std::io::ErrorKind::NotFound {
                StoreError::BadManifest {
                    path: path.clone(),
                    detail: "manifest not found (was this run checkpointed?)".into(),
                }
            } else {
                io_err(&path, source)
            }
        })?;
        let manifest: Manifest = serde_json::from_str(&text)
            .map_err(|e| StoreError::BadManifest { path: path.clone(), detail: e.to_string() })?;
        if manifest.schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(StoreError::BadManifest {
                path,
                detail: format!(
                    "schema_version {} (this build reads {MANIFEST_SCHEMA_VERSION})",
                    manifest.schema_version
                ),
            });
        }
        let store = Self {
            dir: dir.to_path_buf(),
            keep: keep.max(1),
            manifest: Mutex::new(manifest),
            fault: None,
        };
        store.sweep(false)?;
        Ok(store)
    }

    /// Attach a fault-injection plan (drills only; `None` in production).
    pub fn with_fault(mut self, fault: FaultHook) -> Self {
        self.fault = fault;
        self
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Manifest path inside `dir`.
    pub fn manifest_path(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_NAME)
    }

    /// Snapshot of the current manifest.
    pub fn manifest(&self) -> Manifest {
        self.manifest.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Conventional file name for `(step, rank)`.
    pub fn rank_file_name(step: u64, rank: usize) -> String {
        format!("ckpt-{step:08}-r{rank}.swq")
    }

    fn rank_path(&self, step: u64, rank: usize) -> PathBuf {
        self.dir.join(Self::rank_file_name(step, rank))
    }

    /// Remove staging leftovers (`*.tmp`), and with `all_checkpoints`
    /// also any `ckpt-*.swq` from prior runs (fresh-start semantics).
    fn sweep(&self, all_checkpoints: bool) -> Result<(), StoreError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let stale_tmp = name.ends_with(".tmp");
            let stale_ckpt = all_checkpoints && name.starts_with("ckpt-") && name.ends_with(".swq");
            if stale_tmp || stale_ckpt {
                std::fs::remove_file(entry.path()).map_err(|e| io_err(&entry.path(), e))?;
            }
        }
        Ok(())
    }

    /// Write one rank's image for the step-`step` generation. Atomic on
    /// the real path; any fault the plan schedules for `(step, rank)` is
    /// injected here. Returns the encoded size in bytes.
    pub fn write_rank(&self, step: u64, rank: usize, ckpt: &Checkpoint) -> Result<u64, WriteError> {
        let mut bytes = ckpt.encode();
        let path = self.rank_path(step, rank);
        if let Some(plan) = &self.fault {
            if let Some(event) = plan.write_fault(step, rank) {
                match event.kind {
                    FaultKind::IoError => {
                        return Err(WriteError::Io(std::io::Error::other(format!(
                            "injected I/O error at step {step} rank {rank}"
                        ))));
                    }
                    FaultKind::KillMidWrite => {
                        // Stage the temp file, then "die": the rename
                        // never happens, so the generation is never
                        // visible and the previous one stays valid.
                        let _ = checkpoint::stage_temp(&path, &bytes);
                        return Err(WriteError::Killed);
                    }
                    _ => {
                        // torn / flip: commit the damaged image so the
                        // restore-side fallback has something to catch.
                        plan.corrupt(&event, step, rank, &mut bytes);
                    }
                }
            }
        }
        checkpoint::write_atomic(&path, &bytes).map_err(WriteError::Io)?;
        Ok(bytes.len() as u64)
    }

    /// Commit the step-`step` generation after all `ranks` images are on
    /// disk: append it to the manifest, enforce retention, atomically
    /// rewrite the manifest. In multirank runs exactly one rank calls
    /// this, after a barrier.
    pub fn commit_generation(&self, step: u64, time: f64, ranks: usize) -> Result<(), StoreError> {
        let files: Vec<String> = (0..ranks).map(|r| Self::rank_file_name(step, r)).collect();
        let mut encoded_bytes = 0u64;
        for f in &files {
            let path = self.dir.join(f);
            encoded_bytes += std::fs::metadata(&path).map_err(|e| io_err(&path, e))?.len();
        }
        let mut expired: Vec<ManifestGeneration> = Vec::new();
        {
            let mut m = self.manifest.lock().unwrap_or_else(|p| p.into_inner());
            m.generations.push(ManifestGeneration { step, time, ranks, files, encoded_bytes });
            while m.generations.len() > self.keep {
                expired.push(m.generations.remove(0));
            }
        }
        self.persist_manifest()?;
        // Only delete expired files after the manifest no longer
        // references them: a crash in between leaves unreferenced files,
        // never dangling references.
        for gen in expired {
            for f in gen.files {
                std::fs::remove_file(self.dir.join(f)).ok();
            }
        }
        Ok(())
    }

    fn persist_manifest(&self) -> Result<(), StoreError> {
        let path = Self::manifest_path(&self.dir);
        let text = {
            let m = self.manifest.lock().unwrap_or_else(|p| p.into_inner());
            serde_json::to_string_pretty(&*m).expect("manifest serializes")
        };
        checkpoint::write_atomic(&path, text.as_bytes()).map_err(|e| io_err(&path, e))
    }

    /// Restore the newest generation whose every rank image decodes
    /// cleanly and matches the generation's step; invalid generations
    /// are skipped (recorded in [`RestoredGeneration::skipped`]) and the
    /// walk falls back to older ones. All decoding happens here, before
    /// any rank thread starts, so multirank resumes agree on one
    /// generation by construction.
    pub fn restore_newest_valid(&self, ranks: usize) -> Result<RestoredGeneration, StoreError> {
        let generations = {
            let m = self.manifest.lock().unwrap_or_else(|p| p.into_inner());
            m.generations.clone()
        };
        if let Some(newest) = generations.last() {
            if newest.ranks != ranks {
                return Err(StoreError::RankMismatch { manifest: newest.ranks, run: ranks });
            }
        }
        let mut skipped: Vec<(u64, String)> = Vec::new();
        for gen in generations.iter().rev() {
            match self.load_generation(gen) {
                Ok(checkpoints) => {
                    return Ok(RestoredGeneration {
                        step: gen.step,
                        time: gen.time,
                        checkpoints,
                        skipped,
                    });
                }
                Err(reason) => skipped.push((gen.step, reason)),
            }
        }
        Err(StoreError::NoValidGeneration { tried: skipped })
    }

    /// Decode every rank image of one generation, or say why not.
    fn load_generation(&self, gen: &ManifestGeneration) -> Result<Vec<Checkpoint>, String> {
        let mut checkpoints = Vec::with_capacity(gen.files.len());
        for (rank, file) in gen.files.iter().enumerate() {
            let path = self.dir.join(file);
            let ckpt = Checkpoint::read_file(&path).map_err(|e| match e {
                ReadError::Io { source, .. } => format!("rank {rank}: {source}"),
                ReadError::Decode { error, .. } => format!("rank {rank}: {error}"),
            })?;
            if ckpt.step != gen.step {
                return Err(format!(
                    "rank {rank}: image is for step {} but the manifest says {}",
                    ckpt.step, gen.step
                ));
            }
            checkpoints.push(ckpt);
        }
        Ok(checkpoints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_fault::FaultPlan;
    use sw_grid::{Dims3, Field3};

    fn ckpt(step: u64) -> Checkpoint {
        let d = Dims3::new(4, 3, 5);
        let mut u = Field3::new(d, 2);
        u.fill_with(|x, y, z| (x + y + z) as f32 + step as f32);
        Checkpoint {
            step,
            time: step as f64 * 0.01,
            flops: step as f64 * 1e6,
            fields: vec![("u".into(), u)],
            seismograms: Vec::new(),
            pgv: None,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("swquake_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lifecycle_commit_restore_retention() {
        let dir = tmpdir("lifecycle");
        let store = CheckpointStore::create(&dir, 2).unwrap();
        for step in [10u64, 20, 30] {
            store.write_rank(step, 0, &ckpt(step)).unwrap();
            store.commit_generation(step, step as f64 * 0.01, 1).unwrap();
        }
        let m = store.manifest();
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);
        assert_eq!(
            m.generations.iter().map(|g| g.step).collect::<Vec<_>>(),
            vec![20, 30],
            "keep=2 retains only the newest two generations"
        );
        assert!(
            !dir.join(CheckpointStore::rank_file_name(10, 0)).exists(),
            "retention deletes expired generation files"
        );
        let restored = store.restore_newest_valid(1).unwrap();
        assert_eq!(restored.step, 30);
        assert!(restored.skipped.is_empty());
        assert_eq!(restored.checkpoints[0].fields[0].1.get(0, 0, 0), 30.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_resumes_the_manifest_and_sweeps_tmp() {
        let dir = tmpdir("reopen");
        let store = CheckpointStore::create(&dir, 3).unwrap();
        store.write_rank(50, 0, &ckpt(50)).unwrap();
        store.commit_generation(50, 0.5, 1).unwrap();
        // A crashed writer's staging leftovers…
        std::fs::write(dir.join("ckpt-00000060-r0.swq.tmp"), b"partial").unwrap();
        drop(store);
        let reopened = CheckpointStore::open(&dir, 3).unwrap();
        assert!(!dir.join("ckpt-00000060-r0.swq.tmp").exists(), "open sweeps .tmp strays");
        assert_eq!(reopened.restore_newest_valid(1).unwrap().step, 50);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_generation_falls_back() {
        let dir = tmpdir("fallback");
        let store = CheckpointStore::create(&dir, 3).unwrap();
        for step in [10u64, 20] {
            store.write_rank(step, 0, &ckpt(step)).unwrap();
            store.commit_generation(step, 0.0, 1).unwrap();
        }
        // Flip a byte in the newest image.
        let newest = dir.join(CheckpointStore::rank_file_name(20, 0));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&newest, bytes).unwrap();
        let restored = store.restore_newest_valid(1).unwrap();
        assert_eq!(restored.step, 10, "falls back past the corrupt newest generation");
        assert_eq!(restored.skipped.len(), 1);
        assert_eq!(restored.skipped[0].0, 20);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_corrupt_is_a_classified_error() {
        let dir = tmpdir("exhausted");
        let store = CheckpointStore::create(&dir, 3).unwrap();
        store.write_rank(10, 0, &ckpt(10)).unwrap();
        store.commit_generation(10, 0.1, 1).unwrap();
        std::fs::write(dir.join(CheckpointStore::rank_file_name(10, 0)), b"garbage").unwrap();
        match store.restore_newest_valid(1) {
            Err(StoreError::NoValidGeneration { tried }) => assert_eq!(tried.len(), 1),
            other => panic!("expected NoValidGeneration, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rank_mismatch_is_rejected() {
        let dir = tmpdir("ranks");
        let store = CheckpointStore::create(&dir, 3).unwrap();
        store.write_rank(10, 0, &ckpt(10)).unwrap();
        store.commit_generation(10, 0.1, 1).unwrap();
        assert!(matches!(
            store.restore_newest_valid(4),
            Err(StoreError::RankMismatch { manifest: 1, run: 4 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_without_manifest_is_a_clear_error() {
        let dir = tmpdir("nomanifest");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(CheckpointStore::open(&dir, 3), Err(StoreError::BadManifest { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_ioerr_torn_and_killwrite() {
        let dir = tmpdir("faults");
        let plan = FaultPlan::parse("seed=3;ioerr@10;torn@20:frac=0.5;killwrite@30").unwrap();
        let store =
            CheckpointStore::create(&dir, 5).unwrap().with_fault(Some(std::sync::Arc::new(plan)));

        assert!(matches!(store.write_rank(10, 0, &ckpt(10)), Err(WriteError::Io(_))));
        assert!(!dir.join(CheckpointStore::rank_file_name(10, 0)).exists());

        // Torn write commits a truncated image; restore must fall back.
        store.write_rank(15, 0, &ckpt(15)).unwrap();
        store.commit_generation(15, 0.15, 1).unwrap();
        store.write_rank(20, 0, &ckpt(20)).unwrap();
        store.commit_generation(20, 0.2, 1).unwrap();
        let restored = store.restore_newest_valid(1).unwrap();
        assert_eq!(restored.step, 15);
        assert_eq!(restored.skipped.len(), 1);

        // Kill mid-write stages the temp but never renames.
        assert!(matches!(store.write_rank(30, 0, &ckpt(30)), Err(WriteError::Killed)));
        assert!(!dir.join(CheckpointStore::rank_file_name(30, 0)).exists());
        assert!(
            checkpoint::temp_path(&dir.join(CheckpointStore::rank_file_name(30, 0))).exists(),
            "the staged temp file is the crash's only trace"
        );
        // …and a reopen sweeps it.
        drop(store);
        let reopened = CheckpointStore::open(&dir, 5).unwrap();
        assert!(!checkpoint::temp_path(&dir.join(CheckpointStore::rank_file_name(30, 0))).exists());
        assert_eq!(reopened.restore_newest_valid(1).unwrap().step, 15);
        std::fs::remove_dir_all(&dir).ok();
    }
}
