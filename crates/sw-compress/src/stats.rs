//! Per-array statistics from the coarse pre-run (Fig. 5a).
//!
//! "Part (a) is a preprocessing step, which performs a complete simulation
//! with a coarser resolution, so as to generate the statistics (such as the
//! maximum and minimum values of variables), for the high-resolution
//! simulations afterwards to utilize in their compression processes."
//!
//! [`FieldStats`] records the min/max values and the binary exponent range
//! of one array; the adaptive codec (method 2) sizes its exponent field from
//! the exponent range, and the normalization codec (method 3) uses min/max.

use sw_grid::Field3;

/// Min/max and exponent-range statistics of one simulation array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldStats {
    /// Smallest value observed.
    pub min: f32,
    /// Largest value observed.
    pub max: f32,
    /// Smallest unbiased binary exponent among nonzero values.
    pub exp_min: i32,
    /// Largest unbiased binary exponent among nonzero values.
    pub exp_max: i32,
    /// Number of values observed.
    pub count: u64,
}

impl FieldStats {
    /// Empty statistics (identity for [`FieldStats::merge`]).
    pub fn empty() -> Self {
        Self {
            min: f32::INFINITY,
            max: f32::NEG_INFINITY,
            exp_min: i32::MAX,
            exp_max: i32::MIN,
            count: 0,
        }
    }

    /// Record one value.
    pub fn observe(&mut self, v: f32) {
        if !v.is_finite() {
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if v != 0.0 {
            let e = unbiased_exponent(v);
            self.exp_min = self.exp_min.min(e);
            self.exp_max = self.exp_max.max(e);
        }
        self.count += 1;
    }

    /// Record a whole slice.
    pub fn observe_slice(&mut self, vs: &[f32]) {
        for &v in vs {
            self.observe(v);
        }
    }

    /// Statistics of a slice.
    pub fn of_slice(vs: &[f32]) -> Self {
        let mut s = Self::empty();
        s.observe_slice(vs);
        s
    }

    /// Statistics of a field's interior (the coarse-run collection step).
    pub fn of_field(f: &Field3) -> Self {
        let mut s = Self::empty();
        let d = f.dims();
        for x in 0..d.nx {
            for y in 0..d.ny {
                s.observe_slice(f.row(x, y));
            }
        }
        s
    }

    /// Parallel [`FieldStats::of_field`]: one task per x plane, partial
    /// statistics merged in plane order. Exact — min/max/exponent updates
    /// are order-independent and [`FieldStats::merge`] is associative, so
    /// the result is identical to the serial scan for any thread count.
    pub fn of_field_par(f: &Field3) -> Self {
        use rayon::prelude::*;
        let d = f.dims();
        (0..d.nx)
            .into_par_iter()
            .map(|x| {
                let mut s = Self::empty();
                for y in 0..d.ny {
                    s.observe_slice(f.row(x, y));
                }
                s
            })
            .reduce(Self::empty, |a, b| a.merge(&b))
    }

    /// Merge with statistics gathered elsewhere (across MPI ranks).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
            exp_min: self.exp_min.min(other.exp_min),
            exp_max: self.exp_max.max(other.exp_max),
            count: self.count + other.count,
        }
    }

    /// Value range `max - min` (0 when empty or constant).
    pub fn range(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.max - self.min).max(0.0)
        }
    }

    /// Number of distinct binary exponents observed (`Ne` of Fig. 5d).
    pub fn exponent_span(&self) -> u32 {
        if self.exp_max < self.exp_min {
            0
        } else {
            (self.exp_max - self.exp_min + 1) as u32
        }
    }

    /// Scale the recorded range by a positive factor (used when remapping
    /// statistics between resolutions: quantities that scale with cell
    /// volume, like the injected stress glut, grow by `(dx_c/dx_f)^3`
    /// when the mesh is refined).
    pub fn scaled(&self, factor: f32) -> Self {
        assert!(factor > 0.0);
        if self.count == 0 {
            return *self;
        }
        let shift = factor.log2().ceil() as i32;
        Self {
            min: self.min * factor,
            max: self.max * factor,
            exp_min: self.exp_min.saturating_add(shift.min(0)),
            exp_max: self.exp_max.saturating_add(shift.max(0)),
            count: self.count,
        }
    }

    /// Widen the range by a safety factor — the dynamic range of the fine
    /// run can slightly exceed what the coarse run saw.
    pub fn widened(&self, factor: f32) -> Self {
        assert!(factor >= 1.0);
        if self.count == 0 {
            return *self;
        }
        let mid = 0.5 * (self.min + self.max);
        let half = 0.5 * self.range() * factor;
        let mut s = *self;
        s.min = mid - half;
        s.max = mid + half;
        s
    }
}

impl Default for FieldStats {
    fn default() -> Self {
        Self::empty()
    }
}

/// Unbiased binary exponent of a nonzero finite f32 (subnormals report the
/// exponent of their leading bit).
pub fn unbiased_exponent(v: f32) -> i32 {
    debug_assert!(v != 0.0 && v.is_finite());
    let bits = v.to_bits();
    let exp = ((bits >> 23) & 0xff) as i32;
    if exp == 0 {
        // Subnormal: exponent of the highest set mantissa bit.
        let frac = bits & 0x007f_ffff;
        -126 - (frac.leading_zeros() as i32 - 9) - 1
    } else {
        exp - 127
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sw_grid::Dims3;

    #[test]
    fn observe_and_range() {
        let s = FieldStats::of_slice(&[1.0, -3.0, 2.5, 0.0]);
        assert_eq!(s.min, -3.0);
        assert_eq!(s.max, 2.5);
        assert_eq!(s.range(), 5.5);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn exponent_span_counts_binades() {
        // 1.0 (e=0), 2.0 (e=1), 7.9 (e=2) → span 3.
        let s = FieldStats::of_slice(&[1.0, 2.0, 7.9]);
        assert_eq!(s.exponent_span(), 3);
        assert_eq!(s.exp_min, 0);
        assert_eq!(s.exp_max, 2);
    }

    #[test]
    fn zeros_do_not_affect_exponents() {
        let s = FieldStats::of_slice(&[0.0, 0.0, 4.0]);
        assert_eq!(s.exponent_span(), 1);
        assert_eq!(s.min, 0.0);
    }

    #[test]
    fn unbiased_exponent_basics() {
        assert_eq!(unbiased_exponent(1.0), 0);
        assert_eq!(unbiased_exponent(2.0), 1);
        assert_eq!(unbiased_exponent(0.5), -1);
        assert_eq!(unbiased_exponent(-1.5e3), 10);
        // Smallest normal.
        assert_eq!(unbiased_exponent(f32::MIN_POSITIVE), -126);
        // A subnormal one binade below.
        assert_eq!(unbiased_exponent(f32::MIN_POSITIVE / 2.0), -127);
    }

    #[test]
    fn merge_combines_ranges() {
        let a = FieldStats::of_slice(&[1.0, 2.0]);
        let b = FieldStats::of_slice(&[-5.0, 0.25]);
        let m = a.merge(&b);
        assert_eq!(m.min, -5.0);
        assert_eq!(m.max, 2.0);
        assert_eq!(m.count, 4);
        assert_eq!(m.exp_min, -2);
        assert_eq!(m.exp_max, 2);
    }

    #[test]
    fn of_field_scans_interior_only() {
        let mut f = Field3::new(Dims3::cube(3), 2);
        f.set_i(-1, 0, 0, 99.0); // halo value must be ignored
        f.set(1, 1, 1, 7.0);
        let s = FieldStats::of_field(&f);
        assert_eq!(s.max, 7.0);
        assert_eq!(s.count, 27);
    }

    #[test]
    fn widened_grows_symmetrically() {
        let s = FieldStats::of_slice(&[-1.0, 3.0]).widened(1.5);
        assert!((s.min - (-2.0)).abs() < 1e-6);
        assert!((s.max - 4.0).abs() < 1e-6);
    }

    #[test]
    fn scaled_shifts_range_and_exponents() {
        let s = FieldStats::of_slice(&[-1.0, 4.0]).scaled(8.0);
        assert_eq!(s.min, -8.0);
        assert_eq!(s.max, 32.0);
        assert_eq!(s.exp_max, 2 + 3, "exp_max shifted by log2(8)");
        assert_eq!(s.exp_min, 0, "exp_min not lowered by an upscale");
        let down = FieldStats::of_slice(&[-1.0, 4.0]).scaled(0.25);
        assert_eq!(down.max, 1.0);
        assert_eq!(down.exp_min, 0 - 2);
        // empty stats are unchanged
        assert_eq!(FieldStats::empty().scaled(8.0), FieldStats::empty());
    }

    #[test]
    fn infinities_are_ignored() {
        let mut s = FieldStats::empty();
        s.observe(f32::INFINITY);
        s.observe(f32::NAN);
        assert_eq!(s.count, 0);
        assert_eq!(s.range(), 0.0);
    }
}
