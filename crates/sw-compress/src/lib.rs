//! On-the-fly field compression (§6.5, Fig. 5) and the LZ4 checkpoint codec.
//!
//! The paper's compression scheme stores simulation fields as 16-bit values
//! in main memory and decompresses/recompresses them on the fly in the CPE
//! LDM, doubling both the effective memory capacity and the effective
//! bandwidth. Three lossy 32→16-bit codecs are used (Fig. 5d):
//!
//! 1. [`f16`](mod@f16) — IEEE 754 binary16 (1 sign / 5 exponent / 10 mantissa bits);
//! 2. [`adaptive`] — exponent width fitted to the array's recorded dynamic
//!    range, remaining bits spent on mantissa;
//! 3. [`norm`] — per-array affine normalization into `[1, 2)` so the
//!    exponent is constant and all 16 stored bits are mantissa (the
//!    production choice for most velocity and stress arrays).
//!
//! The per-array statistics the codecs need come from a coarse-resolution
//! pre-run ([`stats`], Fig. 5a). [`field`] wires a codec to a 3-D field with
//! the plane-by-plane decompress–compute–compress workflow of Fig. 5c.
//!
//! [`lz4`] is an independent *lossless* block codec, implemented from
//! scratch, used by the checkpoint/restart path (§6.2: "we integrate the LZ4
//! compression" to shrink the 108-TB restart wavefields).

pub mod adaptive;
pub mod calib;
pub mod errstats;
pub mod f16;
pub mod field;
pub mod lz4;
pub mod norm;
pub mod par;
pub mod plane;
pub mod stats;

pub use adaptive::AdaptiveCodec;
pub use calib::{calibrated_codec, max_abs_bucket, CodecCache};
pub use f16::{f16_to_f32, f32_to_f16, F16Codec};
pub use field::{Codec, CompressedField3};
pub use norm::NormCodec;
pub use plane::{value_bucket, EncodeStats, ResidentField3};
pub use stats::FieldStats;

/// Every lossy 16-bit codec compresses one f32 to one u16 and back.
pub trait Codec16 {
    /// Compress a single value.
    fn encode(&self, v: f32) -> u16;
    /// Decompress a single value.
    fn decode(&self, c: u16) -> f32;

    /// Worst-case absolute round-trip error for values inside the codec's
    /// declared domain.
    fn max_abs_error(&self) -> f32;

    /// Compress a slice into a preallocated buffer.
    fn encode_slice(&self, src: &[f32], dst: &mut [u16]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.encode(s);
        }
    }

    /// Decompress a slice into a preallocated buffer.
    fn decode_slice(&self, src: &[u16], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len());
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = self.decode(s);
        }
    }
}
