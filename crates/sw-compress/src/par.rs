//! Parallel codec loops (the CPE-pool analogue of Fig. 5c).
//!
//! On the Sunway port every (de)compression loop runs on the 64-CPE pool;
//! here the same loops fan out over the shared Rayon pool. Each element is
//! encoded/decoded independently by the same scalar codec call, so every
//! function in this module is bit-identical to its serial counterpart in
//! [`Codec16`] regardless of thread count or chunk boundaries.

use crate::Codec16;
use rayon::prelude::*;

/// Elements per parallel work unit. Large enough that the per-chunk
/// dispatch overhead vanishes, small enough that a 64³ field (≈280 K
/// padded elements) still splits into plenty of chunks.
pub const PAR_CHUNK: usize = 16 * 1024;

/// Parallel [`Codec16::encode_slice`].
pub fn encode_par<C: Codec16 + Sync>(codec: &C, src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len());
    src.par_chunks(PAR_CHUNK)
        .zip(dst.par_chunks_mut(PAR_CHUNK))
        .for_each(|(s, d)| codec.encode_slice(s, d));
}

/// Parallel [`Codec16::decode_slice`].
pub fn decode_par<C: Codec16 + Sync>(codec: &C, src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    src.par_chunks(PAR_CHUNK)
        .zip(dst.par_chunks_mut(PAR_CHUNK))
        .for_each(|(s, d)| codec.decode_slice(s, d));
}

/// Parallel in-place encode/decode round trip (the §6.5 16-bit inter-step
/// storage, simulated functionally).
pub fn roundtrip_par<C: Codec16 + Sync>(codec: &C, data: &mut [f32]) {
    data.par_chunks_mut(PAR_CHUNK).for_each(|chunk| {
        for v in chunk {
            *v = codec.decode(codec.encode(*v));
        }
    });
}

/// Parallel decode of `codes` into `data` (which holds the pre-encode
/// values), returning the maximum absolute round-trip error.
pub fn decode_max_err_par<C: Codec16 + Sync>(codec: &C, codes: &[u16], data: &mut [f32]) -> f64 {
    assert_eq!(codes.len(), data.len());
    data.par_chunks_mut(PAR_CHUNK)
        .zip(codes.par_chunks(PAR_CHUNK))
        .map(|(chunk, cs)| {
            let mut max_err = 0.0f64;
            for (v, &c) in chunk.iter_mut().zip(cs) {
                let decoded = codec.decode(c);
                let err = f64::from((decoded - *v).abs());
                if err > max_err {
                    max_err = err;
                }
                *v = decoded;
            }
            max_err
        })
        .reduce(|| 0.0, f64::max)
}

/// Parallel maximum absolute value of a slice (0 for an empty slice).
/// `max` is order-independent, so the chunked reduction is exact.
pub fn max_abs_par(vs: &[f32]) -> f32 {
    vs.par_chunks(PAR_CHUNK)
        .map(|chunk| chunk.iter().fold(0.0f32, |m, &v| m.max(v.abs())))
        .reduce(|| 0.0, f32::max)
}

/// Parallel interior maximum absolute value of a field — the exact
/// parallel counterpart of [`sw_grid::Field3::max_abs`] (one task per x
/// plane; NaNs are skipped by `f32::max`, as in the serial scan).
pub fn field_max_abs_par(f: &sw_grid::Field3) -> f32 {
    let d = f.dims();
    (0..d.nx)
        .into_par_iter()
        .map(|x| {
            let mut m = 0.0f32;
            for y in 0..d.ny {
                for &v in f.row(x, y) {
                    m = m.max(v.abs());
                }
            }
            m
        })
        .reduce(|| 0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveCodec, Codec, F16Codec, FieldStats, NormCodec};

    fn noisy(n: usize) -> Vec<f32> {
        (0..n).map(|i| (((i * 2_654_435_761) % 1_000_003) as f32 - 5e5) * 1e-4).collect()
    }

    fn codecs(data: &[f32]) -> Vec<Codec> {
        let stats = FieldStats::of_slice(data);
        vec![
            Codec::F16(F16Codec),
            Codec::Adaptive(AdaptiveCodec::from_stats(&stats)),
            Codec::Norm(NormCodec::from_stats(&stats)),
        ]
    }

    #[test]
    fn encode_decode_par_match_serial_bitwise() {
        let data = noisy(3 * PAR_CHUNK + 777);
        for codec in codecs(&data) {
            let mut ser_codes = vec![0u16; data.len()];
            codec.encode_slice(&data, &mut ser_codes);
            let mut par_codes = vec![0u16; data.len()];
            encode_par(&codec, &data, &mut par_codes);
            assert_eq!(ser_codes, par_codes);

            let mut ser_out = vec![0.0f32; data.len()];
            codec.decode_slice(&ser_codes, &mut ser_out);
            let mut par_out = vec![0.0f32; data.len()];
            decode_par(&codec, &par_codes, &mut par_out);
            assert_eq!(
                ser_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par_out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn roundtrip_par_matches_serial_bitwise() {
        let data = noisy(2 * PAR_CHUNK + 13);
        for codec in codecs(&data) {
            let mut serial = data.clone();
            for v in serial.iter_mut() {
                *v = codec.decode(codec.encode(*v));
            }
            let mut par = data.clone();
            roundtrip_par(&codec, &mut par);
            assert_eq!(
                serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                par.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn decode_max_err_par_matches_serial() {
        let data = noisy(PAR_CHUNK + 1);
        for codec in codecs(&data) {
            let mut codes = vec![0u16; data.len()];
            encode_par(&codec, &data, &mut codes);
            let mut serial_err = 0.0f64;
            let mut serial = data.clone();
            for (v, &c) in serial.iter_mut().zip(&codes) {
                let d = codec.decode(c);
                serial_err = serial_err.max(f64::from((d - *v).abs()));
                *v = d;
            }
            let mut par = data.clone();
            let par_err = decode_max_err_par(&codec, &codes, &mut par);
            assert_eq!(serial_err, par_err);
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn max_abs_par_matches_serial() {
        let data = noisy(5 * PAR_CHUNK + 3);
        let serial = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert_eq!(serial, max_abs_par(&data));
        assert_eq!(max_abs_par(&[]), 0.0);
    }

    #[test]
    fn field_max_abs_par_matches_serial() {
        let mut f = sw_grid::Field3::new(sw_grid::Dims3::new(9, 7, 11), 2);
        f.fill_with(|x, y, z| (x * 13 + y * 5 + z) as f32 - 40.0);
        f.set_i(-1, -1, -1, 1.0e9); // halo value must be ignored, as in max_abs
        assert_eq!(f.max_abs(), field_max_abs_par(&f));
    }
}
