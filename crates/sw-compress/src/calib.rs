//! Binade-bucket codec calibration, shared by the §6.5 per-step
//! round-trip path and the plane-granular resident store.
//!
//! A self-calibrating codec is a pure function of `(base codec, binade
//! bucket of the data's max-abs)` — never of run history — so a cached
//! build and a from-scratch build always agree. That purity, plus the
//! round-trip idempotence checked below, is what keeps the resident
//! store's checkpoint/restore cycle byte-exact.

use crate::field::Codec;
use crate::stats::unbiased_exponent;
use crate::{AdaptiveCodec, NormCodec};

/// Binade bucket of a finite max-abs (`i32::MIN` = all-zero data).
pub fn max_abs_bucket(max_abs: f32) -> i32 {
    if max_abs == 0.0 {
        i32::MIN
    } else {
        unbiased_exponent(max_abs)
    }
}

/// The self-calibrated codec for a binade bucket — a pure function of
/// `(base, bucket)`, so a cached build and a from-scratch build always
/// agree (what makes the cache transparent and restart-safe).
///
/// Both calibrations are chosen so every code the encoder can emit is a
/// *fixed point* of the round trip (`encode(decode(c)) == c`):
///
/// * `Norm` ranges are symmetric powers of two, so normalization and
///   denormalization are exact power-of-two scalings of ≤16-bit integers.
/// * `Adaptive` windows span exactly the 31 binades the 5-bit exponent
///   field can address, so no decodable code lands above `exp_max` where
///   re-encoding would clamp it.
///
/// Buckets are clamped away from the subnormal and overflow edges of f32
/// (where the scalings above would stop being exact); values beyond the
/// clamped window saturate or flush to zero with an absolute error far
/// below the codec's quantization step.
pub fn calibrated_codec(base: &Codec, bucket: i32) -> Codec {
    match base {
        Codec::Norm(_) => {
            if bucket == i32::MIN {
                Codec::Norm(NormCodec::new(0.0, 0.0))
            } else {
                // max_abs ∈ [2^e, 2^(e+1)): the symmetric range ±2^(e+1)
                // covers the whole bucket, so the codec is stable until
                // the bucket moves.
                let r = 2.0f32.powi(bucket.clamp(-120, 125) + 1);
                Codec::Norm(NormCodec::new(-r, r))
            }
        }
        Codec::Adaptive(_) => {
            if bucket == i32::MIN {
                *base
            } else {
                // Four binades of saturation headroom above the bucket
                // (the next steps sharpen pulses), 30 below it: span 31
                // binades + the zero code = exactly 2^5 exponent codes.
                let hi = bucket.clamp(-100, 123) + 4;
                Codec::Adaptive(AdaptiveCodec::new(hi - 30, hi))
            }
        }
        c => *c,
    }
}

/// A small cache of calibrated codecs keyed by binade bucket.
///
/// The resident store encodes one x-plane at a time; consecutive planes of
/// a smooth wavefield usually share a bucket, so the per-plane calibration
/// is almost always a cache hit instead of a codec build. The cache holds
/// at most one entry per distinct bucket the field ever visits.
#[derive(Debug, Clone)]
pub struct CodecCache {
    base: Codec,
    entries: Vec<(i32, Codec)>,
}

impl CodecCache {
    /// A cache deriving all codecs from `base`.
    pub fn new(base: Codec) -> Self {
        Self { base, entries: Vec::new() }
    }

    /// The base codec calibrations derive from.
    pub fn base(&self) -> &Codec {
        &self.base
    }

    /// The calibrated codec for `bucket`, built on first use.
    pub fn get(&mut self, bucket: i32) -> Codec {
        if let Some((_, c)) = self.entries.iter().find(|(b, _)| *b == bucket) {
            return *c;
        }
        let c = calibrated_codec(&self.base, bucket);
        self.entries.push((bucket, c));
        c
    }

    /// Number of distinct buckets built so far.
    pub fn built(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Codec16, FieldStats};

    #[test]
    fn bucket_of_zero_is_sentinel() {
        assert_eq!(max_abs_bucket(0.0), i32::MIN);
        assert_eq!(max_abs_bucket(1.0), 0);
        assert_eq!(max_abs_bucket(0.75), -1);
        assert_eq!(max_abs_bucket(1.0e-3), -10);
    }

    #[test]
    fn cache_is_transparent() {
        let empty = FieldStats::empty();
        for base in [Codec::paper_assignment("xx", &empty), Codec::paper_assignment("lam", &empty)]
        {
            let mut cache = CodecCache::new(base);
            for max_abs in [0.0f32, 1.0e-3, 8.0e-3, 0.5, 0.9, 0.0] {
                let b = max_abs_bucket(max_abs);
                assert_eq!(cache.get(b), calibrated_codec(&base, b));
            }
            assert_eq!(cache.built(), 4, "one build per distinct bucket");
        }
    }

    /// One round trip canonicalizes a code; after that it is a fixed point:
    /// `encode(decode(c))` is idempotent over all 65536 codes, for every
    /// codec family and representative buckets across the clamp range.
    /// This is the property that makes a decode→re-encode checkpoint
    /// cycle of resident-compressed state byte-exact.
    #[test]
    fn calibrated_roundtrip_is_idempotent_on_codes() {
        let empty = FieldStats::empty();
        for base in [
            Codec::paper_assignment("xx", &empty),  // Adaptive
            Codec::paper_assignment("lam", &empty), // Norm
            Codec::paper_assignment("u", &empty),   // F16 (passes through)
        ] {
            for bucket in [i32::MIN, -140, -40, -10, -1, 0, 1, 13, 100, 127] {
                let codec = calibrated_codec(&base, bucket);
                for code in 0..=u16::MAX {
                    let c1 = codec.encode(codec.decode(code));
                    let c2 = codec.encode(codec.decode(c1));
                    assert_eq!(
                        c2, c1,
                        "{codec:?} bucket {bucket}: code {code:#06x} → {c1:#06x} → {c2:#06x}"
                    );
                }
            }
        }
    }

    /// Every code the encoder emits for a finite in-window value is already
    /// canonical (`encode(decode(encode(v))) == encode(v)`).
    #[test]
    fn encoded_values_are_already_canonical() {
        let empty = FieldStats::empty();
        for base in [Codec::paper_assignment("xx", &empty), Codec::paper_assignment("lam", &empty)]
        {
            for bucket in [-40, 0, 13] {
                let codec = calibrated_codec(&base, bucket);
                let scale = 2.0f32.powi(bucket);
                let mut v = -2.0 * scale;
                while v <= 2.0 * scale {
                    let c = codec.encode(v);
                    assert_eq!(codec.encode(codec.decode(c)), c, "{codec:?} v={v}");
                    v += 0.0173 * scale;
                }
            }
        }
    }
}
