//! Method (2) of Fig. 5d: adaptive exponent width.
//!
//! "Method (2) determines the required exponent bit-width according to the
//! recorded maximum dynamic range in the first part, and uses the rest bits
//! for mantissa. Method (2) assures the coverage of the full dynamic range,
//! and can reserve more bits for the mantissa parts of variables with a
//! small dynamic range. The only disadvantage is the relatively high
//! computational cost." (`Ne = ceil(log2(Emax − Emin))`, `Nf = 15 − Ne`.)
//!
//! Layout: 1 sign bit, `Ne` exponent bits, `15 − Ne` mantissa bits. The
//! all-zero exponent code is reserved for zero (and magnitudes below the
//! smallest recorded binade, which flush to zero), so the usable exponent
//! codes are `1 ..= 2^Ne − 1`.

use crate::stats::{unbiased_exponent, FieldStats};
use crate::Codec16;

/// The adaptive-exponent codec, parameterized by an array's recorded
/// exponent range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveCodec {
    exp_min: i32,
    exp_max: i32,
    /// Exponent field width in bits.
    pub exp_bits: u32,
    /// Mantissa field width in bits.
    pub mant_bits: u32,
}

impl AdaptiveCodec {
    /// Build from an exponent range `[exp_min, exp_max]` (unbiased).
    pub fn new(exp_min: i32, exp_max: i32) -> Self {
        assert!(exp_max >= exp_min, "empty exponent range");
        // +1 binade for the range itself, +1 code reserved for zero.
        let span = (exp_max - exp_min + 2) as u32;
        let exp_bits = 32 - (span - 1).leading_zeros();
        assert!(exp_bits <= 8, "dynamic range too wide for a 16-bit format");
        Self { exp_min, exp_max, exp_bits, mant_bits: 15 - exp_bits }
    }

    /// Build from coarse-run statistics.
    ///
    /// The recorded `exp_min` is clamped to 30 binades below `exp_max`:
    /// values smaller than ~1e-9 of the array's peak carry no signal, and
    /// covering them would spend exponent bits that are far more valuable
    /// as mantissa precision (the error that accumulates over thousands
    /// of decompress–compute–compress steps is the *relative* one).
    pub fn from_stats(stats: &FieldStats) -> Self {
        if stats.exponent_span() == 0 {
            // Array was identically zero in the coarse run; give it one
            // binade around 1.0 so fine-run noise still encodes.
            Self::new(0, 0)
        } else {
            // Four binades of headroom above the recorded maximum: the
            // fine run resolves sharper pulses than the coarse pass, and
            // saturation distorts far more than a coarser quantum.
            let hi = stats.exp_max + 4;
            Self::new(stats.exp_min.max(hi - 29), hi)
        }
    }
}

impl Codec16 for AdaptiveCodec {
    fn encode(&self, v: f32) -> u16 {
        if v == 0.0 || !v.is_finite() {
            return if v.is_sign_negative() { 0x8000 } else { 0 };
        }
        let sign = if v < 0.0 { 0x8000u16 } else { 0 };
        let e = unbiased_exponent(v);
        if e < self.exp_min {
            return sign; // below the recorded range: flush to zero
        }
        let e = e.min(self.exp_max); // clamp above (saturate)
        let code = (e - self.exp_min + 1) as u16;
        // Extract the top `mant_bits` of the 23-bit mantissa, rounding.
        let bits = v.abs().to_bits();
        let frac = bits & 0x007f_ffff;
        let shift = 23 - self.mant_bits;
        let mut mant = frac >> shift;
        let rem = frac & ((1u32 << shift) - 1);
        if e == unbiased_exponent(v) && rem >= (1u32 << (shift - 1)) {
            mant += 1;
            if mant >> self.mant_bits != 0 {
                // Carry into the exponent.
                mant = 0;
                let code = (code + 1).min((1u16 << self.exp_bits) - 1);
                return sign | (code << self.mant_bits) | mant as u16;
            }
        }
        sign | (code << self.mant_bits) | mant as u16
    }

    fn decode(&self, c: u16) -> f32 {
        let sign = if c & 0x8000 != 0 { -1.0f32 } else { 1.0 };
        let body = c & 0x7fff;
        let code = body >> self.mant_bits;
        if code == 0 {
            return 0.0 * sign;
        }
        let e = self.exp_min + code as i32 - 1;
        let mant = (body & ((1 << self.mant_bits) - 1)) as u32;
        let frac = mant << (23 - self.mant_bits);
        let bits = (((e + 127) as u32) << 23) | frac;
        sign * f32::from_bits(bits)
    }

    fn max_abs_error(&self) -> f32 {
        // Half an ULP at the largest binade.
        2.0f32.powi(self.exp_max) * 2.0f32.powi(-(self.mant_bits as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_range_gets_wide_mantissa() {
        // One binade [1, 2): exponent needs to distinguish {zero, e=0} → 1 bit.
        let c = AdaptiveCodec::new(0, 0);
        assert_eq!(c.exp_bits, 1);
        assert_eq!(c.mant_bits, 14);
        let v = 1.234_567f32;
        let r = c.decode(c.encode(v));
        assert!((r - v).abs() < 2.0 * c.max_abs_error(), "r={r}");
        assert!((r - v).abs() < 1e-3);
    }

    #[test]
    fn wide_range_still_covers() {
        // Exponents -20..=20: span 42 (+zero) → 6 bits.
        let c = AdaptiveCodec::new(-20, 20);
        assert_eq!(c.exp_bits, 6);
        for v in [1.0e-6f32, 3.0e-3, 0.5, 1.0, 777.0, 9.5e5] {
            let r = c.decode(c.encode(v));
            let rel = ((r - v) / v).abs();
            assert!(rel < 2.0f32.powi(-(c.mant_bits as i32 - 1)), "v={v} r={r}");
        }
    }

    #[test]
    fn zero_roundtrips_exactly() {
        let c = AdaptiveCodec::new(-5, 5);
        assert_eq!(c.decode(c.encode(0.0)), 0.0);
        assert_eq!(c.decode(c.encode(-0.0)), 0.0);
    }

    #[test]
    fn below_range_flushes_to_zero() {
        let c = AdaptiveCodec::new(0, 4);
        assert_eq!(c.decode(c.encode(1.0e-8)), 0.0);
    }

    #[test]
    fn above_range_saturates_without_garbage() {
        let c = AdaptiveCodec::new(0, 4);
        let r = c.decode(c.encode(1.0e9));
        // Clamped into the largest covered binade [16, 32).
        assert!((16.0..32.0).contains(&r), "saturated to {r}");
    }

    #[test]
    fn sign_is_preserved() {
        let c = AdaptiveCodec::new(-3, 3);
        assert!(c.decode(c.encode(-2.5)) < 0.0);
        assert!(c.decode(c.encode(2.5)) > 0.0);
    }

    #[test]
    fn from_stats_of_constant_zero_field() {
        let s = FieldStats::of_slice(&[0.0, 0.0]);
        let c = AdaptiveCodec::from_stats(&s);
        assert_eq!(c.decode(c.encode(0.0)), 0.0);
    }

    #[test]
    fn beats_f16_on_narrow_range() {
        // For values in [1, 2), the adaptive codec keeps 14 mantissa bits
        // vs binary16's 10 — the paper's motivation for method (2).
        let c = AdaptiveCodec::new(0, 0);
        let v = 1.000_3f32;
        let adaptive_err = (c.decode(c.encode(v)) - v).abs();
        let f16_err = (crate::f16::f16_to_f32(crate::f16::f32_to_f16(v)) - v).abs();
        assert!(adaptive_err < f16_err, "adaptive {adaptive_err} vs f16 {f16_err}");
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn range_wider_than_8_exponent_bits_is_rejected() {
        let _ = AdaptiveCodec::new(-170, 170);
    }
}
