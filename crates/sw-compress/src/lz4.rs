//! LZ4 block-format codec, implemented from scratch.
//!
//! The paper's I/O stack "integrates the LZ4 compression to reduce the size
//! [of the 108-TB restart wavefields] for a smoother run" (§6.2). This is a
//! standard LZ4 *block* codec: greedy hash-chain matching on the compressor
//! side, and a decompressor that follows the sequence format (token /
//! extended lengths / little-endian 16-bit offsets) including overlapping
//! matches. The end-of-block rules of the spec are honoured: the last five
//! bytes are always literals, and no match starts within the final twelve
//! bytes.

/// Minimum match length of the LZ4 format.
const MIN_MATCH: usize = 4;
/// No match may start after `len - MF_LIMIT`.
const MF_LIMIT: usize = 12;
/// Matches must end at least this many bytes before the block end.
const LAST_LITERALS: usize = 5;
/// Hash-table size (log2).
const HASH_LOG: u32 = 14;

/// Decompression failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lz4Error {
    /// Input ended in the middle of a sequence.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset,
}

impl std::fmt::Display for Lz4Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lz4Error::Truncated => write!(f, "LZ4 block truncated"),
            Lz4Error::BadOffset => write!(f, "LZ4 match offset out of range"),
        }
    }
}

impl std::error::Error for Lz4Error {}

#[inline(always)]
fn hash(seq: u32) -> usize {
    (seq.wrapping_mul(2654435761) >> (32 - HASH_LOG)) as usize
}

#[inline(always)]
fn read_u32(src: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([src[pos], src[pos + 1], src[pos + 2], src[pos + 3]])
}

fn write_length(out: &mut Vec<u8>, mut len: usize) {
    while len >= 255 {
        out.push(255);
        len -= 255;
    }
    out.push(len as u8);
}

fn emit_sequence(out: &mut Vec<u8>, literals: &[u8], offset: u16, match_len: usize) {
    debug_assert!(match_len >= MIN_MATCH);
    let lit_len = literals.len();
    let ml_code = match_len - MIN_MATCH;
    let token = ((lit_len.min(15) as u8) << 4) | ml_code.min(15) as u8;
    out.push(token);
    if lit_len >= 15 {
        write_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
    out.extend_from_slice(&offset.to_le_bytes());
    if ml_code >= 15 {
        write_length(out, ml_code - 15);
    }
}

fn emit_last_literals(out: &mut Vec<u8>, literals: &[u8]) {
    let lit_len = literals.len();
    out.push((lit_len.min(15) as u8) << 4);
    if lit_len >= 15 {
        write_length(out, lit_len - 15);
    }
    out.extend_from_slice(literals);
}

/// Compress `src` into a fresh LZ4 block.
pub fn compress(src: &[u8]) -> Vec<u8> {
    let len = src.len();
    let mut out = Vec::with_capacity(len / 2 + 16);
    if len < MF_LIMIT + 1 {
        emit_last_literals(&mut out, src);
        return out;
    }
    let mflimit = len - MF_LIMIT;
    let matchlimit = len - LAST_LITERALS;
    let mut table = vec![0usize; 1 << HASH_LOG]; // stores pos + 1, 0 = empty
    let mut anchor = 0usize;
    let mut pos = 0usize;
    while pos <= mflimit {
        let seq = read_u32(src, pos);
        let h = hash(seq);
        let cand = table[h];
        table[h] = pos + 1;
        let found = cand > 0 && {
            let c = cand - 1;
            pos - c <= u16::MAX as usize && read_u32(src, c) == seq
        };
        if !found {
            pos += 1;
            continue;
        }
        let cand = cand - 1;
        // Extend the match forward up to the last-literals limit.
        let mut ml = MIN_MATCH;
        while pos + ml < matchlimit && src[cand + ml] == src[pos + ml] {
            ml += 1;
        }
        emit_sequence(&mut out, &src[anchor..pos], (pos - cand) as u16, ml);
        pos += ml;
        anchor = pos;
        // Seed the table inside the match so runs keep matching.
        if pos <= mflimit {
            let p = pos - 2;
            table[hash(read_u32(src, p))] = p + 1;
        }
    }
    emit_last_literals(&mut out, &src[anchor..]);
    out
}

fn read_length(src: &[u8], pos: &mut usize, base: usize) -> Result<usize, Lz4Error> {
    let mut len = base;
    if base == 15 {
        loop {
            let b = *src.get(*pos).ok_or(Lz4Error::Truncated)?;
            *pos += 1;
            len += b as usize;
            if b != 255 {
                break;
            }
        }
    }
    Ok(len)
}

/// Decompress an LZ4 block produced by [`compress`] (or any conforming
/// encoder).
pub fn decompress(src: &[u8]) -> Result<Vec<u8>, Lz4Error> {
    let mut out = Vec::with_capacity(src.len() * 3);
    let mut pos = 0usize;
    if src.is_empty() {
        return Err(Lz4Error::Truncated);
    }
    loop {
        let token = *src.get(pos).ok_or(Lz4Error::Truncated)?;
        pos += 1;
        // Literals.
        let lit_len = read_length(src, &mut pos, (token >> 4) as usize)?;
        let lit_end = pos.checked_add(lit_len).ok_or(Lz4Error::Truncated)?;
        if lit_end > src.len() {
            return Err(Lz4Error::Truncated);
        }
        out.extend_from_slice(&src[pos..lit_end]);
        pos = lit_end;
        if pos == src.len() {
            return Ok(out); // last sequence carries no match
        }
        // Match.
        if pos + 2 > src.len() {
            return Err(Lz4Error::Truncated);
        }
        let offset = u16::from_le_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        if offset == 0 || offset > out.len() {
            return Err(Lz4Error::BadOffset);
        }
        let match_len = read_length(src, &mut pos, (token & 0x0f) as usize)? + MIN_MATCH;
        // Byte-by-byte copy: offsets smaller than the length overlap and
        // replicate (the RLE trick of the format).
        let start = out.len() - offset;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
}

/// Convenience: compress a f32 slice (the checkpoint path).
pub fn compress_f32(src: &[f32]) -> Vec<u8> {
    let bytes: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
    compress(&bytes)
}

/// Convenience: decompress back into f32 values.
pub fn decompress_f32(src: &[u8]) -> Result<Vec<f32>, Lz4Error> {
    let bytes = decompress(src)?;
    if bytes.len() % 4 != 0 {
        return Err(Lz4Error::Truncated);
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip of {} bytes failed", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world!"); // below MF_LIMIT: literal-only
    }

    #[test]
    fn compressible_zeros() {
        let data = vec![0u8; 10_000];
        let c = compress(&data);
        assert!(c.len() < 100, "zeros must compress hard: {} B", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn repeated_pattern_uses_overlap() {
        let data: Vec<u8> = b"abcd".iter().cycle().take(4096).copied().collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 10);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn text_roundtrip() {
        let text = "The dynamic rupture generator is based on the CG-FDM code, \
                    with functions to initialize the fault stress, to perform \
                    friction law control, and to generate the sources through \
                    wave propagation. "
            .repeat(20);
        roundtrip(text.as_bytes());
        let c = compress(text.as_bytes());
        assert!(c.len() < text.len() / 2, "text compresses at least 2x");
    }

    #[test]
    fn incompressible_random_roundtrips() {
        // xorshift noise — incompressible but must round-trip with bounded
        // expansion.
        let mut state = 0x12345678u32;
        let data: Vec<u8> = (0..8192)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                state as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() < data.len() + data.len() / 128 + 32);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_literal_and_match_lengths() {
        // > 255+15 literals then a long run to exercise extended lengths.
        let mut data = Vec::new();
        for i in 0..300u32 {
            data.extend_from_slice(&(i.wrapping_mul(2654435761)).to_le_bytes());
        }
        data.extend(std::iter::repeat_n(7u8, 5000));
        roundtrip(&data);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let c = compress(&vec![1u8; 1000]);
        for cut in [0, 1, c.len() / 2] {
            assert!(decompress(&c[..cut]).is_err() || cut == 0 && c.is_empty());
        }
    }

    #[test]
    fn bad_offset_is_an_error() {
        // token: 0 literals, match len 4; offset 5 with empty output.
        let bogus = [0x00u8, 0x05, 0x00];
        assert_eq!(decompress(&bogus), Err(Lz4Error::BadOffset));
    }

    #[test]
    fn f32_wavefield_compresses() {
        // A smooth wavefield has very regular bytes in the exponent lanes;
        // LZ4 should find structure but stay lossless.
        let field: Vec<f32> = (0..4096).map(|i| ((i as f32) * 0.01).sin() * 1e-3).collect();
        let c = compress_f32(&field);
        let d = decompress_f32(&c).unwrap();
        assert_eq!(d, field);
    }

    #[test]
    fn zero_checkpoint_shrinks_enormously() {
        // Early-simulation wavefields are mostly zero — the case that makes
        // the 108-TB checkpoint tractable.
        let field = vec![0.0f32; 65536];
        let c = compress_f32(&field);
        assert!(c.len() * 100 < field.len() * 4);
        assert_eq!(decompress_f32(&c).unwrap(), field);
    }
}
