//! Method (1) of Fig. 5d: IEEE 754 binary16.
//!
//! "Method (1) directly uses the 16-bit half precision defined by the IEEE
//! 754 standard, using 5 bits for the exponent and 10 bits for the
//! mantissa." Conversion is implemented from scratch with round-to-nearest-
//! even, gradual underflow to subnormals, and overflow to infinity — the
//! numerical problems the paper warns about for wide-dynamic-range arrays
//! (overflow) and narrow ones (wasted exponent bits) are therefore
//! faithfully present.

use crate::Codec16;

/// Convert an f32 to IEEE binary16 bits with round-to-nearest-even.
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN: keep a quiet-NaN payload bit so NaN stays NaN.
        let nan_bit = if frac != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit | ((frac >> 13) as u16 & 0x03ff);
    }

    // Unbiased exponent in f32 is exp - 127; f16 bias is 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow → signed infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal range: round 23-bit mantissa to 10 bits, nearest-even.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let mant = frac >> 13;
        let round_bits = frac & 0x1fff;
        let mut out = sign | half_exp | mant as u16;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (mant & 1) == 1) {
            out += 1; // may carry into the exponent, which is correct
        }
        return out;
    }
    if unbiased >= -25 {
        // Subnormal range: shift the implicit leading 1 into the mantissa.
        let full = 0x0080_0000 | frac;
        let shift = (-14 - unbiased + 13) as u32;
        let mant = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut out = sign | mant as u16;
        if rem > half || (rem == half && (mant & 1) == 1) {
            out += 1;
        }
        return out;
    }
    // Too small even for a subnormal: flush to signed zero.
    sign
}

/// Convert IEEE binary16 bits back to f32.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x03ff) as u32;
    let bits = match (exp, frac) {
        (0, 0) => sign,
        (0, _) => {
            // Subnormal: renormalize.
            let lead = frac.leading_zeros() - 22; // zeros within the 10-bit field
            let mant = (frac << (lead + 1)) & 0x03ff;
            let e = 127 - 15 - lead;
            sign | (e << 23) | (mant << 13)
        }
        (0x1f, 0) => sign | 0x7f80_0000,
        (0x1f, _) => sign | 0x7f80_0000 | (frac << 13),
        _ => sign | ((exp + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(bits)
}

/// [`Codec16`] wrapper for binary16.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct F16Codec;

impl Codec16 for F16Codec {
    fn encode(&self, v: f32) -> u16 {
        f32_to_f16(v)
    }

    fn decode(&self, c: u16) -> f32 {
        f16_to_f32(c)
    }

    fn max_abs_error(&self) -> f32 {
        // Relative error is 2^-11 per round trip; as an absolute bound it
        // depends on magnitude, so report the bound at the f16 max (65504).
        65504.0 * 0.000_488_28
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 2.0, 0.5, 1024.0, -2048.0, 0.25] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "{v} must be exact in f16");
        }
    }

    #[test]
    fn relative_error_within_half_ulp() {
        let mut v = 1.0e-4f32;
        while v < 6.0e4 {
            let r = f16_to_f32(f32_to_f16(v));
            let rel = ((r - v) / v).abs();
            assert!(rel <= 4.9e-4, "v={v} r={r} rel={rel}");
            v *= 1.37;
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f16_to_f32(f32_to_f16(1.0e6)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(-1.0e6)), f32::NEG_INFINITY);
        // Largest finite f16.
        assert_eq!(f16_to_f32(f32_to_f16(65504.0)), 65504.0);
    }

    #[test]
    fn subnormals_and_underflow() {
        // Smallest f16 subnormal is 2^-24 ≈ 5.96e-8.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f16_to_f32(f32_to_f16(tiny)), tiny);
        // Below half of it: flush to zero.
        let r = f16_to_f32(f32_to_f16(1.0e-9));
        assert_eq!(r, 0.0);
        // Sign preserved on flush.
        assert!(f16_to_f32(f32_to_f16(-1.0e-9)).is_sign_negative());
    }

    #[test]
    fn nan_and_inf_pass_through() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16; ties
        // go to the even mantissa (1.0).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(halfway)), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(f16_to_f32(f32_to_f16(above)), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn mantissa_carry_into_exponent() {
        // Rounding 1.9999999 up carries into the exponent → 2.0.
        assert_eq!(f16_to_f32(f32_to_f16(1.999_999_9)), 2.0);
    }

    #[test]
    fn codec_trait_slice_roundtrip() {
        let codec = F16Codec;
        let src: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.37).collect();
        let mut enc = vec![0u16; src.len()];
        let mut dec = vec![0f32; src.len()];
        codec.encode_slice(&src, &mut enc);
        codec.decode_slice(&enc, &mut dec);
        for (a, b) in src.iter().zip(&dec) {
            assert!((a - b).abs() <= a.abs() * 5e-4 + 1e-6);
        }
    }
}
