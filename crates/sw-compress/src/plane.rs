//! Plane-granular resident compression: a whole simulation array kept as
//! 16-bit codes with an independently calibrated codec per x-plane.
//!
//! This is the resident-representation half of ROADMAP item 2. The §6.5
//! round-trip path compresses a field once per step with one field-wide
//! codec; a [`ResidentField3`] instead *lives* compressed, and the driver
//! streams x-plane slabs through a small f32 working set
//! (decompress → compute → compress, Fig. 5c at plane granularity).
//!
//! Per-plane calibration solves the chicken-and-egg of resident encoding:
//! a field-wide codec would need the global max-abs before any plane can
//! be encoded, and would saturate whenever the wavefront grows past the
//! previous step's range. Each plane instead buckets its *own* max-abs at
//! encode time ([`max_abs_bucket`]) and pulls the matching calibrated
//! codec from a bucket-keyed [`CodecCache`] — the "binade slot reuse" of
//! the plane store. The codec is a pure function of the plane's content,
//! which keeps runs deterministic and checkpoint/restore byte-exact.

use crate::calib::{max_abs_bucket, CodecCache};
use crate::field::Codec;
use crate::stats::unbiased_exponent;
use crate::Codec16;
use sw_grid::{Dims3, Field3};

/// Binade bucket of a single value (`i32::MIN` = zero; nonfinite values
/// escalate to the top bucket so the codec window opens fully).
#[inline]
pub fn value_bucket(v: f32) -> i32 {
    if v == 0.0 {
        i32::MIN
    } else if v.is_finite() {
        unbiased_exponent(v)
    } else {
        127
    }
}

/// Round-trip error statistics accumulated while encoding planes.
///
/// The driver folds one of these per field per step and streams the
/// result into the health log, where the binade-relative error budget is
/// enforced ([`rel_err`](EncodeStats::rel_err)). `nonfinite` doubles as
/// the NaN/Inf detector for compressed-resident fields: the codecs
/// launder nonfinite values into clamped or zero codes, so the usual
/// post-hoc field scan would never see them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EncodeStats {
    /// Largest finite |value| encoded.
    pub max_abs: f32,
    /// Largest absolute round-trip error among finite values.
    pub max_err: f32,
    /// Sum of squared round-trip errors (finite values).
    pub sum_sq_err: f64,
    /// Finite values encoded.
    pub count: u64,
    /// Nonfinite values encountered (laundered by the codecs).
    pub nonfinite: u64,
}

impl EncodeStats {
    /// The identity for [`EncodeStats::merge`].
    pub fn empty() -> Self {
        Self { max_abs: 0.0, max_err: 0.0, sum_sq_err: 0.0, count: 0, nonfinite: 0 }
    }

    /// Fold in statistics gathered elsewhere (another plane or field).
    pub fn merge(&mut self, o: &Self) {
        self.max_abs = self.max_abs.max(o.max_abs);
        self.max_err = self.max_err.max(o.max_err);
        self.sum_sq_err += o.sum_sq_err;
        self.count += o.count;
        self.nonfinite += o.nonfinite;
    }

    /// Worst round-trip error relative to the field's peak magnitude —
    /// the quantity the health budget bounds. Zero fields report 0;
    /// a nonzero error on an all-zero field reports infinity.
    pub fn rel_err(&self) -> f32 {
        if self.max_abs > 0.0 {
            self.max_err / self.max_abs
        } else if self.max_err > 0.0 {
            f32::INFINITY
        } else {
            0.0
        }
    }

    /// Root-mean-square round-trip error (0 when empty).
    pub fn rms_err(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq_err / self.count as f64).sqrt() as f32
        }
    }
}

/// A 3-D field resident as 16-bit codes, one calibrated codec per padded
/// x-plane. Same halo convention as [`Field3`]; plane indices are in
/// *padded* x space (`0 .. dims.nx + 2*halo`), matching the contiguous
/// x-major layout the driver's slab loop streams through.
#[derive(Debug, Clone)]
pub struct ResidentField3 {
    interior: Dims3,
    padded: Dims3,
    halo: usize,
    cache: CodecCache,
    plane_codecs: Vec<Codec>,
    plane_buckets: Vec<i32>,
    plane_max: Vec<f32>,
    data: Vec<u16>,
}

/// Equality is over the *payload* — dims, per-plane buckets, and stored
/// codes — not over incidental cache state (which depends on visit order).
impl PartialEq for ResidentField3 {
    fn eq(&self, other: &Self) -> bool {
        self.interior == other.interior
            && self.halo == other.halo
            && self.plane_buckets == other.plane_buckets
            && self.data == other.data
    }
}

impl ResidentField3 {
    /// Allocate with every plane in the zero bucket.
    pub fn new(dims: Dims3, halo: usize, base: Codec) -> Self {
        let padded = dims.padded(halo);
        let mut cache = CodecCache::new(base);
        let zero_codec = cache.get(i32::MIN);
        let zero = zero_codec.encode(0.0);
        Self {
            interior: dims,
            padded,
            halo,
            cache,
            plane_codecs: vec![zero_codec; padded.nx],
            plane_buckets: vec![i32::MIN; padded.nx],
            plane_max: vec![0.0; padded.nx],
            data: vec![zero; padded.len()],
        }
    }

    /// Compress an existing f32 field plane by plane.
    pub fn from_field(f: &Field3, base: Codec) -> Self {
        let mut out = Self::new(f.dims(), f.halo(), base);
        for p in 0..out.padded.nx {
            out.encode_plane(p, f.plane(p));
        }
        out
    }

    /// Re-encode an f32 field under *pinned* per-plane buckets — the
    /// checkpoint-restore path. Because calibrated codecs are round-trip
    /// idempotent on codes, re-encoding a decoded field under the buckets
    /// it was decoded with reproduces the stored codes bit for bit.
    pub fn from_field_with_buckets(f: &Field3, base: Codec, buckets: &[i32]) -> Self {
        let mut out = Self::new(f.dims(), f.halo(), base);
        assert_eq!(buckets.len(), out.padded.nx, "one bucket per padded plane");
        for (p, &bucket) in buckets.iter().enumerate() {
            out.encode_plane_with_bucket(p, f.plane(p), bucket);
        }
        out
    }

    /// Decompress into a new f32 field.
    pub fn to_field(&self) -> Field3 {
        let mut f = Field3::new(self.interior, self.halo);
        for p in 0..self.padded.nx {
            self.decode_plane_into(p, f.plane_mut(p));
        }
        f
    }

    /// Interior extents.
    pub fn dims(&self) -> Dims3 {
        self.interior
    }

    /// Halo width.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Number of padded x-planes.
    pub fn plane_count(&self) -> usize {
        self.padded.nx
    }

    /// Values per padded plane (`padded.ny * padded.nz`).
    pub fn plane_len(&self) -> usize {
        self.padded.ny * self.padded.nz
    }

    /// Per-plane binade buckets (the checkpoint sidecar payload).
    pub fn plane_buckets(&self) -> &[i32] {
        &self.plane_buckets
    }

    /// Advisory per-plane max-abs recorded at the last encode.
    pub fn plane_max(&self) -> &[f32] {
        &self.plane_max
    }

    /// Stored bytes — the capacity win over the f32 field it replaces.
    pub fn stored_bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Largest advisory plane max-abs (gauge support).
    pub fn max_abs(&self) -> f32 {
        self.plane_max.iter().fold(0.0f32, |a, &b| a.max(b))
    }

    #[inline]
    fn plane_range(&self, p: usize) -> std::ops::Range<usize> {
        let len = self.plane_len();
        p * len..(p + 1) * len
    }

    /// Decode padded plane `p` into `dst` (length [`plane_len`](Self::plane_len)).
    pub fn decode_plane_into(&self, p: usize, dst: &mut [f32]) {
        let codec = self.plane_codecs[p];
        codec.decode_slice(&self.data[self.plane_range(p)], dst);
    }

    /// Encode `src` as padded plane `p`, calibrating the codec from the
    /// plane's own max-abs. Returns the round-trip statistics of the
    /// plane so the caller can fold them into the per-field health feed.
    pub fn encode_plane(&mut self, p: usize, src: &[f32]) -> EncodeStats {
        let bucket = max_abs_bucket(Self::finite_max_abs(src).0);
        self.encode_plane_with_bucket(p, src, bucket)
    }

    /// Encode `src` as padded plane `p` under an explicit bucket (restore
    /// path, and the escalation arm of [`apply_adds`](Self::apply_adds)).
    pub fn encode_plane_with_bucket(&mut self, p: usize, src: &[f32], bucket: i32) -> EncodeStats {
        assert_eq!(src.len(), self.plane_len(), "plane length mismatch");
        let (max_abs, nonfinite) = Self::finite_max_abs(src);
        let codec = self.cache.get(bucket);
        let range = self.plane_range(p);
        let mut stats = EncodeStats {
            max_abs,
            max_err: 0.0,
            sum_sq_err: 0.0,
            count: src.len() as u64 - nonfinite,
            nonfinite,
        };
        for (c, &v) in self.data[range].iter_mut().zip(src) {
            let code = codec.encode(v);
            *c = code;
            if v.is_finite() {
                let err = (codec.decode(code) - v).abs();
                stats.max_err = stats.max_err.max(err);
                stats.sum_sq_err += (err as f64) * (err as f64);
            }
        }
        self.plane_codecs[p] = codec;
        self.plane_buckets[p] = bucket;
        self.plane_max[p] = max_abs;
        stats
    }

    fn finite_max_abs(src: &[f32]) -> (f32, u64) {
        let mut max = 0.0f32;
        let mut nonfinite = 0u64;
        for &v in src {
            let a = v.abs();
            if a.is_finite() {
                max = max.max(a);
            } else {
                nonfinite += 1;
            }
        }
        (max, nonfinite)
    }

    #[inline(always)]
    fn off(&self, x: usize, y: usize, z: usize) -> usize {
        self.padded.offset(x + self.halo, y + self.halo, z + self.halo)
    }

    /// Decode one interior value (seismogram taps, PGV scans).
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.plane_codecs[x + self.halo].decode(self.data[self.off(x, y, z)])
    }

    /// Batched read-modify-write of scattered interior cells — the
    /// source-injection path. `adds` are `(x, y, z, increment)` applied in
    /// order. As long as every incremented value stays within its plane's
    /// current bucket the write is a single-code encode; only a bucket
    /// escalation re-encodes the affected plane (with the widened codec),
    /// instead of every write thrashing a whole z-run as
    /// `CompressedField3::encode_z_run` would.
    ///
    /// The escalate-or-not decision depends only on the stored codes and
    /// `adds` — never on the advisory `plane_max` — so a restored run
    /// makes exactly the choices the uninterrupted run made.
    pub fn apply_adds(&mut self, adds: &[(usize, usize, usize, f32)]) {
        for &(x, y, z, v) in adds {
            let p = x + self.halo;
            let off = self.off(x, y, z);
            let codec = self.plane_codecs[p];
            let new = codec.decode(self.data[off]) + v;
            let b = value_bucket(new);
            if b <= self.plane_buckets[p] {
                self.data[off] = codec.encode(new);
                self.plane_max[p] = self.plane_max[p].max(new.abs());
            } else {
                // Escalate: widen the plane's codec to cover `new`, then
                // re-encode the whole plane once under the new bucket.
                let mut buf = vec![0.0f32; self.plane_len()];
                self.decode_plane_into(p, &mut buf);
                buf[off - p * self.plane_len()] = new;
                self.encode_plane_with_bucket(p, &buf, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::calibrated_codec;
    use crate::stats::FieldStats;

    fn wavefield(d: Dims3) -> Field3 {
        let mut f = Field3::new(d, 2);
        f.fill_with(|x, y, z| {
            ((x as f32 * 0.7).sin() * (y as f32 * 0.3).cos() + z as f32 * 0.01) * 0.2
        });
        f
    }

    fn bases() -> [Codec; 3] {
        let empty = FieldStats::empty();
        [
            Codec::paper_assignment("xx", &empty),  // Adaptive
            Codec::paper_assignment("lam", &empty), // Norm
            Codec::paper_assignment("u", &empty),   // F16
        ]
    }

    #[test]
    fn roundtrip_stays_within_binade_relative_bound() {
        let d = Dims3::new(6, 5, 8);
        let f = wavefield(d);
        for base in bases() {
            let r = ResidentField3::from_field(&f, base);
            let g = r.to_field();
            let err = f.max_abs_diff(&g);
            // Calibrated per-plane codecs keep ≥10 mantissa bits over a
            // window anchored at each plane's own binade.
            let bound = f.max_abs() * 2.0f32.powi(-9);
            assert!(err <= bound, "{base:?}: err {err} vs bound {bound}");
        }
    }

    #[test]
    fn plane_path_matches_whole_field_encode_bitwise() {
        // Encoding plane-by-plane must agree bit for bit with encoding the
        // whole field through the same calibrated per-plane codecs.
        let d = Dims3::new(5, 4, 6);
        let f = wavefield(d);
        for base in bases() {
            let r = ResidentField3::from_field(&f, base);
            for p in 0..r.plane_count() {
                let codec = calibrated_codec(&base, r.plane_buckets()[p]);
                assert_eq!(codec, r.plane_codecs[p]);
                let mut dec = vec![0.0f32; r.plane_len()];
                r.decode_plane_into(p, &mut dec);
                for (i, (&v, &got)) in f.plane(p).iter().zip(&dec).enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        codec.decode(codec.encode(v)).to_bits(),
                        "p={p} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn decode_reencode_under_pinned_buckets_is_byte_identical() {
        let d = Dims3::new(6, 5, 7);
        let mut f = wavefield(d);
        // Give planes wildly different magnitudes so buckets differ.
        for x in 0..d.nx {
            let s = 10.0f32.powi(x as i32 - 3);
            for y in 0..d.ny {
                for z in 0..d.nz {
                    let v = f.get(x, y, z) * s;
                    f.set(x, y, z, v);
                }
            }
        }
        for base in bases() {
            let r = ResidentField3::from_field(&f, base);
            let decoded = r.to_field();
            let r2 = ResidentField3::from_field_with_buckets(&decoded, base, r.plane_buckets());
            assert_eq!(r, r2, "{base:?}: restore path must reproduce codes exactly");
        }
    }

    #[test]
    fn apply_adds_matches_decode_modify_encode() {
        let d = Dims3::new(6, 5, 7);
        let f = wavefield(d);
        for base in bases() {
            let mut r = ResidentField3::from_field(&f, base);
            // In-bucket adds: tiny nudges that stay inside each plane's binade.
            let adds = [(1usize, 2usize, 3usize, 1.0e-3f32), (4, 0, 6, -2.0e-3)];
            let before: Vec<i32> = r.plane_buckets().to_vec();
            r.apply_adds(&adds);
            assert_eq!(r.plane_buckets(), &before[..], "no escalation for in-bucket adds");
            for &(x, y, z, v) in &adds {
                let expect = {
                    let codec = r.plane_codecs[x + r.halo()];
                    codec.decode(codec.encode(codec.decode(codec.encode(f.get(x, y, z))) + v))
                };
                assert_eq!(r.get(x, y, z).to_bits(), expect.to_bits());
            }
        }
    }

    #[test]
    fn apply_adds_escalates_bucket_once_per_plane() {
        let d = Dims3::new(4, 4, 4);
        let base = bases()[0];
        let mut r = ResidentField3::new(d, 2, base);
        assert!(r.plane_buckets().iter().all(|&b| b == i32::MIN));
        // A large source injection into a zero plane must widen its codec.
        r.apply_adds(&[(1, 1, 1, 3.5)]);
        let p = 1 + r.halo();
        assert_eq!(r.plane_buckets()[p], 1, "3.5 ∈ [2,4) → bucket 1");
        let got = r.get(1, 1, 1);
        assert!((got - 3.5).abs() < 3.5 * 1e-3, "got {got}");
        // Neighbours in the same plane stay zero.
        assert_eq!(r.get(1, 0, 0), 0.0);
        // Other planes untouched.
        assert_eq!(r.plane_buckets()[p + 1], i32::MIN);
    }

    #[test]
    fn zero_field_stores_and_reports_zero() {
        let d = Dims3::new(4, 3, 5);
        for base in bases() {
            let r = ResidentField3::new(d, 2, base);
            assert_eq!(r.max_abs(), 0.0);
            assert_eq!(r.get(0, 0, 0), 0.0);
            let f = r.to_field();
            assert_eq!(f.max_abs(), 0.0);
            assert_eq!(r.stored_bytes() * 2, f.raw().len() * 4);
        }
    }

    #[test]
    fn encode_stats_feed_health() {
        let d = Dims3::new(4, 4, 4);
        let f = wavefield(d);
        let mut r = ResidentField3::new(d, 2, bases()[1]);
        let mut total = EncodeStats::empty();
        for p in 0..r.plane_count() {
            total.merge(&r.encode_plane(p, f.plane(p)));
        }
        assert_eq!(total.count, (r.plane_count() * r.plane_len()) as u64);
        assert_eq!(total.nonfinite, 0);
        assert!(total.max_abs > 0.0);
        assert!(total.rel_err() > 0.0 && total.rel_err() < 2.0f32.powi(-9));
        assert!(total.rms_err() <= total.max_err);
    }

    #[test]
    fn nonfinite_values_are_counted_not_propagated() {
        let d = Dims3::new(3, 3, 3);
        let mut f = Field3::new(d, 2);
        f.set(1, 1, 1, f32::NAN);
        f.set(2, 2, 2, f32::INFINITY);
        f.set(0, 0, 0, 0.25);
        let mut r = ResidentField3::new(d, 2, bases()[0]);
        let mut total = EncodeStats::empty();
        for p in 0..r.plane_count() {
            total.merge(&r.encode_plane(p, f.plane(p)));
        }
        assert_eq!(total.nonfinite, 2);
        assert!((total.max_abs - 0.25).abs() < 1e-7);
        assert!(total.rel_err().is_finite());
    }
}
