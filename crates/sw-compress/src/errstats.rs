//! Round-trip + error-statistics loops for the health monitor's
//! compression error budget.
//!
//! Each value is encoded and decoded back in place (exactly what
//! [`crate::par::roundtrip_par`] does), while a companion stats pass
//! accumulates the max absolute error, the error sum of squares, and
//! the max |original| that fixes the field's binade. Statistics are
//! accumulated per [`PAR_CHUNK`]-sized chunk — in a fixed blocked
//! order *within* each chunk (see [`chunk_stats`]) — and the per-chunk
//! partials are folded **in chunk order** in both the serial and
//! parallel variants, so the two are bit-identical for any thread
//! count: the same deterministic-reduction discipline the solver's
//! energy probe uses.

use crate::par::PAR_CHUNK;
use crate::Codec16;
use rayon::prelude::*;

/// Accumulated round-trip error statistics for one array.
///
/// Non-finite originals are round-tripped like any other value but are
/// excluded from the statistics (their "error" is meaningless and a
/// single NaN would poison the RMS); the health monitor's field scans
/// detect and report them separately.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundtripError {
    /// max |decoded − original| over finite entries.
    pub max_abs_err: f64,
    /// Σ (decoded − original)² over finite entries.
    pub sum_sq_err: f64,
    /// Finite entries processed.
    pub count: u64,
    /// max |original| over finite entries.
    pub max_abs_value: f64,
}

impl RoundtripError {
    pub fn rms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq_err / self.count as f64).sqrt()
        }
    }
}

/// Fold `b` into `a`, preserving the order-sensitive sum.
fn merge(a: RoundtripError, b: RoundtripError) -> RoundtripError {
    RoundtripError {
        max_abs_err: if b.max_abs_err > a.max_abs_err { b.max_abs_err } else { a.max_abs_err },
        sum_sq_err: a.sum_sq_err + b.sum_sq_err,
        count: a.count + b.count,
        max_abs_value: if b.max_abs_value > a.max_abs_value {
            b.max_abs_value
        } else {
            a.max_abs_value
        },
    }
}

/// Elements buffered on the stack per inner block: small enough that
/// the originals stay L1-resident between the round-trip pass and the
/// stats pass, large enough to amortize the loop split.
const STATS_BLOCK: usize = 1024;

fn chunk_stats<C: Codec16>(codec: &C, chunk: &mut [f32]) -> RoundtripError {
    // Two passes per stack-resident block instead of one fused loop:
    // the round-trip pass stays as tight as the plain (stats-free)
    // round trip, and the stats pass carries no encode/decode. The
    // stats pass is written branch-free (non-finite originals
    // contribute a zero error) with the sum of squares split over four
    // accumulator lanes, so it vectorizes instead of serializing on
    // one f64 add chain. The lane assignment is a fixed function of
    // element position, so the statistics remain bit-identical for any
    // thread count — only the (documented) summation order differs
    // from a naive single-accumulator loop.
    let mut s = RoundtripError::default();
    let mut sq = [0.0f64; 4];
    let mut max_err = [0.0f64; 4];
    let mut max_val = [0.0f32; 4];
    let mut nonfinite = 0u64;
    let mut scratch = [0.0f32; STATS_BLOCK];
    for block in chunk.chunks_mut(STATS_BLOCK) {
        let orig = &mut scratch[..block.len()];
        orig.copy_from_slice(block);
        for v in block.iter_mut() {
            *v = codec.decode(codec.encode(*v));
        }
        let mut o4 = orig.chunks_exact(4);
        let mut d4 = block.chunks_exact(4);
        for (os, ds) in (&mut o4).zip(&mut d4) {
            for l in 0..4 {
                let (o, d) = (os[l], ds[l]);
                let fin = o.is_finite();
                let err = if fin { f64::from(d) - f64::from(o) } else { 0.0 };
                sq[l] += err * err;
                let e = err.abs();
                if e > max_err[l] {
                    max_err[l] = e;
                }
                let m = if fin { o.abs() } else { 0.0 };
                if m > max_val[l] {
                    max_val[l] = m;
                }
                nonfinite += u64::from(!fin);
            }
        }
        for (&o, &d) in o4.remainder().iter().zip(d4.remainder()) {
            let fin = o.is_finite();
            let err = if fin { f64::from(d) - f64::from(o) } else { 0.0 };
            sq[0] += err * err;
            let e = err.abs();
            if e > max_err[0] {
                max_err[0] = e;
            }
            let m = if fin { o.abs() } else { 0.0 };
            if m > max_val[0] {
                max_val[0] = m;
            }
            nonfinite += u64::from(!fin);
        }
    }
    s.max_abs_err = max_err.iter().fold(0.0f64, |a, &b| if b > a { b } else { a });
    s.max_abs_value = f64::from(max_val.iter().fold(0.0f32, |a, &b| if b > a { b } else { a }));
    s.sum_sq_err = (sq[0] + sq[1]) + (sq[2] + sq[3]);
    s.count = chunk.len() as u64 - nonfinite;
    s
}

/// Serial in-place round trip with fused error statistics. The stored
/// values after the call are identical to [`Codec16`] round-tripping.
pub fn roundtrip_err_stats<C: Codec16>(codec: &C, data: &mut [f32]) -> RoundtripError {
    data.chunks_mut(PAR_CHUNK)
        .map(|chunk| chunk_stats(codec, chunk))
        .fold(RoundtripError::default(), merge)
}

/// Parallel variant of [`roundtrip_err_stats`]; bit-identical to it
/// (values and statistics) because partials are collected per chunk
/// and folded in chunk order.
pub fn roundtrip_err_stats_par<C: Codec16 + Sync>(codec: &C, data: &mut [f32]) -> RoundtripError {
    let partials: Vec<RoundtripError> =
        data.par_chunks_mut(PAR_CHUNK).map(|chunk| chunk_stats(codec, chunk)).collect();
    partials.into_iter().fold(RoundtripError::default(), merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Codec, FieldStats};

    fn test_codec() -> Codec {
        let mut stats = FieldStats::empty();
        for v in [-4.0f32, -0.5, 0.5, 4.0] {
            stats.observe(v);
        }
        Codec::paper_assignment("vel", &stats)
    }

    fn test_data(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32 * 0.37).sin() * 3.7) + 0.01).collect()
    }

    #[test]
    fn stats_match_a_reference_two_pass_computation() {
        let codec = test_codec();
        let mut data = test_data(5000);
        let orig = data.clone();
        let s = roundtrip_err_stats(&codec, &mut data);

        let mut max_err = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut max_abs = 0.0f64;
        for (&o, &d) in orig.iter().zip(&data) {
            let err = f64::from(d) - f64::from(o);
            max_err = max_err.max(err.abs());
            sum_sq += err * err;
            max_abs = max_abs.max(f64::from(o.abs()));
        }
        assert_eq!(s.max_abs_err, max_err);
        // The blocked four-lane accumulation sums in a different (but
        // fixed) order than the naive loop, so compare to rounding.
        assert!((s.sum_sq_err - sum_sq).abs() <= 1e-12 * sum_sq, "{} vs {sum_sq}", s.sum_sq_err);
        assert_eq!(s.count, 5000);
        assert_eq!(s.max_abs_value, max_abs);
        assert!(s.rms() > 0.0 && s.rms() <= s.max_abs_err);
    }

    #[test]
    fn roundtrip_values_match_the_plain_roundtrip() {
        let codec = test_codec();
        let mut fused = test_data(3000);
        let mut plain = fused.clone();
        roundtrip_err_stats(&codec, &mut fused);
        for v in &mut plain {
            *v = codec.decode(codec.encode(*v));
        }
        assert_eq!(fused, plain);
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Span several PAR_CHUNKs so the parallel fold genuinely merges.
        let codec = test_codec();
        let mut serial = test_data(3 * PAR_CHUNK + 123);
        let mut parallel = serial.clone();
        let s = roundtrip_err_stats(&codec, &mut serial);
        let p = roundtrip_err_stats_par(&codec, &mut parallel);
        assert_eq!(serial, parallel);
        assert_eq!(s.max_abs_err.to_bits(), p.max_abs_err.to_bits());
        assert_eq!(s.sum_sq_err.to_bits(), p.sum_sq_err.to_bits());
        assert_eq!(s.count, p.count);
        assert_eq!(s.max_abs_value.to_bits(), p.max_abs_value.to_bits());
    }

    #[test]
    fn non_finite_entries_are_excluded_from_stats() {
        let codec = test_codec();
        let mut data = vec![1.0f32, f32::NAN, 2.0, f32::INFINITY];
        let s = roundtrip_err_stats(&codec, &mut data);
        assert_eq!(s.count, 2);
        assert!(s.sum_sq_err.is_finite());
        assert!(s.max_abs_err.is_finite());
        assert_eq!(s.max_abs_value, 2.0);
    }

    #[test]
    fn empty_input_is_clean_zero() {
        let s = roundtrip_err_stats(&test_codec(), &mut []);
        assert_eq!(s, RoundtripError::default());
        assert_eq!(s.rms(), 0.0);
    }
}
