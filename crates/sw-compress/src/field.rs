//! Compressed 3-D fields and the decompress–compute–compress workflow
//! (Fig. 5b/5c).
//!
//! A [`CompressedField3`] keeps a whole simulation array as 16-bit codes in
//! (simulated) main memory — half the DRAM footprint and half the DMA bytes
//! of the f32 field it replaces. The CPEs stream z-runs through their LDM:
//! `dma_get` compressed codes, decode, compute in f32, encode, `dma_put`
//! the results back.

use crate::adaptive::AdaptiveCodec;
use crate::f16::F16Codec;
use crate::norm::NormCodec;
use crate::stats::FieldStats;
use crate::Codec16;
use sw_grid::{Dims3, Field3};

/// A dynamically chosen 16-bit codec (the three methods of Fig. 5d).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Codec {
    /// Method (1): IEEE binary16.
    F16(F16Codec),
    /// Method (2): adaptive exponent width.
    Adaptive(AdaptiveCodec),
    /// Method (3): normalization into `[1, 2)`.
    Norm(NormCodec),
}

impl Codec {
    /// Fig. 5d's per-array assignment: binary16 for the velocity group
    /// (`vel, ww0, phi, cohes, taxx..taxz`), adaptive for the stress /
    /// memory-variable group (`str, r1..r6, sigma2, yldfac`), and
    /// normalization for the material group (`d1, lam, mu, qp, qs, vx1,
    /// vx2, ww`). Unknown arrays get the paper's final-design default,
    /// method (3).
    pub fn paper_assignment(array: &str, stats: &FieldStats) -> Codec {
        const F16_GROUP: [&str; 9] = ["vel", "u", "v", "w", "ww0", "phi", "cohes", "taxx", "taxz"];
        const ADAPTIVE_GROUP: [&str; 16] = [
            "str", "xx", "yy", "zz", "xy", "xz", "yz", "r1", "r2", "r3", "r4", "r5", "r6",
            "sigma2", "yldfac", "eqp",
        ];
        if F16_GROUP.contains(&array) {
            Codec::F16(F16Codec)
        } else if ADAPTIVE_GROUP.contains(&array) {
            Codec::Adaptive(AdaptiveCodec::from_stats(stats))
        } else {
            Codec::Norm(NormCodec::from_stats(stats))
        }
    }
}

impl Codec16 for Codec {
    fn encode(&self, v: f32) -> u16 {
        match self {
            Codec::F16(c) => c.encode(v),
            Codec::Adaptive(c) => c.encode(v),
            Codec::Norm(c) => c.encode(v),
        }
    }

    fn decode(&self, c: u16) -> f32 {
        match self {
            Codec::F16(x) => x.decode(c),
            Codec::Adaptive(x) => x.decode(c),
            Codec::Norm(x) => x.decode(c),
        }
    }

    fn max_abs_error(&self) -> f32 {
        match self {
            Codec::F16(c) => c.max_abs_error(),
            Codec::Adaptive(c) => c.max_abs_error(),
            Codec::Norm(c) => c.max_abs_error(),
        }
    }
}

/// A 3-D field stored as 16-bit codes (same halo convention as
/// [`Field3`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedField3 {
    interior: Dims3,
    padded: Dims3,
    halo: usize,
    codec: Codec,
    data: Vec<u16>,
}

impl CompressedField3 {
    /// Allocate, encoding zero everywhere.
    pub fn new(dims: Dims3, halo: usize, codec: Codec) -> Self {
        let padded = dims.padded(halo);
        let zero = codec.encode(0.0);
        Self { interior: dims, padded, halo, codec, data: vec![zero; padded.len()] }
    }

    /// Compress an existing f32 field.
    pub fn from_field(f: &Field3, codec: Codec) -> Self {
        let mut out = Self::new(f.dims(), f.halo(), codec);
        for (d, &s) in out.data.iter_mut().zip(f.raw()) {
            *d = codec.encode(s);
        }
        out
    }

    /// Decompress into a new f32 field.
    pub fn to_field(&self) -> Field3 {
        let mut f = Field3::new(self.interior, self.halo);
        for (d, &s) in f.raw_mut().iter_mut().zip(&self.data) {
            *d = self.codec.decode(s);
        }
        f
    }

    /// Interior extents.
    pub fn dims(&self) -> Dims3 {
        self.interior
    }

    /// The codec in use.
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Stored bytes (the paper's capacity argument: half of the f32 field).
    pub fn stored_bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// The raw 16-bit codes in memory order (halo included) — for bitwise
    /// comparisons and serialization.
    pub fn codes(&self) -> &[u16] {
        &self.data
    }

    #[inline(always)]
    fn off(&self, x: usize, y: usize, z: usize) -> usize {
        self.padded.offset(x + self.halo, y + self.halo, z + self.halo)
    }

    /// Decode one interior value.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.codec.decode(self.data[self.off(x, y, z)])
    }

    /// Encode one interior value.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let o = self.off(x, y, z);
        self.data[o] = self.codec.encode(v);
    }

    /// Decompress the z-run at `(x, y)` into an LDM-style buffer.
    pub fn decode_z_run(&self, x: usize, y: usize, buf: &mut [f32]) {
        let nz = self.interior.nz;
        assert_eq!(buf.len(), nz);
        let o = self.off(x, y, 0);
        for (b, &c) in buf.iter_mut().zip(&self.data[o..o + nz]) {
            *b = self.codec.decode(c);
        }
    }

    /// Compress an LDM-style buffer back into the z-run at `(x, y)`.
    pub fn encode_z_run(&mut self, x: usize, y: usize, buf: &[f32]) {
        assert_eq!(buf.len(), self.interior.nz);
        let o = self.off(x, y, 0);
        for (c, &v) in self.data[o..o + buf.len()].iter_mut().zip(buf) {
            *c = self.codec.encode(v);
        }
    }

    /// Batched read-modify-write of scattered cells — the source-injection
    /// path. Each `(x, y, z, increment)` decodes one code, adds, and
    /// re-encodes that one code.
    ///
    /// This exists because the z-run workflow is the wrong tool for point
    /// updates: incrementing a single cell through
    /// [`decode_z_run`](Self::decode_z_run)/[`encode_z_run`](Self::encode_z_run)
    /// rewrites all `nz` codes of the run, and for codecs whose round trip
    /// is not idempotent on codes the rewrite can perturb *untouched*
    /// neighbours (their decoded values re-encode to different codes).
    /// `apply_adds` touches exactly the target codes and nothing else.
    pub fn apply_adds(&mut self, adds: &[(usize, usize, usize, f32)]) {
        for &(x, y, z, v) in adds {
            let o = self.off(x, y, z);
            self.data[o] = self.codec.encode(self.codec.decode(self.data[o]) + v);
        }
    }

    /// The Fig. 5c workflow over a whole field: for every `(x, y)` z-run,
    /// decompress → `f(x, y, buf)` computes in place → compress back.
    pub fn update_z_runs(&mut self, mut f: impl FnMut(usize, usize, &mut [f32])) {
        let d = self.interior;
        let mut buf = vec![0.0f32; d.nz];
        for x in 0..d.nx {
            for y in 0..d.ny {
                self.decode_z_run(x, y, &mut buf);
                f(x, y, &mut buf);
                self.encode_z_run(x, y, &buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavefield(d: Dims3) -> Field3 {
        let mut f = Field3::new(d, 2);
        f.fill_with(|x, y, z| {
            ((x as f32 * 0.7).sin() * (y as f32 * 0.3).cos() + z as f32 * 0.01) * 0.2
        });
        f
    }

    #[test]
    fn roundtrip_within_codec_bound() {
        let d = Dims3::new(6, 5, 8);
        let f = wavefield(d);
        let stats = FieldStats::of_field(&f);
        for codec in [
            Codec::F16(F16Codec),
            Codec::Adaptive(AdaptiveCodec::from_stats(&stats)),
            Codec::Norm(NormCodec::from_stats(&stats)),
        ] {
            let c = CompressedField3::from_field(&f, codec);
            let g = c.to_field();
            let err = f.max_abs_diff(&g);
            assert!(
                err <= codec.max_abs_error() * 1.01 + 1e-7,
                "{codec:?}: err {err} vs bound {}",
                codec.max_abs_error()
            );
        }
    }

    #[test]
    fn stored_bytes_are_half_of_f32() {
        let d = Dims3::new(10, 10, 10);
        let f = Field3::new(d, 2);
        let c = CompressedField3::from_field(&f, Codec::F16(F16Codec));
        assert_eq!(c.stored_bytes() * 2, f.raw().len() * 4);
    }

    #[test]
    fn z_run_pipeline_matches_pointwise() {
        let d = Dims3::new(4, 4, 16);
        let f = wavefield(d);
        let stats = FieldStats::of_field(&f);
        let codec = Codec::Norm(NormCodec::from_stats(&stats));
        let mut c = CompressedField3::from_field(&f, codec);
        // double every value through the z-run pipeline
        c.update_z_runs(|_, _, buf| {
            for v in buf.iter_mut() {
                *v *= 2.0;
            }
        });
        // compare against pointwise reference (note: clamping may bite at
        // the range edge, so stay within half range)
        for (x, y, z) in d.iter() {
            let expect = 2.0 * f.get(x, y, z);
            if expect.abs() < stats.max.abs() {
                let got = c.get(x, y, z);
                assert!(
                    (got - expect).abs() <= 3.0 * codec.max_abs_error(),
                    "({x},{y},{z}): {got} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn paper_assignment_routes_groups() {
        let s = FieldStats::of_slice(&[0.5, 1.0, 2.0]);
        assert!(matches!(Codec::paper_assignment("vel", &s), Codec::F16(_)));
        assert!(matches!(Codec::paper_assignment("cohes", &s), Codec::F16(_)));
        assert!(matches!(Codec::paper_assignment("r3", &s), Codec::Adaptive(_)));
        assert!(matches!(Codec::paper_assignment("yldfac", &s), Codec::Adaptive(_)));
        assert!(matches!(Codec::paper_assignment("lam", &s), Codec::Norm(_)));
        assert!(matches!(Codec::paper_assignment("unknown_array", &s), Codec::Norm(_)));
    }

    /// Documents the read-modify-write cost that motivates `apply_adds`:
    /// injecting one source increment through the z-run workflow performs
    /// `2 · nz` codec operations and `nz` code stores for a single-cell
    /// write — a write amplification of `nz` (here 16×, and the production
    /// z extent is thousands). The batched setter performs exactly one
    /// decode and one encode per increment.
    ///
    /// The test also pins the safety property both paths share: stored
    /// codes are canonical (`encode` maps every decoded value back to the
    /// code it came from), so neither path may perturb untouched codes —
    /// only the *cost* differs, which is why the source-injection path
    /// uses `apply_adds`.
    #[test]
    fn apply_adds_avoids_z_run_write_amplification() {
        let d = Dims3::new(4, 4, 16);
        let f = wavefield(d);
        let stats = FieldStats::of_field(&f);
        let codec = Codec::Norm(NormCodec::from_stats(&stats));

        // Path A (the documented cost): decode the whole z-run, add to one
        // cell, encode the whole z-run back — 2·nz codec ops, nz stores.
        let mut z_run_path = CompressedField3::from_field(&f, codec);
        let mut run = vec![0.0f32; d.nz];
        z_run_path.decode_z_run(2, 2, &mut run);
        run[5] += 0.01;
        z_run_path.encode_z_run(2, 2, &run);
        let z_run_ops = 2 * d.nz;

        // Path B: the batched setter — one decode + one encode per add.
        let mut batched = CompressedField3::from_field(&f, codec);
        batched.apply_adds(&[(2, 2, 5, 0.01)]);
        let batched_ops = 2;

        assert!(
            z_run_ops >= 16 * batched_ops,
            "the z-run path amplifies one write into {z_run_ops} codec ops"
        );

        // Same result, radically different cost: both paths change exactly
        // the target code and leave every untouched code bit-identical.
        let reference = CompressedField3::from_field(&f, codec);
        let diff = |a: &CompressedField3| {
            a.codes().iter().zip(reference.codes()).filter(|(x, y)| x != y).count()
        };
        assert_eq!(diff(&z_run_path), 1);
        assert_eq!(diff(&batched), 1);
        assert_eq!(z_run_path.codes(), batched.codes());
        let expect = f.get(2, 2, 5) + 0.01;
        assert!((batched.get(2, 2, 5) - expect).abs() <= 3.0 * codec.max_abs_error());
    }

    #[test]
    fn set_get_single_values() {
        let d = Dims3::cube(3);
        let mut c = CompressedField3::new(d, 2, Codec::Norm(NormCodec::new(-1.0, 1.0)));
        c.set(1, 1, 1, 0.5);
        assert!((c.get(1, 1, 1) - 0.5).abs() < 1e-4);
        assert_eq!(c.get(0, 0, 0), 0.0);
    }
}
