//! Method (3) of Fig. 5d: normalization into `[1, 2)` — the production codec.
//!
//! "According to the statistics in the first part, we normalize all the
//! values of the same array to the range between 1 and 2, which corresponds
//! to an exponent value of zero. Therefore, after the normalization, we can
//! shift the bits to get the mantissa part as the compressed value directly,
//! which significantly simplifies the compression process."
//!
//! Encoding is a fused multiply-add plus a shift; decoding is a shift plus a
//! fused multiply-add — the cheapest of the three codecs, which is why the
//! paper adopts it "for most velocity and stress variables". Every value in
//! `[1, 2)` has exponent 0 and positive sign, so all 16 stored bits carry
//! mantissa: the worst-case absolute error is `range / 2^16` (half an ULP of
//! the 16-bit mantissa grid after rounding).

use crate::stats::FieldStats;
use crate::Codec16;

/// The normalization codec, parameterized by an array's value range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormCodec {
    vmin: f32,
    scale: f32,     // 1 / (vmax - vmin)
    inv_scale: f32, // vmax - vmin
}

impl NormCodec {
    /// Build from a value range `[vmin, vmax]`.
    pub fn new(vmin: f32, vmax: f32) -> Self {
        assert!(vmax >= vmin, "inverted range");
        assert!(vmin.is_finite() && vmax.is_finite(), "range must be finite");
        let span = vmax - vmin;
        // A degenerate (constant) array still needs a nonzero scale.
        let span = if span > 0.0 { span } else { 1.0 };
        Self { vmin, scale: 1.0 / span, inv_scale: span }
    }

    /// Build from coarse-run statistics, widened by 10 % as a safety margin
    /// for the fine run's slightly larger dynamic range.
    pub fn from_stats(stats: &FieldStats) -> Self {
        if stats.count == 0 {
            return Self::new(0.0, 1.0);
        }
        let w = stats.widened(1.1);
        Self::new(w.min, w.max)
    }

    /// The represented minimum.
    pub fn vmin(&self) -> f32 {
        self.vmin
    }

    /// The represented maximum.
    pub fn vmax(&self) -> f32 {
        self.vmin + self.inv_scale
    }
}

impl Codec16 for NormCodec {
    #[inline]
    fn encode(&self, v: f32) -> u16 {
        // Normalize into [1, 2); clamp out-of-range values to the ends.
        let n = 1.0 + (v - self.vmin) * self.scale;
        let n = n.clamp(1.0, 1.999_999_9);
        // Exponent is now 0 (biased 127): the top 16 mantissa bits, with
        // rounding, are the compressed value.
        let bits = n.to_bits();
        let frac = bits & 0x007f_ffff;
        let rounded = frac + 0x40; // round at bit 6 (we keep bits 7..22)
        if rounded > 0x007f_ffff {
            0xffff // rounding would carry past 2.0: saturate
        } else {
            (rounded >> 7) as u16
        }
    }

    #[inline]
    fn decode(&self, c: u16) -> f32 {
        let bits = 0x3f80_0000u32 | ((c as u32) << 7);
        let n = f32::from_bits(bits);
        (n - 1.0) * self.inv_scale + self.vmin
    }

    fn max_abs_error(&self) -> f32 {
        // 16 mantissa bits over a unit binade, with rounding: 2^-17 of the
        // span each way, plus clamp slack at the very top.
        self.inv_scale / 65536.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_within_bound() {
        let c = NormCodec::new(-3.0, 5.0);
        let bound = c.max_abs_error();
        assert!((bound - 8.0 / 65536.0).abs() < 1e-9);
        let mut v = -3.0f32;
        while v <= 5.0 {
            let r = c.decode(c.encode(v));
            assert!((r - v).abs() <= bound, "v={v} r={r} err={}", (r - v).abs());
            v += 0.001_37;
        }
    }

    #[test]
    fn endpoints_are_representable() {
        let c = NormCodec::new(-1.0, 1.0);
        assert!((c.decode(c.encode(-1.0)) - (-1.0)).abs() <= c.max_abs_error());
        assert!((c.decode(c.encode(1.0)) - 1.0).abs() <= 2.0 * c.max_abs_error());
    }

    #[test]
    fn out_of_range_clamps() {
        let c = NormCodec::new(0.0, 1.0);
        assert!(c.decode(c.encode(-5.0)).abs() <= c.max_abs_error());
        assert!((c.decode(c.encode(9.0)) - 1.0).abs() <= 2.0 * c.max_abs_error());
    }

    #[test]
    fn constant_array_is_exact() {
        let c = NormCodec::new(4.2, 4.2);
        assert!((c.decode(c.encode(4.2)) - 4.2).abs() < 1e-6);
    }

    #[test]
    fn from_stats_widens_range() {
        let s = FieldStats::of_slice(&[-1.0, 1.0]);
        let c = NormCodec::from_stats(&s);
        assert!(c.vmin() < -1.0);
        assert!(c.vmax() > 1.0);
        // A fine-run value 5 % beyond the coarse range still encodes.
        let v = 1.05f32;
        assert!((c.decode(c.encode(v)) - v).abs() <= c.max_abs_error());
    }

    #[test]
    fn zero_count_stats_fall_back() {
        let c = NormCodec::from_stats(&FieldStats::empty());
        assert_eq!(c.decode(c.encode(0.0)), 0.0);
    }

    /// The codec must be monotone: a larger input never decodes smaller.
    #[test]
    fn encoding_is_monotone() {
        let c = NormCodec::new(-2.0, 2.0);
        let mut prev = c.encode(-2.0);
        let mut v = -2.0f32;
        while v <= 2.0 {
            let e = c.encode(v);
            assert!(e >= prev, "monotonicity broken at {v}");
            prev = e;
            v += 0.003;
        }
    }

    /// Fig. 5d labels methods by what they apply to; method (3) serves
    /// velocity/stress arrays whose range is symmetric around zero — check
    /// signedness survives.
    #[test]
    fn symmetric_range_keeps_sign() {
        let c = NormCodec::new(-0.25, 0.25);
        assert!(c.decode(c.encode(-0.1)) < 0.0);
        assert!(c.decode(c.encode(0.1)) > 0.0);
        assert!(c.decode(c.encode(0.0)).abs() <= c.max_abs_error());
    }
}
