//! Property and seeded-fuzz tests for the plane-granular resident codecs.
//!
//! The resident store keeps lossy 16-bit state *live* across thousands of
//! steps, so these tests pin the codec contract on adversarial inputs:
//! denormals, magnitudes adjacent to ±∞, all-zero planes, and sign flips —
//! and check that the streaming plane/z-run paths agree bit for bit with
//! whole-field encodes.

use sw_compress::{
    calibrated_codec, max_abs_bucket, Codec, Codec16, CompressedField3, EncodeStats, FieldStats,
    ResidentField3,
};
use sw_grid::{Dims3, Field3};

/// Deterministic xorshift PRNG so "fuzz" failures replay exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [-1, 1).
    fn uniform(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 23) as f32 * 2.0 - 1.0
    }

    /// Uniform integer in [lo, hi].
    fn int(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i32
    }
}

fn bases() -> [(&'static str, Codec); 3] {
    let empty = FieldStats::empty();
    [
        ("adaptive", Codec::paper_assignment("xx", &empty)),
        ("norm", Codec::paper_assignment("lam", &empty)),
        ("f16", Codec::paper_assignment("u", &empty)),
    ]
}

/// The per-plane error bound the calibration contract promises for a plane
/// whose finite max-abs lands in `bucket` (within the clamp window — the
/// extreme-magnitude saturation cases are pinned separately below).
fn binade_bound(family: &str, codec: &Codec, bucket: i32, max_abs: f32) -> f32 {
    match family {
        // Declared worst case of the calibrated window.
        "adaptive" | "norm" => codec.max_abs_error(),
        // binary16: half-ULP relative error down to the subnormal floor.
        "f16" => {
            let _ = bucket;
            max_abs * 2.0f32.powi(-10) + 2.0f32.powi(-24)
        }
        _ => unreachable!(),
    }
}

fn encode_one_plane(base: Codec, values: &[f32]) -> (ResidentField3, EncodeStats, usize) {
    // One interior x-plane wide enough to hold `values` in its first row.
    let d = Dims3::new(1, 1, values.len());
    let mut f = Field3::new(d, 2);
    for (z, &v) in values.iter().enumerate() {
        f.set(0, 0, z, v);
    }
    let mut r = ResidentField3::new(d, 2, base);
    let p = 2; // first interior plane (halo = 2)
    let stats = r.encode_plane(p, f.plane(p));
    (r, stats, p)
}

#[test]
fn adversarial_planes_respect_binade_bound() {
    let adversarial: &[&[f32]] = &[
        // Denormal-only plane.
        &[1.0e-40, -3.0e-39, 7.7e-42, 0.0, -1.2e-44],
        // Mixed denormal/normal.
        &[1.0e-40, 2.0e-20, -5.0e-30, 4.0e-38],
        // Tiny normals straddling the smallest-normal boundary.
        &[f32::MIN_POSITIVE, -f32::MIN_POSITIVE * 0.5, f32::MIN_POSITIVE * 2.0],
        // Moderate values with sign flips.
        &[0.5, -0.5, 0.25, -0.25, 1.0e-3, -1.0e-3],
        // Wide dynamic range within one plane (34 binades, f16-finite).
        &[1.0e-6, -3.0e2, 7.0e-1, -2.0e4],
    ];
    for (family, base) in bases() {
        for (i, plane) in adversarial.iter().enumerate() {
            let (r, stats, p) = encode_one_plane(base, plane);
            let bucket = max_abs_bucket(stats.max_abs);
            let codec = calibrated_codec(&base, bucket);
            let bound = binade_bound(family, &codec, bucket, stats.max_abs);
            assert!(
                stats.max_err <= bound,
                "{family} plane {i}: err {} vs bound {bound}",
                stats.max_err
            );
            assert_eq!(stats.nonfinite, 0);
            // Spot-check through the point decoder too.
            for (z, &v) in plane.iter().enumerate() {
                let got = r.get(0, 0, z);
                assert!((got - v).abs() <= bound, "{family} plane {i} z {z}: {got} vs {v}");
            }
            let _ = p;
        }
    }
}

#[test]
fn infinity_adjacent_magnitudes_saturate_deterministically() {
    // |v| near f32::MAX exceeds every calibrated window; the contract is
    // deterministic saturation (or f16 overflow to ±inf), never garbage.
    let plane: &[f32] = &[3.0e38, -3.0e38, f32::MAX, -f32::MAX, 1.0];
    for (family, base) in bases() {
        let (r, stats, _) = encode_one_plane(base, plane);
        assert_eq!(stats.nonfinite, 0, "inputs are finite");
        for (z, &v) in plane.iter().enumerate() {
            let got = r.get(0, 0, z);
            if family == "f16" && v.abs() > 65504.0 {
                assert!(got.is_infinite() && got.signum() == v.signum(), "{family}: {got}");
            } else {
                assert!(got.is_finite(), "{family} z {z}: {got}");
                assert_eq!(got.signum(), v.signum(), "{family} z {z}");
                assert!(got.abs() <= v.abs() * 1.01, "{family} z {z}: {got} vs {v}");
            }
        }
        // Saturation must be stable: re-encoding the decoded plane is a
        // fixed point (no walk-down on repeated round trips).
        let f1 = r.to_field();
        let r2 = ResidentField3::from_field_with_buckets(&f1, base, r.plane_buckets());
        if family != "f16" {
            assert_eq!(r.to_field().raw(), r2.to_field().raw(), "{family}: unstable saturation");
        }
    }
}

#[test]
fn all_zero_planes_are_exact_and_free() {
    for (family, base) in bases() {
        let (r, stats, _) = encode_one_plane(base, &[0.0; 32]);
        assert_eq!(stats.max_abs, 0.0, "{family}");
        assert_eq!(stats.max_err, 0.0, "{family}");
        assert_eq!(stats.rel_err(), 0.0, "{family}");
        let f = r.to_field();
        assert_eq!(f.max_abs(), 0.0, "{family}: zero plane must decode to exact zeros");
    }
}

#[test]
fn sign_flip_symmetry() {
    let values: Vec<f32> = (0..64).map(|i| ((i as f32 * 0.37).sin()) * 0.8).collect();
    let negated: Vec<f32> = values.iter().map(|v| -v).collect();
    for (family, base) in bases() {
        let (r_pos, _, _) = encode_one_plane(base, &values);
        let (r_neg, _, _) = encode_one_plane(base, &negated);
        for z in 0..values.len() {
            let a = r_pos.get(0, 0, z);
            let b = r_neg.get(0, 0, z);
            match family {
                // Sign lives in a dedicated bit: mirroring is exact.
                "adaptive" | "f16" => {
                    assert_eq!((-a).to_bits(), b.to_bits(), "{family} z {z}: {a} vs {b}")
                }
                // Affine normalization is symmetric only to within one
                // quantum of the (power-of-two) range.
                "norm" => {
                    let quantum = calibrated_codec(&base, r_pos.plane_buckets()[2]).max_abs_error();
                    assert!((a + b).abs() <= 2.0 * quantum, "{family} z {z}: {a} vs {b}");
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn seeded_fuzz_roundtrip_error_bounded() {
    let mut rng = Rng::new(0x5eed_cafe_f00d);
    for trial in 0..200 {
        // Random binade from deep denormal to near-overflow-safe.
        let exp = rng.int(-135, 110);
        let scale = 2.0f32.powi(exp);
        let n = 16 + (rng.next_u64() % 48) as usize;
        let plane: Vec<f32> = (0..n)
            .map(|_| {
                let v = rng.uniform() * scale;
                // Sprinkle exact zeros.
                if rng.next_u64().is_multiple_of(7) {
                    0.0
                } else {
                    v
                }
            })
            .collect();
        for (family, base) in bases() {
            let (_, stats, _) = encode_one_plane(base, &plane);
            if stats.max_abs == 0.0 {
                assert_eq!(stats.max_err, 0.0);
                continue;
            }
            if family == "f16" && stats.max_abs > 65504.0 {
                // binary16 overflows to ±inf above its max finite value;
                // the health feed sees the unbounded error and trips the
                // budget gate — the contract for out-of-format planes.
                assert!(stats.max_err.is_infinite(), "trial {trial}: expected f16 overflow");
                continue;
            }
            let bucket = max_abs_bucket(stats.max_abs);
            let codec = calibrated_codec(&base, bucket);
            let bound = binade_bound(family, &codec, bucket, stats.max_abs);
            assert!(
                stats.max_err <= bound,
                "trial {trial} {family}: exp {exp} err {} vs bound {bound}",
                stats.max_err
            );
        }
    }
}

#[test]
fn z_run_encode_agrees_bitwise_with_whole_field_encode() {
    let d = Dims3::new(5, 4, 16);
    let mut f = Field3::new(d, 2);
    f.fill_with(|x, y, z| ((x * 31 + y * 7 + z) as f32 * 0.618).sin() * 0.4);
    let stats = FieldStats::of_field(&f);
    for name in ["u", "xx", "lam"] {
        let codec = Codec::paper_assignment(name, &stats);
        let whole = CompressedField3::from_field(&f, codec);
        // Streaming path: encode interior z-run by z-run into a fresh field.
        let mut streamed = CompressedField3::new(d, 2, codec);
        for x in 0..d.nx {
            for y in 0..d.ny {
                streamed.encode_z_run(x, y, f.row(x, y));
            }
        }
        for x in 0..d.nx {
            for y in 0..d.ny {
                for z in 0..d.nz {
                    assert_eq!(
                        streamed.get(x, y, z).to_bits(),
                        whole.get(x, y, z).to_bits(),
                        "{name} ({x},{y},{z})"
                    );
                }
            }
        }
    }
}

#[test]
fn resident_plane_path_agrees_bitwise_with_whole_field_decode() {
    let d = Dims3::new(6, 5, 9);
    let mut f = Field3::new(d, 2);
    f.fill_with(|x, y, z| ((x * 13 + y * 5 + z * 3) as f32).cos() * 2.0f32.powi(x as i32 - 3));
    for (_, base) in bases() {
        let r = ResidentField3::from_field(&f, base);
        let whole = r.to_field();
        // Point decodes and streaming plane decodes must match the
        // whole-field decode bit for bit.
        let mut buf = vec![0.0f32; r.plane_len()];
        for p in 0..r.plane_count() {
            r.decode_plane_into(p, &mut buf);
            assert_eq!(&buf[..], whole.plane(p), "plane {p}");
        }
        for x in 0..d.nx {
            for y in 0..d.ny {
                for z in 0..d.nz {
                    assert_eq!(r.get(x, y, z).to_bits(), whole.get(x, y, z).to_bits());
                }
            }
        }
    }
}
