//! Stable bench-report schema and the regression comparator.
//!
//! The bench harness writes one [`BenchReport`] (`BENCH_<name>.json`) per
//! run; `swquake bench-diff old.json new.json --tolerance 0.15` parses two
//! of them with [`compare`] and fails when any benchmark's median slowed
//! down by more than the tolerance, or when a benchmark disappeared. CI
//! runs this as the perf-regression gate, so both ends of the pipe live
//! here next to the report schema they share.

use serde::{Deserialize, Serialize};

/// Version stamp embedded in every [`BenchReport`].
///
/// History: v1 = ratio/throughput records; v2 adds the optional
/// per-record `tolerance` (overrides the CLI default for that record)
/// and `host` (a [`crate::perf::HostFingerprint`] id — absolute records
/// from different hosts are skipped rather than compared). v1 files
/// still parse: the new fields read as `None`.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Summary of one benchmark: sample statistics over measured wall times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark id, e.g. `dvelcx/64x64x64`.
    pub name: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Median seconds per iteration (the comparison metric: robust to
    /// scheduler noise in a way the mean is not).
    pub median_s: f64,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Fastest sample, seconds per iteration.
    pub min_s: f64,
    /// Slowest sample, seconds per iteration.
    pub max_s: f64,
    /// Declared throughput denominator per iteration (elements, cells,
    /// bytes, or 1.0 with unit `"iters"` when the bench declared none).
    pub throughput: f64,
    /// Unit of `throughput`, e.g. `"elements"`, `"cells"`, `"bytes"`,
    /// `"ratio"`, `"iters"`. An empty unit is a placeholder and makes
    /// [`compare`] fail — real records always declare what they measure.
    pub throughput_unit: String,
    /// Per-record tolerance override (fractional slowdown allowed);
    /// `None` uses the comparison-wide tolerance. Schema v2.
    pub tolerance: Option<f64>,
    /// Host fingerprint id for absolute (machine-dependent) records;
    /// `None` marks a machine-independent record (e.g. a ratio). Two
    /// records with differing fingerprints are skipped, not compared.
    /// Schema v2.
    pub host: Option<String>,
}

/// A full bench run: schema stamp + one record per benchmark.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version stamp ([`BENCH_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// One record per benchmark, in registration order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report with the current schema stamp.
    pub fn new() -> Self {
        Self { schema_version: BENCH_SCHEMA_VERSION, records: Vec::new() }
    }

    /// Look up a record by benchmark id.
    pub fn record(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("bench report serialization is infallible")
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Write to a file as JSON.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read and parse a report file.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<Result<Self, serde_json::Error>> {
        Ok(Self::from_json(&std::fs::read_to_string(path)?))
    }
}

/// Verdict on one benchmark present in both reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchDiffEntry {
    /// Benchmark id.
    pub name: String,
    /// Old median, seconds per iteration.
    pub old_median_s: f64,
    /// New median, seconds per iteration.
    pub new_median_s: f64,
    /// `new / old` (1.0 when both are 0; a large sentinel never occurs —
    /// a zero old median with a nonzero new one flags as regressed with
    /// the raw ratio of the values clamped into finite range).
    pub ratio: f64,
    /// The tolerance this record was judged against (the old record's
    /// own `tolerance` when set, else the comparison-wide one).
    pub tolerance: f64,
    /// True when `ratio > 1 + tolerance`.
    pub regressed: bool,
}

/// The result of comparing two bench reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchComparison {
    /// Allowed fractional slowdown before a benchmark counts as regressed
    /// (0.15 = new median may be up to 15% slower).
    pub tolerance: f64,
    /// Per-benchmark verdicts, in old-report order.
    pub entries: Vec<BenchDiffEntry>,
    /// Benchmarks in the old report but not the new one (counts as
    /// failure: a silently dropped bench would mask a regression).
    pub missing: Vec<String>,
    /// Benchmarks only in the new report (informational).
    pub added: Vec<String>,
    /// Unit problems: empty `throughput_unit` on any record (placeholder
    /// data must not gate anything) or an old/new unit mismatch (the two
    /// records measure different things). Any entry fails the comparison
    /// and the CLI treats it as a usage error (exit 2).
    pub unit_errors: Vec<String>,
    /// Benchmarks skipped because both records carry a host fingerprint
    /// and the fingerprints differ (informational: absolute numbers from
    /// different machines are not comparable).
    pub host_skipped: Vec<String>,
}

impl BenchComparison {
    /// True when nothing regressed, nothing went missing, and no record
    /// had a unit problem.
    pub fn passed(&self) -> bool {
        self.missing.is_empty()
            && self.unit_errors.is_empty()
            && self.entries.iter().all(|e| !e.regressed)
    }

    /// Human-readable verdict table.
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<40} {:>12} {:>12} {:>8}  verdict\n",
            "benchmark", "old median", "new median", "ratio"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<40} {:>12} {:>12} {:>7.3}x  {}\n",
                e.name,
                format_seconds(e.old_median_s),
                format_seconds(e.new_median_s),
                e.ratio,
                if e.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<40} missing from new report  FAIL\n"));
        }
        for name in &self.added {
            out.push_str(&format!("{name:<40} new benchmark (no baseline)\n"));
        }
        for name in &self.host_skipped {
            out.push_str(&format!("{name:<40} host differs — skipped\n"));
        }
        for err in &self.unit_errors {
            out.push_str(&format!("UNIT ERROR: {err}\n"));
        }
        let verdict = if self.passed() { "PASS" } else { "FAIL" };
        out.push_str(&format!(
            "{} ({} compared, {} regressed, {} missing, {} skipped, {} unit errors, \
             tolerance {:.0}%)\n",
            verdict,
            self.entries.len(),
            self.entries.iter().filter(|e| e.regressed).count(),
            self.missing.len(),
            self.host_skipped.len(),
            self.unit_errors.len(),
            self.tolerance * 100.0
        ));
        out
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Compare two bench reports: every benchmark in `old` must still exist
/// in `new` with a median no more than `tolerance` slower (a record's
/// own `tolerance` field, when set, overrides the default for it).
///
/// Records with an empty `throughput_unit` on either side, or with
/// mismatched units between old and new, are unit errors — they fail
/// the comparison outright. Records whose host fingerprints both exist
/// and differ are skipped (absolute numbers from different machines).
pub fn compare(old: &BenchReport, new: &BenchReport, tolerance: f64) -> BenchComparison {
    let tolerance = tolerance.max(0.0);
    let mut entries = Vec::new();
    let mut missing = Vec::new();
    let mut unit_errors = Vec::new();
    let mut host_skipped = Vec::new();
    for (side, report) in [("old", old), ("new", new)] {
        for r in &report.records {
            if r.throughput_unit.is_empty() {
                unit_errors.push(format!(
                    "{side} record `{}`: empty throughput_unit (placeholder throughput \
                     is not allowed; declare a real unit, e.g. `cells`)",
                    r.name
                ));
            }
        }
    }
    for o in &old.records {
        match new.record(&o.name) {
            None => missing.push(o.name.clone()),
            Some(n) => {
                if !o.throughput_unit.is_empty()
                    && !n.throughput_unit.is_empty()
                    && o.throughput_unit != n.throughput_unit
                {
                    unit_errors.push(format!(
                        "record `{}`: unit mismatch (old `{}` vs new `{}`) — \
                         the records measure different things",
                        o.name, o.throughput_unit, n.throughput_unit
                    ));
                    continue;
                }
                if let (Some(oh), Some(nh)) = (&o.host, &n.host) {
                    if oh != nh {
                        host_skipped.push(o.name.clone());
                        continue;
                    }
                }
                let ratio = if o.median_s > 0.0 {
                    n.median_s / o.median_s
                } else if n.median_s == 0.0 {
                    1.0
                } else {
                    // Old median was 0 (degenerate baseline) but new is
                    // not: flag it, with a finite stand-in ratio.
                    f64::MAX
                };
                let tol = o.tolerance.unwrap_or(tolerance).max(0.0);
                entries.push(BenchDiffEntry {
                    name: o.name.clone(),
                    old_median_s: o.median_s,
                    new_median_s: n.median_s,
                    ratio,
                    tolerance: tol,
                    regressed: ratio > 1.0 + tol,
                });
            }
        }
    }
    let added = new
        .records
        .iter()
        .filter(|n| old.record(&n.name).is_none())
        .map(|n| n.name.clone())
        .collect();
    BenchComparison { tolerance, entries, missing, added, unit_errors, host_skipped }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, median_s: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            samples: 10,
            median_s,
            mean_s: median_s,
            min_s: median_s * 0.9,
            max_s: median_s * 1.1,
            throughput: 4096.0,
            throughput_unit: "elements".to_string(),
            tolerance: None,
            host: None,
        }
    }

    fn report(records: Vec<BenchRecord>) -> BenchReport {
        BenchReport { schema_version: BENCH_SCHEMA_VERSION, records }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![record("a", 1e-3), record("b", 2e-3)]);
        let cmp = compare(&r, &r, 0.1);
        assert!(cmp.passed());
        assert_eq!(cmp.entries.len(), 2);
        assert!(cmp.entries.iter().all(|e| e.ratio == 1.0));
        assert!(cmp.text_table().contains("PASS"));
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let old = report(vec![record("a", 1e-3)]);
        let new = report(vec![record("a", 1.2e-3)]);
        assert!(!compare(&old, &new, 0.1).passed());
        assert!(compare(&old, &new, 0.25).passed(), "20% slower is inside 25% tolerance");
        assert!(compare(&old, &new, 0.1).text_table().contains("REGRESSED"));
    }

    #[test]
    fn speedups_always_pass() {
        let old = report(vec![record("a", 1e-3)]);
        let new = report(vec![record("a", 0.2e-3)]);
        let cmp = compare(&old, &new, 0.0);
        assert!(cmp.passed());
        assert!(cmp.entries[0].ratio < 1.0);
    }

    #[test]
    fn missing_bench_fails_and_added_is_informational() {
        let old = report(vec![record("a", 1e-3), record("gone", 1e-3)]);
        let new = report(vec![record("a", 1e-3), record("fresh", 1e-3)]);
        let cmp = compare(&old, &new, 0.1);
        assert!(!cmp.passed());
        assert_eq!(cmp.missing, vec!["gone".to_string()]);
        assert_eq!(cmp.added, vec!["fresh".to_string()]);
    }

    #[test]
    fn zero_old_median_is_handled() {
        let old = report(vec![record("z", 0.0)]);
        let same = compare(&old, &old, 0.1);
        assert!(same.passed(), "0 vs 0 is not a regression");
        let new = report(vec![record("z", 1e-6)]);
        assert!(!compare(&old, &new, 0.1).passed());
    }

    #[test]
    fn empty_unit_is_a_unit_error() {
        let mut placeholder = record("exec/ratio", 0.6);
        placeholder.throughput = 0.0;
        placeholder.throughput_unit = String::new();
        let old = report(vec![placeholder.clone()]);
        let new = report(vec![placeholder]);
        let cmp = compare(&old, &new, 0.1);
        assert!(!cmp.passed(), "empty-unit placeholders must not gate anything");
        assert_eq!(cmp.unit_errors.len(), 2, "flagged on both sides");
        assert!(cmp.text_table().contains("UNIT ERROR"));
    }

    #[test]
    fn unit_mismatch_is_a_unit_error() {
        let old = report(vec![record("a", 1e-3)]);
        let mut changed = record("a", 1e-3);
        changed.throughput_unit = "bytes".to_string();
        let new = report(vec![changed]);
        let cmp = compare(&old, &new, 0.1);
        assert!(!cmp.passed());
        assert_eq!(cmp.unit_errors.len(), 1);
        assert!(cmp.unit_errors[0].contains("unit mismatch"));
        assert!(cmp.entries.is_empty(), "mismatched records are not compared");
    }

    #[test]
    fn per_record_tolerance_overrides_default() {
        let mut lax = record("a", 1e-3);
        lax.tolerance = Some(10.0); // allow 10x
        let old = report(vec![lax]);
        let new = report(vec![record("a", 5e-3)]);
        let cmp = compare(&old, &new, 0.0);
        assert!(cmp.passed(), "5x slowdown is inside the record's own 10x tolerance");
        assert_eq!(cmp.entries[0].tolerance, 10.0);
        let strict = report(vec![record("a", 1e-3)]);
        assert!(!compare(&strict, &new, 0.0).passed(), "without the override it regresses");
    }

    #[test]
    fn differing_hosts_skip_instead_of_compare() {
        let mut o = record("abs/step", 1e-3);
        o.host = Some("hostA".to_string());
        let mut n = record("abs/step", 9e-3);
        n.host = Some("hostB".to_string());
        let cmp = compare(&report(vec![o.clone()]), &report(vec![n.clone()]), 0.0);
        assert!(cmp.passed(), "cross-host absolutes are informational, not gates");
        assert_eq!(cmp.host_skipped, vec!["abs/step".to_string()]);
        n.host = Some("hostA".to_string());
        let cmp = compare(&report(vec![o]), &report(vec![n]), 0.0);
        assert!(!cmp.passed(), "same host compares for real");
    }

    #[test]
    fn v1_reports_without_new_fields_still_parse() {
        let v1 = r#"{
            "schema_version": 1,
            "records": [{
                "name": "a", "samples": 3, "median_s": 0.001, "mean_s": 0.001,
                "min_s": 0.0009, "max_s": 0.0011,
                "throughput": 10.0, "throughput_unit": "elements"
            }]
        }"#;
        let r = BenchReport::from_json(v1).unwrap();
        assert_eq!(r.records[0].tolerance, None);
        assert_eq!(r.records[0].host, None);
    }

    #[test]
    fn report_json_roundtrip() {
        let r = report(vec![record("kernels/dvelcx", 3.25e-4)]);
        let text = r.to_json();
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("swquake_bench_schema_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let r = report(vec![record("a", 1e-3)]);
        r.write_file(&path).unwrap();
        assert_eq!(BenchReport::read_file(&path).unwrap().unwrap(), r);
        std::fs::remove_file(&path).ok();
    }
}
