//! Step-aligned per-rank run timeline and load-imbalance attribution.
//!
//! The paper's scaling story (§7: 88 % parallel efficiency on 160 k
//! processes) rests on knowing *where* ranks wait. The aggregate timers in
//! the telemetry [`crate::Report`] answer "how much time did phase X take
//! in total", but not "which rank was the straggler" — and the ROADMAP's
//! local-time-stepping and out-of-core arcs need exactly that attribution
//! before they can be built or validated.
//!
//! [`TimelineRecorder`] is the collection side: a thread-safe accumulator
//! fed from the driver's step loop (one slot per rank × phase), from the
//! halo exchanger's wait/pack/unpack split, and from per-field
//! resident-bytes gauges. Like the perf recorder it is attached as an
//! `Option<Arc<_>>` hook: when absent the instrumented code paths collapse
//! to a branch on `None`, and recording never touches the numerics — an
//! instrumented run is bit-identical to an uninstrumented one.
//!
//! [`TimelineReport`] is the analysis side (schema v1): per-phase per-rank
//! wall time, skew `(max − min) / mean`, the critical-path rank (most
//! non-wait work), the halo-wait fraction, and a per-field memory block
//! with an allocation high-water mark. The CLI writes it as
//! `timeline.json` and gates on it with `swquake imbalance-report`.
//!
//! With a stream attached ([`TimelineRecorder::with_stream`]) the recorder
//! also emits heartbeat lines to `<dir>/run.jsonl` every `stride` steps —
//! mirroring the campaign engine's `campaign.jsonl` heartbeats — so a long
//! run can be watched live with `tail -f`. A final line (`"final": true`)
//! is always written on [`TimelineRecorder::finish`], even when the stride
//! exceeds the step count.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::lock;

/// Version stamp of [`TimelineReport`]. Bump on breaking changes.
pub const TIMELINE_SCHEMA_VERSION: u32 = 1;

/// Default heartbeat stride (steps between `run.jsonl` lines).
pub const DEFAULT_HEARTBEAT_STRIDE: u64 = 10;

/// File name of the streamed heartbeat log inside an `--obs` directory.
pub const RUN_LOG_NAME: &str = "run.jsonl";

/// File name of the final report inside an `--obs` directory.
pub const TIMELINE_NAME: &str = "timeline.json";

/// Well-known phase names recorded by the driver and halo exchanger.
/// Anything else is accepted too; these constants just keep the producer
/// and the tests in agreement.
pub mod phase {
    /// Velocity half-step (free surface + velocity update).
    pub const VELOCITY: &str = "velocity";
    /// Stress half-step (stress, source, plasticity, sponge, compression).
    pub const STRESS: &str = "stress";
    /// Step bookkeeping (seismogram/PGV record, checkpoint, health check).
    pub const FINISH: &str = "finish";
    /// Halo packing (serialize faces into send buffers).
    pub const HALO_PACK: &str = "halo.pack";
    /// Time blocked waiting on halo neighbors — the imbalance signal.
    pub const HALO_WAIT: &str = "halo.wait";
    /// Halo unpacking (copy received faces into ghost cells).
    pub const HALO_UNPACK: &str = "halo.unpack";
}

#[derive(Debug, Default)]
struct PhaseSlot {
    /// Accumulated seconds, indexed by rank (grown on demand).
    per_rank_s: Vec<f64>,
    /// Span count per rank.
    calls: Vec<u64>,
}

#[derive(Debug)]
struct Inner {
    /// Highest rank index seen + 1.
    ranks: usize,
    /// Expected total steps (0 when unknown): drives the heartbeat ETA.
    total_steps: u64,
    phases: BTreeMap<String, PhaseSlot>,
    /// Steps completed per rank.
    steps: Vec<u64>,
    /// Total step wall seconds per rank.
    step_wall_s: Vec<f64>,
    /// Per-field resident bytes, indexed by rank.
    memory: BTreeMap<String, Vec<u64>>,
    /// Largest total resident-bytes sum ever observed.
    high_water_bytes: u64,
    /// Wavefield storage mode of the run (`full` / `compressed16`),
    /// `None` until a driver declares it.
    resident_mode: Option<String>,
}

impl Inner {
    fn grow(&mut self, rank: usize) {
        if rank >= self.ranks {
            self.ranks = rank + 1;
        }
        if self.steps.len() < self.ranks {
            self.steps.resize(self.ranks, 0);
            self.step_wall_s.resize(self.ranks, 0.0);
        }
    }
}

struct Stream {
    stride: u64,
    file: Mutex<fs::File>,
}

/// Thread-safe collector for per-rank, per-phase wall time and per-field
/// resident memory. Attach one (as `Arc<TimelineRecorder>`) to each rank's
/// `SimConfig`; every rank feeds the same recorder and
/// [`Self::report`] aggregates across them.
pub struct TimelineRecorder {
    inner: Mutex<Inner>,
    stream: Option<Stream>,
    started: Instant,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TimelineRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineRecorder")
            .field("streaming", &self.stream.is_some())
            .finish_non_exhaustive()
    }
}

impl TimelineRecorder {
    /// A recorder with no heartbeat stream (aggregation only).
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                ranks: 0,
                total_steps: 0,
                phases: BTreeMap::new(),
                steps: Vec::new(),
                step_wall_s: Vec::new(),
                memory: BTreeMap::new(),
                high_water_bytes: 0,
                resident_mode: None,
            }),
            stream: None,
            started: Instant::now(),
        }
    }

    /// Declare the expected step count (enables heartbeat ETAs).
    pub fn with_total_steps(self, steps: u64) -> Self {
        lock(&self.inner).total_steps = steps;
        self
    }

    /// Attach a heartbeat stream: creates `dir` and truncates
    /// `dir/run.jsonl`; a line is emitted every `stride` steps of rank 0
    /// (stride 0 is treated as 1) plus a final line on [`Self::finish`].
    pub fn with_stream(mut self, dir: &Path, stride: u64) -> std::io::Result<Self> {
        fs::create_dir_all(dir)?;
        let file = fs::File::create(dir.join(RUN_LOG_NAME))?;
        self.stream = Some(Stream { stride: stride.max(1), file: Mutex::new(file) });
        Ok(self)
    }

    /// Accumulate `seconds` of wall time into `(rank, phase)`.
    pub fn record_phase(&self, rank: usize, phase: &str, seconds: f64) {
        let mut inner = lock(&self.inner);
        inner.grow(rank);
        let ranks = inner.ranks;
        let slot = inner.phases.entry(phase.to_string()).or_default();
        if slot.per_rank_s.len() < ranks {
            slot.per_rank_s.resize(ranks, 0.0);
            slot.calls.resize(ranks, 0);
        }
        slot.per_rank_s[rank] += seconds.max(0.0);
        slot.calls[rank] += 1;
    }

    /// Declare how the run stores its wavefields (`full` /
    /// `compressed16`); echoed in heartbeats and the report.
    pub fn set_resident_mode(&self, mode: impl Into<String>) {
        lock(&self.inner).resident_mode = Some(mode.into());
    }

    /// Record the current resident bytes of one named field on `rank`
    /// (idempotent: re-recording replaces the value). The total across all
    /// fields and ranks feeds the high-water mark.
    pub fn record_memory(&self, rank: usize, field: &str, bytes: u64) {
        let mut inner = lock(&self.inner);
        inner.grow(rank);
        let ranks = inner.ranks;
        let slot = inner.memory.entry(field.to_string()).or_default();
        if slot.len() < ranks {
            slot.resize(ranks, 0);
        }
        slot[rank] = bytes;
        let total: u64 = inner.memory.values().flatten().sum();
        if total > inner.high_water_bytes {
            inner.high_water_bytes = total;
        }
    }

    /// Mark one completed step on `rank` with its wall seconds. When a
    /// stream is attached and `rank` is 0, a heartbeat line is emitted
    /// every `stride` steps.
    pub fn note_step(&self, rank: usize, step: u64, wall_s: f64) {
        let due = {
            let mut inner = lock(&self.inner);
            inner.grow(rank);
            inner.steps[rank] = inner.steps[rank].max(step);
            inner.step_wall_s[rank] += wall_s.max(0.0);
            rank == 0
                && step > 0
                && self.stream.as_ref().is_some_and(|s| step.is_multiple_of(s.stride))
        };
        if due {
            self.emit_heartbeat(false);
        }
    }

    /// Emit the final heartbeat line (always, regardless of stride) and
    /// return the aggregated report. Safe to call without a stream.
    pub fn finish(&self) -> TimelineReport {
        self.emit_heartbeat(true);
        self.report()
    }

    fn emit_heartbeat(&self, fin: bool) {
        let Some(stream) = &self.stream else { return };
        let rep = self.report();
        let step = rep.steps;
        let eta_s = if fin || rep.total_steps == 0 || step == 0 {
            0.0
        } else {
            rep.wall_s / step as f64 * rep.total_steps.saturating_sub(step) as f64
        };
        let mut line = serde_json::json!({
            "event": "heartbeat",
            "final": fin,
            "step": step,
            "steps_total": rep.total_steps,
            "wall_s": rep.wall_s,
            "eta_s": eta_s,
            "max_skew": rep.max_skew,
            "critical_rank": rep.critical_rank,
            "halo_wait_frac": rep.halo_wait_frac,
            "resident_bytes": rep.memory.resident_bytes,
        });
        if let Some(mode) = &rep.resident_mode {
            line["resident"] = serde_json::json!(mode);
        }
        let text = serde_json::to_string(&line).expect("heartbeat serialization is infallible");
        let mut file = lock(&stream.file);
        // Observability must never abort the run it observes: a full disk
        // degrades to missing heartbeats, not a failed simulation.
        let _ = writeln!(file, "{text}");
        let _ = file.flush();
    }

    /// Aggregate everything recorded so far into a schema-v1 report.
    pub fn report(&self) -> TimelineReport {
        let inner = lock(&self.inner);
        let ranks = inner.ranks.max(1);
        let mut phases = Vec::with_capacity(inner.phases.len());
        let mut busy = vec![0.0f64; ranks];
        let mut wait = vec![0.0f64; ranks];
        for (name, slot) in &inner.phases {
            let mut per_rank_s = slot.per_rank_s.clone();
            per_rank_s.resize(ranks, 0.0);
            let mut calls = slot.calls.clone();
            calls.resize(ranks, 0);
            let total: f64 = per_rank_s.iter().sum();
            let mean_s = total / ranks as f64;
            let min_s = per_rank_s.iter().copied().fold(f64::INFINITY, f64::min);
            let max_s = per_rank_s.iter().copied().fold(0.0f64, f64::max);
            let critical_rank = argmax(&per_rank_s);
            for (r, s) in per_rank_s.iter().enumerate() {
                if name == phase::HALO_WAIT {
                    wait[r] += s;
                } else {
                    busy[r] += s;
                }
            }
            phases.push(PhaseTimeline {
                name: name.clone(),
                per_rank_s,
                calls,
                mean_s,
                min_s: if min_s.is_finite() { min_s } else { 0.0 },
                max_s,
                skew: skew(min_s, max_s, mean_s),
                critical_rank,
            });
        }
        let max_skew = phases.iter().map(|p| p.skew).fold(0.0f64, f64::max);
        // The critical-path rank is the one doing the most *non-wait*
        // work: waits equalize total wall time across ranks, so including
        // them would hide the straggler they point at.
        let critical_rank = argmax(&busy);
        let busy_total: f64 = busy.iter().sum();
        let wait_total: f64 = wait.iter().sum();
        let halo_wait_frac = if busy_total + wait_total > 0.0 {
            wait_total / (busy_total + wait_total)
        } else {
            0.0
        };
        let mut fields = Vec::with_capacity(inner.memory.len());
        let mut resident_bytes = 0u64;
        for (name, slot) in &inner.memory {
            let mut per_rank_bytes = slot.clone();
            per_rank_bytes.resize(ranks, 0);
            let total_bytes: u64 = per_rank_bytes.iter().sum();
            resident_bytes += total_bytes;
            fields.push(MemoryField { name: name.clone(), per_rank_bytes, total_bytes });
        }
        TimelineReport {
            schema_version: TIMELINE_SCHEMA_VERSION,
            ranks,
            steps: inner.steps.iter().copied().max().unwrap_or(0),
            total_steps: inner.total_steps,
            wall_s: self.started.elapsed().as_secs_f64(),
            phases,
            critical_rank,
            max_skew,
            halo_wait_frac,
            memory: MemoryReport {
                fields,
                resident_bytes,
                high_water_bytes: inner.high_water_bytes.max(resident_bytes),
            },
            resident_mode: inner.resident_mode.clone(),
        }
    }
}

fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v > values[best] {
            best = i;
        }
    }
    best
}

/// Relative spread `(max − min) / mean`; 0 for degenerate (empty or
/// zero-duration) phases so the report never carries NaN.
fn skew(min_s: f64, max_s: f64, mean_s: f64) -> f64 {
    if mean_s > 0.0 && min_s.is_finite() {
        (max_s - min_s) / mean_s
    } else {
        0.0
    }
}

/// One phase's per-rank timing and its imbalance statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTimeline {
    /// Phase name (see [`phase`] for the well-known set).
    pub name: String,
    /// Accumulated wall seconds, indexed by rank.
    pub per_rank_s: Vec<f64>,
    /// Recorded span count per rank (0 marks a rank with missing spans).
    pub calls: Vec<u64>,
    /// Mean over ranks of the accumulated seconds.
    pub mean_s: f64,
    /// Fastest rank's accumulated seconds.
    pub min_s: f64,
    /// Slowest rank's accumulated seconds.
    pub max_s: f64,
    /// `(max − min) / mean`, 0 when the phase never ran.
    pub skew: f64,
    /// Rank holding `max_s` for this phase.
    pub critical_rank: usize,
}

/// One field's resident-memory gauge across ranks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryField {
    /// Field name (e.g. `state.u`, `fused.velocity`).
    pub name: String,
    /// Resident bytes, indexed by rank.
    pub per_rank_bytes: Vec<u64>,
    /// Sum over ranks.
    pub total_bytes: u64,
}

/// Working-set block of the timeline report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Per-field gauges, sorted by name.
    pub fields: Vec<MemoryField>,
    /// Current resident bytes summed over fields and ranks.
    pub resident_bytes: u64,
    /// Largest resident total ever observed during the run.
    pub high_water_bytes: u64,
}

/// Step-aligned per-rank timeline (schema v1): what `timeline.json`
/// holds and what `swquake imbalance-report` consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineReport {
    /// [`TIMELINE_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Number of ranks that reported (at least 1).
    pub ranks: usize,
    /// Highest completed step across ranks.
    pub steps: u64,
    /// Expected total steps (0 when unknown).
    pub total_steps: u64,
    /// Recorder lifetime wall seconds at snapshot time.
    pub wall_s: f64,
    /// Per-phase timings, sorted by phase name.
    pub phases: Vec<PhaseTimeline>,
    /// Rank with the most non-wait work — the load-imbalance culprit.
    pub critical_rank: usize,
    /// Largest per-phase skew in the report.
    pub max_skew: f64,
    /// Fraction of all recorded time spent blocked on halo neighbors.
    pub halo_wait_frac: f64,
    /// Per-field resident-bytes gauges and the allocation high-water mark.
    pub memory: MemoryReport,
    /// Wavefield storage mode (`full` / `compressed16`); absent in
    /// reports from builds or runs that never declared one (additive,
    /// schema v1 stays parseable).
    pub resident_mode: Option<String>,
}

impl TimelineReport {
    /// Phases whose skew exceeds `floor`, for the imbalance gate.
    pub fn phases_over(&self, floor: f64) -> Vec<&PhaseTimeline> {
        self.phases.iter().filter(|p| p.skew > floor).collect()
    }

    /// Human-readable table mirroring `perf-report`'s text form.
    pub fn text_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "timeline v{}  ranks: {}  steps: {}  wall: {:.3}s\n",
            self.schema_version, self.ranks, self.steps, self.wall_s
        ));
        out.push_str(&format!(
            "critical rank: {}  max skew: {:.3}  halo wait: {:.1}%\n",
            self.critical_rank,
            self.max_skew,
            self.halo_wait_frac * 100.0
        ));
        out.push_str(&format!(
            "resident: {:.1} MiB (high water {:.1} MiB)\n",
            self.memory.resident_bytes as f64 / (1024.0 * 1024.0),
            self.memory.high_water_bytes as f64 / (1024.0 * 1024.0)
        ));
        if let Some(mode) = &self.resident_mode {
            out.push_str(&format!("resident mode: {mode}\n"));
        }
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>10} {:>8} {:>9}\n",
            "phase", "mean_s", "min_s", "max_s", "skew", "crit-rank"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>8.3} {:>9}\n",
                p.name, p.mean_s, p.min_s, p.max_s, p.skew, p.critical_rank
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_guards_degenerate_phases() {
        assert_eq!(skew(f64::INFINITY, 0.0, 0.0), 0.0);
        assert_eq!(skew(0.0, 0.0, 0.0), 0.0);
        assert!((skew(1.0, 3.0, 2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_per_rank_phases() {
        let rec = TimelineRecorder::new();
        rec.record_phase(0, phase::STRESS, 1.0);
        rec.record_phase(1, phase::STRESS, 3.0);
        rec.record_phase(0, phase::HALO_WAIT, 2.0);
        let rep = rec.report();
        assert_eq!(rep.ranks, 2);
        let stress = rep.phases.iter().find(|p| p.name == phase::STRESS).unwrap();
        assert_eq!(stress.critical_rank, 1);
        assert!((stress.skew - 1.0).abs() < 1e-12);
        // Rank 1 did the most non-wait work; rank 0's wait does not count.
        assert_eq!(rep.critical_rank, 1);
        assert!((rep.halo_wait_frac - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn memory_high_water_tracks_peak() {
        let rec = TimelineRecorder::new();
        rec.record_memory(0, "state.u", 100);
        rec.record_memory(0, "state.v", 200);
        rec.record_memory(0, "state.v", 50);
        let rep = rec.report();
        assert_eq!(rep.memory.resident_bytes, 150);
        assert_eq!(rep.memory.high_water_bytes, 300);
        assert_eq!(rep.memory.fields.len(), 2);
    }

    #[test]
    fn report_round_trips_through_json() {
        let rec = TimelineRecorder::new();
        rec.record_phase(0, phase::VELOCITY, 0.5);
        rec.note_step(0, 1, 0.5);
        let rep = rec.report();
        let text = serde_json::to_string(&rep).unwrap();
        let back: TimelineReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.schema_version, TIMELINE_SCHEMA_VERSION);
        assert_eq!(back.ranks, rep.ranks);
        assert_eq!(back.phases.len(), rep.phases.len());
    }
}
