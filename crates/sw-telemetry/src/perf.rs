//! Per-kernel performance ledger: schema, recorder, and the perf-diff
//! bridge into the bench comparator.
//!
//! The paper attributes performance kernel-by-kernel (velocity, stress,
//! attenuation, plasticity) against a machine model; this module is the
//! host-side equivalent. A [`PerfRecorder`] rides inside the driver as an
//! `Option<Arc<_>>` hook (same pattern as the fault and health hooks):
//! when absent every instrumentation site is a branch on `None`, when
//! present each production-step kernel accumulates wall time via scoped
//! guards ([`PerfRecorder::scope`]) and cell/flop/DMA-byte counts via
//! [`PerfRecorder::charge`]. The driver joins those counts with the
//! roofline model's predicted seconds and freezes everything into a
//! versioned [`PerfLedger`] (`perf.json`, schema v1) whose per-kernel
//! records carry derived cells/s, GFLOP/s, GB/s, and an
//! achieved-vs-roofline fraction.
//!
//! A ledger converts into a [`BenchReport`](crate::bench::BenchReport)
//! ([`PerfLedger::to_bench_report`]) so `swquake perf-diff` reuses the
//! same comparator (and unit/tolerance rules) as `bench-diff`, and
//! renders as a one-line JSON history record
//! ([`PerfLedger::history_line`]) for the durable `perf_history.jsonl`.

use crate::bench::{BenchRecord, BenchReport, BENCH_SCHEMA_VERSION};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version stamp embedded in every [`PerfLedger`].
pub const PERF_SCHEMA_VERSION: u32 = 1;

/// Canonical display order for the production-step kernels. Kernels not
/// in this list sort after it, alphabetically.
pub const KERNEL_ORDER: [&str; 11] = [
    "fstr",
    "dvelc",
    "dstrqc",
    "attenuation",
    "drprecpc",
    "sponge",
    "resident_decode",
    "resident_encode",
    "halo",
    "compression",
    "checkpoint",
];

/// Cap on retained per-step wall samples (enough for any production run
/// we gate in CI; percentiles over the first N steps after that).
const MAX_STEP_SAMPLES: usize = 65_536;

/// Where a ledger was measured, so absolute throughput numbers are only
/// ever compared apples-to-apples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostFingerprint {
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// CPU model string (from `/proc/cpuinfo` where available).
    pub cpu: String,
    /// Worker threads the run used (1 for serial execution).
    pub threads: u64,
}

impl HostFingerprint {
    /// Detect the current host, recording `threads` worker threads.
    pub fn detect(threads: u64) -> Self {
        Self {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpu: cpu_model(),
            threads,
        }
    }

    /// Stable identity string: equal ids mean comparable absolute numbers.
    pub fn id(&self) -> String {
        format!("{}/{}/{}/{}t", self.os, self.arch, self.cpu, self.threads)
    }
}

/// Best-effort CPU model name; `"unknown"` when the platform hides it.
fn cpu_model() -> String {
    if let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, value)) = rest.split_once(':') {
                    return value.trim().to_string();
                }
            }
        }
    }
    "unknown".to_string()
}

/// One kernel's measured counts and derived rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfKernel {
    /// Kernel name (one of [`KERNEL_ORDER`] for production kernels).
    pub name: String,
    /// Total wall seconds inside this kernel.
    pub wall_s: f64,
    /// Number of scoped invocations.
    pub calls: u64,
    /// Total cells (grid points) processed.
    pub cells: u64,
    /// Total floating-point operations (from the flop accountant).
    pub flops: f64,
    /// Total modeled DMA bytes (from the architecture model).
    pub dma_bytes: u64,
    /// `cells / wall_s` (0 when wall is 0).
    pub cells_per_s: f64,
    /// `flops / wall_s / 1e9`.
    pub gflops_per_s: f64,
    /// `dma_bytes / wall_s / 1e9`.
    pub gb_per_s: f64,
    /// Modeled SW26010 seconds / measured seconds: how close the host
    /// run comes to the roofline model's predicted time (0 for kernels
    /// the model does not cover, e.g. halo exchange and checkpoint I/O).
    pub roofline_fraction: f64,
}

impl PerfKernel {
    /// Build a record from raw counts, deriving the rates; `modeled_s` is
    /// the roofline model's predicted total seconds (0 = unmodeled).
    #[allow(clippy::too_many_arguments)] // flat counts, one per schema field
    pub fn from_counts(
        name: &str,
        wall_s: f64,
        calls: u64,
        cells: u64,
        flops: f64,
        dma_bytes: u64,
        modeled_s: f64,
    ) -> Self {
        let rate = |x: f64| if wall_s > 0.0 { x / wall_s } else { 0.0 };
        Self {
            name: name.to_string(),
            wall_s,
            calls,
            cells,
            flops,
            dma_bytes,
            cells_per_s: rate(cells as f64),
            gflops_per_s: rate(flops) / 1e9,
            gb_per_s: rate(dma_bytes as f64) / 1e9,
            roofline_fraction: rate(modeled_s),
        }
    }
}

/// A frozen per-kernel performance ledger for one run (schema v1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfLedger {
    /// Schema version stamp ([`PERF_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Where the run was measured.
    pub host: HostFingerprint,
    /// Time steps covered by the ledger.
    pub steps: u64,
    /// Grid cells per step (global, summed over ranks).
    pub grid_cells: u64,
    /// Total wall seconds across all instrumented steps.
    pub wall_s: f64,
    /// Nearest-rank p50 of per-step wall seconds.
    pub step_p50_s: f64,
    /// Nearest-rank p95 of per-step wall seconds.
    pub step_p95_s: f64,
    /// Resolved execution path the run routed kernels through
    /// ("serial" / "parallel" / "simd"). `None` in pre-extension
    /// ledgers (additive field; schema stays v1).
    pub exec_mode: Option<String>,
    /// Compiled feature set active for the run (e.g. "simd"), empty
    /// string for a default build. `None` in pre-extension ledgers.
    pub features: Option<String>,
    /// Wavefield storage mode of the run ("full" / "compressed16");
    /// `None` in pre-extension ledgers (additive field; schema stays v1).
    pub resident_mode: Option<String>,
    /// Per-kernel records, in [`KERNEL_ORDER`].
    pub kernels: Vec<PerfKernel>,
}

impl PerfLedger {
    /// Look up a kernel record by name.
    pub fn kernel(&self, name: &str) -> Option<&PerfKernel> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Kernels whose roofline fraction is known (> 0) but below `min`.
    pub fn below_fraction(&self, min: f64) -> Vec<&PerfKernel> {
        self.kernels
            .iter()
            .filter(|k| k.roofline_fraction > 0.0 && k.roofline_fraction < min)
            .collect()
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("perf ledger serialization is infallible")
    }

    /// Parse a ledger back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Write to a file as JSON.
    pub fn write_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read and parse a ledger file.
    pub fn read_file(path: &std::path::Path) -> std::io::Result<Result<Self, serde_json::Error>> {
        Ok(Self::from_json(&std::fs::read_to_string(path)?))
    }

    /// Human-readable throughput table; kernels with a known roofline
    /// fraction below `min_fraction` are flagged `LOW`.
    pub fn text_table(&self, min_fraction: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "host: {}  steps: {}  cells/step: {}  wall: {:.3} s  step p50/p95: {:.3e}/{:.3e} s\n",
            self.host.id(),
            self.steps,
            self.grid_cells,
            self.wall_s,
            self.step_p50_s,
            self.step_p95_s,
        ));
        if self.exec_mode.is_some() || self.features.is_some() {
            let features = self.features.as_deref().unwrap_or("");
            out.push_str(&format!(
                "exec: {}  features: {}{}\n",
                self.exec_mode.as_deref().unwrap_or("unknown"),
                if features.is_empty() { "(default)" } else { features },
                match self.resident_mode.as_deref() {
                    Some(mode) => format!("  resident: {mode}"),
                    None => String::new(),
                },
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>10} {:>12} {:>10} {:>9} {:>9}  verdict\n",
            "kernel", "wall s", "cells/s", "GFLOP/s", "GB/s", "roofline"
        ));
        for k in &self.kernels {
            let (frac, verdict) = if k.roofline_fraction > 0.0 {
                (
                    format!("{:.3}", k.roofline_fraction),
                    if k.roofline_fraction < min_fraction { "LOW" } else { "ok" },
                )
            } else {
                ("-".to_string(), "unmodeled")
            };
            out.push_str(&format!(
                "{:<14} {:>10.4} {:>12.4e} {:>10.3} {:>9.3} {:>9}  {}\n",
                k.name, k.wall_s, k.cells_per_s, k.gflops_per_s, k.gb_per_s, frac, verdict
            ));
        }
        let low = self.below_fraction(min_fraction).len();
        out.push_str(&format!(
            "{} ({} kernels, {} below roofline fraction {:.2})\n",
            if low == 0 { "PASS" } else { "LOW" },
            self.kernels.len(),
            low,
            min_fraction
        ));
        out
    }

    /// Convert to a bench report (schema v2) so the ledger can ride the
    /// `bench-diff` comparator: one record per kernel, median = mean wall
    /// seconds per step, throughput = cells per step (unit `cells`), the
    /// host fingerprint attached so cross-host diffs skip rather than lie.
    pub fn to_bench_report(&self, prefix: &str) -> BenchReport {
        let steps = self.steps.max(1) as f64;
        let host = self.host.id();
        let mut report = BenchReport { schema_version: BENCH_SCHEMA_VERSION, records: Vec::new() };
        for k in &self.kernels {
            let per_step = k.wall_s / steps;
            report.records.push(BenchRecord {
                name: format!("{prefix}/{}", k.name),
                samples: self.steps,
                median_s: per_step,
                mean_s: per_step,
                min_s: per_step,
                max_s: per_step,
                throughput: (k.cells as f64 / steps).max(1.0),
                throughput_unit: "cells".to_string(),
                tolerance: None,
                host: Some(host.clone()),
            });
        }
        report
    }

    /// One-line JSON record for `perf_history.jsonl` (compact: identity,
    /// totals, and per-kernel headline rates only).
    pub fn history_line(&self, label: &str) -> String {
        let kernels: Vec<serde_json::Value> = self
            .kernels
            .iter()
            .map(|k| {
                json!({
                    "name": k.name,
                    "cells_per_s": k.cells_per_s,
                    "gflops_per_s": k.gflops_per_s,
                    "roofline_fraction": k.roofline_fraction,
                })
            })
            .collect();
        serde_json::to_string(&json!({
            "schema_version": PERF_SCHEMA_VERSION,
            "label": label,
            "host": self.host.id(),
            "steps": self.steps,
            "grid_cells": self.grid_cells,
            "wall_s": self.wall_s,
            "step_p50_s": self.step_p50_s,
            "step_p95_s": self.step_p95_s,
            "kernels": serde_json::Value::Array(kernels),
        }))
        .expect("history line serialization is infallible")
    }
}

/// Compare two ledgers with the bench comparator: per-kernel wall seconds
/// per step, `tolerance` fractional slowdown allowed.
pub fn diff(old: &PerfLedger, new: &PerfLedger, tolerance: f64) -> crate::bench::BenchComparison {
    crate::bench::compare(&old.to_bench_report("perf"), &new.to_bench_report("perf"), tolerance)
}

/// Raw accumulated counts for one kernel (pre-rate-derivation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelCounts {
    /// Kernel name.
    pub name: String,
    /// Total wall seconds from scoped timers.
    pub wall_s: f64,
    /// Scoped invocations.
    pub calls: u64,
    /// Cells charged.
    pub cells: u64,
    /// Flops charged.
    pub flops: f64,
    /// Modeled DMA bytes charged.
    pub dma_bytes: u64,
}

#[derive(Debug, Default)]
struct Accum {
    wall_s: f64,
    calls: u64,
    cells: u64,
    flops: f64,
    dma_bytes: u64,
}

/// The live accumulator the driver records into.
///
/// Thread-safe: scoped timers and count charges from concurrent ranks
/// fold into the same named slots (a short mutex hold per event — the
/// events are per-kernel-per-step, not per-cell).
#[derive(Debug, Default)]
pub struct PerfRecorder {
    slots: Mutex<HashMap<String, Accum>>,
    steps: AtomicU64,
    step_walls: Mutex<Vec<f64>>,
}

impl PerfRecorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a scoped wall timer for `name`; dropping the guard adds the
    /// elapsed time (and one call) to the kernel's slot.
    pub fn scope<'a>(&'a self, name: &'a str) -> PerfScope<'a> {
        PerfScope { rec: self, name, start: Instant::now() }
    }

    /// Add cell/flop/DMA-byte counts to `name`'s slot.
    pub fn charge(&self, name: &str, cells: u64, flops: f64, dma_bytes: u64) {
        let mut slots = lock_recover(&self.slots);
        let a = slots.entry(name.to_string()).or_default();
        a.cells += cells;
        a.flops += flops;
        a.dma_bytes += dma_bytes;
    }

    /// Add a hand-measured wall interval (and one call) to `name`'s
    /// slot — for sites where a scoped guard's borrow would conflict.
    pub fn add_wall(&self, name: &str, wall_s: f64) {
        self.finish_scope(name, wall_s);
    }

    fn finish_scope(&self, name: &str, wall_s: f64) {
        let mut slots = lock_recover(&self.slots);
        let a = slots.entry(name.to_string()).or_default();
        a.wall_s += wall_s;
        a.calls += 1;
    }

    /// Record one completed step: its 1-based index and wall seconds.
    /// With multiple ranks, only one rank should report (the counts are
    /// shared; duplicate step samples would skew the percentiles).
    pub fn note_step(&self, step: u64, wall_s: f64) {
        self.steps.fetch_max(step, Ordering::Relaxed);
        let mut walls = lock_recover(&self.step_walls);
        if walls.len() < MAX_STEP_SAMPLES {
            walls.push(wall_s);
        }
    }

    /// Highest step index reported so far.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Nearest-rank (p50, p95) of the recorded per-step wall times.
    pub fn step_percentiles(&self) -> (f64, f64) {
        let walls = lock_recover(&self.step_walls);
        (crate::percentile(&walls, 50.0), crate::percentile(&walls, 95.0))
    }

    /// Sum of the recorded per-step wall times.
    pub fn total_step_wall(&self) -> f64 {
        lock_recover(&self.step_walls).iter().sum()
    }

    /// Snapshot all slots, sorted in [`KERNEL_ORDER`] (then by name).
    pub fn counts(&self) -> Vec<KernelCounts> {
        let slots = lock_recover(&self.slots);
        let mut out: Vec<KernelCounts> = slots
            .iter()
            .map(|(name, a)| KernelCounts {
                name: name.clone(),
                wall_s: a.wall_s,
                calls: a.calls,
                cells: a.cells,
                flops: a.flops,
                dma_bytes: a.dma_bytes,
            })
            .collect();
        let rank =
            |n: &str| KERNEL_ORDER.iter().position(|k| *k == n).unwrap_or(KERNEL_ORDER.len());
        out.sort_by(|a, b| rank(&a.name).cmp(&rank(&b.name)).then(a.name.cmp(&b.name)));
        out
    }
}

/// Scoped wall timer returned by [`PerfRecorder::scope`].
#[derive(Debug)]
pub struct PerfScope<'a> {
    rec: &'a PerfRecorder,
    name: &'a str,
    start: Instant,
}

impl Drop for PerfScope<'_> {
    fn drop(&mut self) {
        self.rec.finish_scope(self.name, self.start.elapsed().as_secs_f64());
    }
}

/// Lock, recovering from a poisoned mutex (aggregate updates are
/// self-contained; see the same pattern on the telemetry registry).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostFingerprint {
        HostFingerprint {
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            cpu: "test-cpu".to_string(),
            threads: 4,
        }
    }

    fn ledger() -> PerfLedger {
        PerfLedger {
            schema_version: PERF_SCHEMA_VERSION,
            host: host(),
            steps: 10,
            grid_cells: 1000,
            wall_s: 2.0,
            step_p50_s: 0.19,
            step_p95_s: 0.25,
            exec_mode: Some("parallel".to_string()),
            features: Some(String::new()),
            resident_mode: None,
            kernels: vec![
                PerfKernel::from_counts("dvelc", 1.0, 10, 10_000, 760_000.0, 400_000, 0.5),
                PerfKernel::from_counts("halo", 0.5, 20, 2_000, 0.0, 80_000, 0.0),
            ],
        }
    }

    #[test]
    fn recorder_accumulates_scopes_and_charges() {
        let rec = PerfRecorder::new();
        {
            let _s = rec.scope("dvelc");
        }
        {
            let _s = rec.scope("dvelc");
        }
        rec.charge("dvelc", 100, 7600.0, 4000);
        rec.charge("dvelc", 100, 7600.0, 4000);
        rec.charge("sponge", 50, 450.0, 3600);
        let counts = rec.counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].name, "dvelc", "canonical order puts dvelc first");
        assert_eq!(counts[0].calls, 2);
        assert_eq!(counts[0].cells, 200);
        assert_eq!(counts[0].flops, 15_200.0);
        assert_eq!(counts[0].dma_bytes, 8_000);
        assert!(counts[0].wall_s >= 0.0);
        assert_eq!(counts[1].name, "sponge");
    }

    #[test]
    fn recorder_step_percentiles_are_nearest_rank() {
        let rec = PerfRecorder::new();
        for (i, w) in [0.1, 0.2, 0.3, 0.4].iter().enumerate() {
            rec.note_step(i as u64 + 1, *w);
        }
        assert_eq!(rec.steps(), 4);
        let (p50, p95) = rec.step_percentiles();
        assert_eq!(p50, 0.2);
        assert_eq!(p95, 0.4);
        assert!((rec.total_step_wall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kernel_rates_derive_from_counts() {
        let k = PerfKernel::from_counts("dstrqc", 2.0, 10, 1_000_000, 2.08e8, 500_000_000, 1.0);
        assert_eq!(k.cells_per_s, 500_000.0);
        assert_eq!(k.gflops_per_s, 0.104);
        assert_eq!(k.gb_per_s, 0.25);
        assert_eq!(k.roofline_fraction, 0.5);
        let zero = PerfKernel::from_counts("idle", 0.0, 0, 0, 0.0, 0, 0.0);
        assert_eq!(zero.cells_per_s, 0.0);
        assert_eq!(zero.roofline_fraction, 0.0);
    }

    #[test]
    fn ledger_json_roundtrip_and_lookup() {
        let l = ledger();
        let back = PerfLedger::from_json(&l.to_json()).unwrap();
        assert_eq!(back, l);
        assert_eq!(back.schema_version, PERF_SCHEMA_VERSION);
        assert!(back.kernel("dvelc").is_some());
        assert!(back.kernel("nope").is_none());
    }

    #[test]
    fn below_fraction_ignores_unmodeled_kernels() {
        let l = ledger();
        let low = l.below_fraction(0.6);
        assert_eq!(low.len(), 1, "halo (fraction 0 = unmodeled) must not be flagged");
        assert_eq!(low[0].name, "dvelc");
        assert!(l.below_fraction(0.3).is_empty());
        let table = l.text_table(0.6);
        assert!(table.contains("LOW"));
        assert!(table.contains("unmodeled"));
    }

    #[test]
    fn bench_report_conversion_has_real_units() {
        let l = ledger();
        let report = l.to_bench_report("perf");
        assert_eq!(report.records.len(), 2);
        let r = report.record("perf/dvelc").unwrap();
        assert_eq!(r.median_s, 0.1);
        assert_eq!(r.throughput, 1000.0);
        assert_eq!(r.throughput_unit, "cells");
        assert_eq!(r.host.as_deref(), Some("linux/x86_64/test-cpu/4t"));
    }

    #[test]
    fn diff_gates_a_slowed_kernel() {
        let old = ledger();
        let mut new = ledger();
        new.kernels[0].wall_s *= 2.0;
        assert!(diff(&old, &old, 0.1).passed());
        let cmp = diff(&old, &new, 0.1);
        assert!(!cmp.passed());
        assert!(cmp.entries.iter().any(|e| e.name == "perf/dvelc" && e.regressed));
    }

    #[test]
    fn history_line_is_single_line_json() {
        let line = ledger().history_line("run");
        assert!(!line.contains('\n'));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("run"));
        assert_eq!(v.get("steps").unwrap().as_u64(), Some(10));
        assert_eq!(v.get("kernels").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn host_fingerprint_detects_something() {
        let h = HostFingerprint::detect(8);
        assert!(!h.os.is_empty());
        assert!(!h.arch.is_empty());
        assert!(!h.cpu.is_empty());
        assert_eq!(h.threads, 8);
        assert!(h.id().ends_with("/8t"));
    }

    /// Golden-file pin of PerfLedger schema v1: this exact shape must keep
    /// parsing (and no current field may vanish from the output).
    #[test]
    fn golden_schema_v1_pin() {
        let golden = r#"{
            "schema_version": 1,
            "host": {"os": "linux", "arch": "x86_64", "cpu": "test-cpu", "threads": 4},
            "steps": 10,
            "grid_cells": 1000,
            "wall_s": 2.0,
            "step_p50_s": 0.19,
            "step_p95_s": 0.25,
            "kernels": [
                {"name": "dvelc", "wall_s": 1.0, "calls": 10, "cells": 10000,
                 "flops": 760000.0, "dma_bytes": 400000, "cells_per_s": 10000.0,
                 "gflops_per_s": 0.00076, "gb_per_s": 0.0004, "roofline_fraction": 0.5}
            ]
        }"#;
        let l = PerfLedger::from_json(golden).unwrap();
        assert_eq!(l.schema_version, PERF_SCHEMA_VERSION);
        assert_eq!(l.kernels[0].name, "dvelc");
        let text = l.to_json();
        for key in [
            "schema_version",
            "host",
            "steps",
            "grid_cells",
            "wall_s",
            "step_p50_s",
            "step_p95_s",
            "kernels",
            "cells_per_s",
            "gflops_per_s",
            "gb_per_s",
            "roofline_fraction",
            "dma_bytes",
        ] {
            assert!(text.contains(&format!("\"{key}\"")), "schema v1 lost key {key}");
        }
    }
}
