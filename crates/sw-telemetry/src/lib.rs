//! The telemetry spine of the solver stack.
//!
//! Every subsystem (driver, halo exchange, architecture model, compressor,
//! I/O) reports into one [`Telemetry`] handle:
//!
//! * **phase timers** — scoped, nestable wall-time ranges
//!   ([`Telemetry::phase`]); nested phases get dotted paths like
//!   `step.velocity`, and timers on different threads aggregate into the
//!   same named slot,
//! * **counters** — monotonically increasing totals
//!   ([`Telemetry::add`]), e.g. bytes moved over the halo fabric,
//! * **gauges** — last-value + high-water marks ([`Telemetry::gauge`]),
//!   e.g. the LDM footprint of the busiest kernel,
//! * **series** — bounded ring buffers of per-step samples
//!   ([`Telemetry::sample`]), e.g. wall time per time step.
//!
//! A [`Telemetry::report`] snapshot serializes to JSON with a stable
//! schema (see [`Report`]); `swquake run --metrics out.json` writes one.
//!
//! A handle can also carry a [`Tracer`] from the `sw-trace` crate
//! ([`Telemetry::with_tracer`]): phases then additionally record as
//! timeline *spans* and [`Telemetry::event`] emits instant events, so the
//! same instrumentation sites feed both the aggregate report and a
//! Chrome-trace export (`swquake run --trace out.json`). The bench-report
//! schema shared by the bench harness and `swquake bench-diff` lives in
//! the [`bench`] module.
//!
//! The handle is an `Option<Arc<Registry>>` under the hood:
//! [`Telemetry::disabled`] carries `None` (and a disabled tracer), so
//! every recording call is a branch on a null pointer — no clock reads,
//! no locks, no allocation — and disabled telemetry stays out of the
//! numeric path entirely.

use serde::Serialize;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

pub mod bench;
pub mod perf;
pub mod timeline;

pub use sw_trace as trace;
pub use sw_trace::{TraceSpan, Tracer};

/// Default capacity of a per-step sample ring buffer.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Version stamp embedded in every [`Report`] so downstream consumers can
/// detect schema changes.
///
/// History: v1 = PR 1 baseline; v2 adds `p50`/`p95` to [`SeriesStat`].
pub const SCHEMA_VERSION: u32 = 2;

/// Lock a mutex, recovering the data if a previous holder panicked.
///
/// Every registry mutation is a self-contained aggregate update (add to a
/// counter, fold a sample into a stat), so the state is never left
/// half-written across a panic — recovering the poisoned guard is safe
/// and keeps a panicking worker thread from cascading into telemetry
/// panics when other guards drop during unwinding.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

/// A cheap, clonable, thread-safe handle to a metrics registry — or to
/// nothing at all ([`Telemetry::disabled`]).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
    tracer: Tracer,
}

impl Telemetry {
    /// A live telemetry handle backed by a fresh registry (no tracer).
    pub fn enabled() -> Self {
        Self { registry: Some(Arc::new(Registry::default())), tracer: Tracer::disabled() }
    }

    /// The null handle: every recording method returns immediately.
    pub fn disabled() -> Self {
        Self { registry: None, tracer: Tracer::disabled() }
    }

    /// Attach a tracer: phases additionally record as timeline spans and
    /// [`Telemetry::event`] emits instant events into it.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (disabled unless set via
    /// [`Telemetry::with_tracer`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// True when this handle records aggregate metrics.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Start a scoped phase timer. The returned guard records the elapsed
    /// wall time when dropped. Phases nest: a `phase("velocity")` opened
    /// while `phase("step")` is live on the same thread records as
    /// `step.velocity`. With a tracer attached, the same range is also
    /// recorded as a timeline span under the dotted path.
    #[must_use = "the phase is timed until the guard drops"]
    pub fn phase(&self, name: &str) -> PhaseGuard {
        if self.registry.is_none() && !self.tracer.is_enabled() {
            return PhaseGuard { inner: None };
        }
        let path = PHASE_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}.{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        let span = self.tracer.span("phase", &path);
        PhaseGuard {
            inner: Some(PhaseInner {
                registry: self.registry.clone(),
                _span: span,
                path,
                start: Instant::now(),
            }),
        }
    }

    /// Add to a monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(reg) = &self.registry {
            *lock(&reg.counters).entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Set a gauge. The registry keeps both the last value and the
    /// high-water mark.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(reg) = &self.registry {
            let mut gauges = lock(&reg.gauges);
            let g = gauges.entry(name.to_string()).or_insert(GaugeStat { last: value, max: value });
            g.last = value;
            if value > g.max {
                g.max = value;
            }
        }
    }

    /// Push one sample into a bounded ring buffer (default capacity
    /// [`DEFAULT_SERIES_CAPACITY`]; the oldest samples are evicted).
    pub fn sample(&self, name: &str, value: f64) {
        self.sample_with_capacity(name, value, DEFAULT_SERIES_CAPACITY);
    }

    /// [`Telemetry::sample`] with an explicit ring capacity (applied when
    /// the series is first created).
    pub fn sample_with_capacity(&self, name: &str, value: f64, capacity: usize) {
        if let Some(reg) = &self.registry {
            let mut series = lock(&reg.series);
            let s = series.entry(name.to_string()).or_insert_with(|| Ring::new(capacity.max(1)));
            s.push(value);
        }
    }

    /// Record an already-measured duration into a timer slot (for callers
    /// that cannot hold a guard across the timed region). With a tracer
    /// attached, the range is also recorded as a span ending now.
    pub fn record_duration(&self, name: &str, seconds: f64) {
        if let Some(reg) = &self.registry {
            reg.record_timer(name, seconds);
        }
        self.tracer.span_closed("timer", name, seconds);
    }

    /// Emit an instant event with numeric arguments into the attached
    /// tracer (no-op without one). Used for point-in-time facts like "this
    /// step moved N modeled DMA bytes for kernel K".
    pub fn event(&self, name: &str, args: &[(&str, f64)]) {
        self.tracer.instant("event", name, args);
    }

    /// Snapshot everything recorded so far into a serializable report.
    /// Returns an empty schema-stamped report when disabled.
    pub fn report(&self) -> Report {
        match &self.registry {
            None => Report { schema_version: SCHEMA_VERSION, ..Default::default() },
            Some(reg) => {
                let mut rep = reg.snapshot();
                // Ring-buffer drops in the attached tracer would otherwise
                // be silent until Chrome-JSON export; surface them as a
                // counter. Injected at snapshot time (not `add`ed) so
                // repeated report() calls never double-count.
                let dropped = self.tracer.dropped_events();
                if dropped > 0 {
                    rep.counters.push(CounterEntry {
                        name: "trace.dropped_events".to_string(),
                        value: dropped,
                    });
                    rep.counters.sort_by(|a, b| a.name.cmp(&b.name));
                }
                rep
            }
        }
    }
}

thread_local! {
    /// Per-thread stack of open phase paths, for dotted nesting.
    static PHASE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct PhaseInner {
    registry: Option<Arc<Registry>>,
    /// Trace span opened at phase start; recording happens when this
    /// drops with the guard.
    _span: TraceSpan,
    path: String,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::phase`]; records on drop.
pub struct PhaseGuard {
    inner: Option<PhaseInner>,
}

impl PhaseGuard {
    /// The full dotted path this guard is timing (`None` when telemetry
    /// is disabled).
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed().as_secs_f64();
            PHASE_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Pop our own path; guards drop in LIFO order on a given
                // thread, so it is the top entry.
                if stack.last() == Some(&inner.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &inner.path) {
                    stack.remove(pos);
                }
            });
            if let Some(reg) = &inner.registry {
                reg.record_timer(&inner.path, elapsed);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The shared metric store behind an enabled [`Telemetry`].
#[derive(Debug, Default)]
struct Registry {
    timers: Mutex<HashMap<String, TimerStat>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, GaugeStat>>,
    series: Mutex<HashMap<String, Ring>>,
}

impl Registry {
    fn record_timer(&self, path: &str, seconds: f64) {
        let mut timers = lock(&self.timers);
        let t = timers.entry(path.to_string()).or_insert_with(TimerStat::empty);
        t.calls += 1;
        t.total_s += seconds;
        if seconds < t.min_s || t.calls == 1 {
            t.min_s = seconds;
        }
        if seconds > t.max_s {
            t.max_s = seconds;
        }
    }

    fn snapshot(&self) -> Report {
        let mut timers: Vec<(String, TimerStat)> =
            lock(&self.timers).iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        timers.sort_by(|a, b| a.0.cmp(&b.0));
        let mut counters: Vec<(String, u64)> =
            lock(&self.counters).iter().map(|(k, v)| (k.clone(), *v)).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, GaugeStat)> =
            lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut series: Vec<(String, SeriesStat)> =
            lock(&self.series).iter().map(|(k, v)| (k.clone(), v.stat())).collect();
        series.sort_by(|a, b| a.0.cmp(&b.0));
        Report {
            schema_version: SCHEMA_VERSION,
            timers: timers.into_iter().map(|(name, stat)| TimerEntry { name, stat }).collect(),
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterEntry { name, value })
                .collect(),
            gauges: gauges.into_iter().map(|(name, stat)| GaugeEntry { name, stat }).collect(),
            series: series.into_iter().map(|(name, stat)| SeriesEntry { name, stat }).collect(),
        }
    }
}

/// Nearest-rank percentile over an unsorted window. Well-defined for any
/// input: an empty window yields 0.0 and a single sample yields itself —
/// never NaN, so the JSON report stays parseable.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A bounded ring buffer of f64 samples.
#[derive(Debug)]
struct Ring {
    capacity: usize,
    /// Total samples ever pushed (>= buf.len()).
    pushed: u64,
    buf: Vec<f64>,
    head: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self { capacity, pushed: 0, buf: Vec::new(), head: 0 }
    }

    fn push(&mut self, v: f64) {
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples in push order (oldest retained first).
    fn ordered(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn stat(&self) -> SeriesStat {
        let values = self.ordered();
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = if values.is_empty() { 0.0 } else { sum / values.len() as f64 };
        SeriesStat {
            capacity: self.capacity as u64,
            pushed: self.pushed,
            min: if values.is_empty() { 0.0 } else { min },
            max: if values.is_empty() { 0.0 } else { max },
            mean,
            p50: percentile(&values, 50.0),
            p95: percentile(&values, 95.0),
            values,
        }
    }
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

/// Aggregated statistics of one named timer.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct TimerStat {
    /// Number of completed phase spans.
    pub calls: u64,
    /// Summed wall time, seconds.
    pub total_s: f64,
    /// Shortest span, seconds.
    pub min_s: f64,
    /// Longest span, seconds.
    pub max_s: f64,
}

impl TimerStat {
    fn empty() -> Self {
        Self { calls: 0, total_s: 0.0, min_s: 0.0, max_s: 0.0 }
    }
}

/// Last value + high-water mark of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct GaugeStat {
    /// Most recently set value.
    pub last: f64,
    /// Largest value ever set.
    pub max: f64,
}

/// Summary + retained window of one sample series.
///
/// Every summary field is well-defined for empty and single-sample
/// series: an empty window reports zeros and a single sample reports
/// itself for min/max/mean/p50/p95. No field is ever NaN.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct SeriesStat {
    /// Ring capacity.
    pub capacity: u64,
    /// Total samples pushed (may exceed `values.len()`).
    pub pushed: u64,
    /// Minimum over the retained window.
    pub min: f64,
    /// Maximum over the retained window.
    pub max: f64,
    /// Mean over the retained window.
    pub mean: f64,
    /// Median (nearest-rank 50th percentile) over the retained window.
    pub p50: f64,
    /// Nearest-rank 95th percentile over the retained window.
    pub p95: f64,
    /// The retained window, oldest first.
    pub values: Vec<f64>,
}

/// One named timer in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct TimerEntry {
    /// Dotted phase path, e.g. `step.velocity`.
    pub name: String,
    /// Aggregated timings.
    pub stat: TimerStat,
}

/// One named counter in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct CounterEntry {
    /// Counter name, e.g. `halo.bytes_sent`.
    pub name: String,
    /// Accumulated total.
    pub value: u64,
}

/// One named gauge in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct GaugeEntry {
    /// Gauge name, e.g. `arch.ldm_high_water_bytes`.
    pub name: String,
    /// Last + max values.
    pub stat: GaugeStat,
}

/// One named series in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct SeriesEntry {
    /// Series name, e.g. `step.wall_s`.
    pub name: String,
    /// Window summary + retained samples.
    pub stat: SeriesStat,
}

/// A point-in-time snapshot of every metric, with a stable JSON schema.
///
/// Entries are sorted by name so two reports of the same run serialize
/// identically. The schema is versioned via `schema_version`
/// ([`SCHEMA_VERSION`]): additive changes bump it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, serde::Deserialize)]
pub struct Report {
    /// Schema version stamp ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// All timers, sorted by name.
    pub timers: Vec<TimerEntry>,
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All series, sorted by name.
    pub series: Vec<SeriesEntry>,
}

impl Report {
    /// Look up a timer by exact dotted path.
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers.iter().find(|e| e.name == name).map(|e| &e.stat)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStat> {
        self.gauges.iter().find(|e| e.name == name).map(|e| &e.stat)
    }

    /// Look up a series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesStat> {
        self.series.iter().find(|e| e.name == name).map(|e| &e.stat)
    }

    /// Pretty JSON rendering of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        {
            let _g = t.phase("step");
            t.add("bytes", 100);
            t.gauge("ldm", 1.0);
            t.sample("wall", 0.5);
            t.event("dma", &[("bytes", 64.0)]);
        }
        let r = t.report();
        assert_eq!(r.schema_version, SCHEMA_VERSION);
        assert!(r.timers.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.series.is_empty());
        assert!(!t.tracer().is_enabled());
    }

    #[test]
    fn phases_nest_with_dotted_paths() {
        let t = Telemetry::enabled();
        {
            let _outer = t.phase("step");
            {
                let _inner = t.phase("velocity");
            }
            {
                let _inner = t.phase("stress");
                let _inner2 = t.phase("plasticity");
            }
        }
        {
            let _again = t.phase("step");
        }
        let r = t.report();
        let names: Vec<&str> = r.timers.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["step", "step.stress", "step.stress.plasticity", "step.velocity"]);
        assert_eq!(r.timer("step").unwrap().calls, 2);
        assert_eq!(r.timer("step.velocity").unwrap().calls, 1);
    }

    #[test]
    fn nesting_resets_between_roots() {
        let t = Telemetry::enabled();
        {
            let _a = t.phase("a");
        }
        {
            let _b = t.phase("b");
        }
        let r = t.report();
        assert!(r.timer("a.b").is_none());
        assert!(r.timer("b").is_some());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let t = Telemetry::enabled();
        t.add("bytes", 10);
        t.add("bytes", 32);
        t.gauge("ldm", 5.0);
        t.gauge("ldm", 3.0);
        let r = t.report();
        assert_eq!(r.counter("bytes"), Some(42));
        let g = r.gauge("ldm").unwrap();
        assert_eq!(g.last, 3.0);
        assert_eq!(g.max, 5.0);
    }

    #[test]
    fn series_ring_evicts_oldest() {
        let t = Telemetry::enabled();
        for i in 0..10 {
            t.sample_with_capacity("s", i as f64, 4);
        }
        let s = t.report();
        let s = s.series("s").unwrap();
        assert_eq!(s.pushed, 10);
        assert_eq!(s.values, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(s.min, 6.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn timers_aggregate_across_threads() {
        let t = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let _g = t.phase("work");
                        t.add("jobs", 1);
                    }
                });
            }
        });
        let r = t.report();
        assert_eq!(r.timer("work").unwrap().calls, 100);
        assert_eq!(r.counter("jobs"), Some(100));
    }

    #[test]
    fn sibling_threads_do_not_inherit_nesting() {
        let t = Telemetry::enabled();
        let _outer = t.phase("outer");
        std::thread::scope(|s| {
            let t2 = t.clone();
            s.spawn(move || {
                // Fresh thread: no `outer.` prefix.
                let _g = t2.phase("inner");
            });
        });
        drop(_outer);
        let r = t.report();
        assert!(r.timer("inner").is_some());
        assert!(r.timer("outer.inner").is_none());
    }

    #[test]
    fn report_json_roundtrip_is_stable() {
        let t = Telemetry::enabled();
        {
            let _g = t.phase("step");
            t.sample("wall", 0.25);
        }
        t.add("bytes", 7);
        t.gauge("ldm", 1024.0);
        let r = t.report();
        let text = r.to_json();
        let back = Report::from_json(&text).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.to_json(), text, "serialization must be deterministic");
    }

    #[test]
    fn empty_and_single_sample_series_have_finite_stats() {
        // Single sample: every summary field is the sample itself.
        let t = Telemetry::enabled();
        t.sample("one", 2.5);
        let r = t.report();
        let s = r.series("one").unwrap();
        assert_eq!((s.min, s.max, s.mean, s.p50, s.p95), (2.5, 2.5, 2.5, 2.5, 2.5));
        // Empty window from the percentile helper directly.
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[], 95.0), 0.0);
        // Nothing in the rendered JSON may be NaN (which would serialize
        // as `null` or unparseable text).
        let text = r.to_json();
        assert!(!text.contains("NaN") && !text.contains("null"), "{text}");
        assert_eq!(Report::from_json(&text).unwrap(), r);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&values, 50.0), 50.0);
        assert_eq!(percentile(&values, 95.0), 95.0);
        assert_eq!(percentile(&values, 100.0), 100.0);
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), 2.0, "input order must not matter");
        let t = Telemetry::enabled();
        for v in &values {
            t.sample("s", *v);
        }
        let r = t.report();
        let s = r.series("s").unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn percentile_edge_cases_two_samples_and_identical_values() {
        // Two samples: nearest-rank p50 is the smaller, p95 the larger.
        assert_eq!(percentile(&[10.0, 20.0], 50.0), 10.0);
        assert_eq!(percentile(&[20.0, 10.0], 50.0), 10.0, "input order must not matter");
        assert_eq!(percentile(&[10.0, 20.0], 95.0), 20.0);
        let t = Telemetry::enabled();
        t.sample("two", 20.0);
        t.sample("two", 10.0);
        let s = t.report().series("two").unwrap().clone();
        assert_eq!((s.p50, s.p95), (10.0, 20.0));

        // All-identical window: every percentile is that value, min ==
        // max == mean, and nothing degenerates to 0 or NaN.
        let same = [7.5; 9];
        for p in [0.0, 50.0, 95.0, 100.0] {
            assert_eq!(percentile(&same, p), 7.5, "p{p}");
        }
        let t = Telemetry::enabled();
        for _ in 0..9 {
            t.sample("same", 7.5);
        }
        let s = t.report().series("same").unwrap().clone();
        assert_eq!((s.min, s.max, s.mean, s.p50, s.p95), (7.5, 7.5, 7.5, 7.5, 7.5));
    }

    #[test]
    fn poisoned_registry_keeps_recording() {
        let t = Telemetry::enabled();
        t.add("jobs", 1);
        t.gauge("g", 1.0);
        t.sample("s", 1.0);
        t.record_duration("work", 0.1);
        // Panic on a worker thread *while holding* every registry lock, so
        // each mutex is poisoned the hard way.
        let reg = t.registry.as_ref().unwrap();
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _a = reg.timers.lock().unwrap();
                    let _b = reg.counters.lock().unwrap();
                    let _c = reg.gauges.lock().unwrap();
                    let _d = reg.series.lock().unwrap();
                    panic!("worker dies mid-record");
                })
                .join()
        });
        assert!(result.is_err(), "worker must have panicked");
        // Telemetry keeps working: no panic, data intact and still mutable.
        t.add("jobs", 1);
        t.gauge("g", 2.0);
        t.sample("s", 2.0);
        t.record_duration("work", 0.2);
        let r = t.report();
        assert_eq!(r.counter("jobs"), Some(2));
        assert_eq!(r.gauge("g").unwrap().last, 2.0);
        assert_eq!(r.series("s").unwrap().pushed, 2);
        assert_eq!(r.timer("work").unwrap().calls, 2);
    }

    #[test]
    fn attached_tracer_records_phases_and_events() {
        let tracer = Tracer::enabled();
        let t = Telemetry::enabled().with_tracer(tracer.clone());
        t.tracer().bind_lane(0, "driver");
        {
            let _outer = t.phase("step");
            let _inner = t.phase("velocity");
            t.event("arch.dma.dvelcx", &[("bytes", 1024.0)]);
        }
        t.record_duration("halo.pack", 0.001);
        let lanes = tracer.lanes();
        assert_eq!(lanes.len(), 1);
        let names: Vec<&str> = lanes[0].1.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["arch.dma.dvelcx", "step.velocity", "step", "halo.pack"]);
        // Aggregates recorded too, under the same dotted paths.
        let r = t.report();
        assert_eq!(r.timer("step.velocity").unwrap().calls, 1);
        assert_eq!(r.timer("halo.pack").unwrap().calls, 1);
    }

    #[test]
    fn tracer_without_registry_still_traces_phases() {
        let tracer = Tracer::enabled();
        let t = Telemetry::disabled().with_tracer(tracer.clone());
        {
            let _g = t.phase("step");
        }
        assert!(!t.is_enabled());
        assert!(t.report().timers.is_empty());
        let lanes = tracer.lanes();
        assert_eq!(lanes[0].1[0].name, "step");
    }
}
