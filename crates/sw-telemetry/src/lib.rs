//! The telemetry spine of the solver stack.
//!
//! Every subsystem (driver, halo exchange, architecture model, compressor,
//! I/O) reports into one [`Telemetry`] handle:
//!
//! * **phase timers** — scoped, nestable wall-time ranges
//!   ([`Telemetry::phase`]); nested phases get dotted paths like
//!   `step.velocity`, and timers on different threads aggregate into the
//!   same named slot,
//! * **counters** — monotonically increasing totals
//!   ([`Telemetry::add`]), e.g. bytes moved over the halo fabric,
//! * **gauges** — last-value + high-water marks ([`Telemetry::gauge`]),
//!   e.g. the LDM footprint of the busiest kernel,
//! * **series** — bounded ring buffers of per-step samples
//!   ([`Telemetry::sample`]), e.g. wall time per time step.
//!
//! A [`Telemetry::report`] snapshot serializes to JSON with a stable
//! schema (see [`Report`]); `swquake run --metrics out.json` writes one.
//!
//! The handle is an `Option<Arc<Registry>>` under the hood:
//! [`Telemetry::disabled`] carries `None`, so every recording call is a
//! branch on a null pointer — no clock reads, no locks, no allocation —
//! and disabled telemetry stays out of the numeric path entirely.

use serde::Serialize;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default capacity of a per-step sample ring buffer.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// Version stamp embedded in every [`Report`] so downstream consumers can
/// detect schema changes.
pub const SCHEMA_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

/// A cheap, clonable, thread-safe handle to a metrics registry — or to
/// nothing at all ([`Telemetry::disabled`]).
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A live telemetry handle backed by a fresh registry.
    pub fn enabled() -> Self {
        Self { registry: Some(Arc::new(Registry::default())) }
    }

    /// The null handle: every recording method returns immediately.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Start a scoped phase timer. The returned guard records the elapsed
    /// wall time when dropped. Phases nest: a `phase("velocity")` opened
    /// while `phase("step")` is live on the same thread records as
    /// `step.velocity`.
    #[must_use = "the phase is timed until the guard drops"]
    pub fn phase(&self, name: &str) -> PhaseGuard {
        match &self.registry {
            None => PhaseGuard { inner: None },
            Some(reg) => {
                let path = PHASE_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    let path = match stack.last() {
                        Some(parent) => format!("{parent}.{name}"),
                        None => name.to_string(),
                    };
                    stack.push(path.clone());
                    path
                });
                PhaseGuard {
                    inner: Some(PhaseInner {
                        registry: Arc::clone(reg),
                        path,
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Add to a monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(reg) = &self.registry {
            *reg.counters.lock().unwrap().entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Set a gauge. The registry keeps both the last value and the
    /// high-water mark.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(reg) = &self.registry {
            let mut gauges = reg.gauges.lock().unwrap();
            let g = gauges.entry(name.to_string()).or_insert(GaugeStat { last: value, max: value });
            g.last = value;
            if value > g.max {
                g.max = value;
            }
        }
    }

    /// Push one sample into a bounded ring buffer (default capacity
    /// [`DEFAULT_SERIES_CAPACITY`]; the oldest samples are evicted).
    pub fn sample(&self, name: &str, value: f64) {
        self.sample_with_capacity(name, value, DEFAULT_SERIES_CAPACITY);
    }

    /// [`Telemetry::sample`] with an explicit ring capacity (applied when
    /// the series is first created).
    pub fn sample_with_capacity(&self, name: &str, value: f64, capacity: usize) {
        if let Some(reg) = &self.registry {
            let mut series = reg.series.lock().unwrap();
            let s = series.entry(name.to_string()).or_insert_with(|| Ring::new(capacity.max(1)));
            s.push(value);
        }
    }

    /// Record an already-measured duration into a timer slot (for callers
    /// that cannot hold a guard across the timed region).
    pub fn record_duration(&self, name: &str, seconds: f64) {
        if let Some(reg) = &self.registry {
            reg.record_timer(name, seconds);
        }
    }

    /// Snapshot everything recorded so far into a serializable report.
    /// Returns an empty schema-stamped report when disabled.
    pub fn report(&self) -> Report {
        match &self.registry {
            None => Report { schema_version: SCHEMA_VERSION, ..Default::default() },
            Some(reg) => reg.snapshot(),
        }
    }
}

thread_local! {
    /// Per-thread stack of open phase paths, for dotted nesting.
    static PHASE_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

struct PhaseInner {
    registry: Arc<Registry>,
    path: String,
    start: Instant,
}

/// RAII guard returned by [`Telemetry::phase`]; records on drop.
pub struct PhaseGuard {
    inner: Option<PhaseInner>,
}

impl PhaseGuard {
    /// The full dotted path this guard is timing (`None` when telemetry
    /// is disabled).
    pub fn path(&self) -> Option<&str> {
        self.inner.as_ref().map(|i| i.path.as_str())
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let elapsed = inner.start.elapsed().as_secs_f64();
            PHASE_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Pop our own path; guards drop in LIFO order on a given
                // thread, so it is the top entry.
                if stack.last() == Some(&inner.path) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|p| p == &inner.path) {
                    stack.remove(pos);
                }
            });
            inner.registry.record_timer(&inner.path, elapsed);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The shared metric store behind an enabled [`Telemetry`].
#[derive(Debug, Default)]
struct Registry {
    timers: Mutex<HashMap<String, TimerStat>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, GaugeStat>>,
    series: Mutex<HashMap<String, Ring>>,
}

impl Registry {
    fn record_timer(&self, path: &str, seconds: f64) {
        let mut timers = self.timers.lock().unwrap();
        let t = timers.entry(path.to_string()).or_insert_with(TimerStat::empty);
        t.calls += 1;
        t.total_s += seconds;
        if seconds < t.min_s || t.calls == 1 {
            t.min_s = seconds;
        }
        if seconds > t.max_s {
            t.max_s = seconds;
        }
    }

    fn snapshot(&self) -> Report {
        let mut timers: Vec<(String, TimerStat)> =
            self.timers.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        timers.sort_by(|a, b| a.0.cmp(&b.0));
        let mut counters: Vec<(String, u64)> =
            self.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), *v)).collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, GaugeStat)> =
            self.gauges.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut series: Vec<(String, SeriesStat)> =
            self.series.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.stat())).collect();
        series.sort_by(|a, b| a.0.cmp(&b.0));
        Report {
            schema_version: SCHEMA_VERSION,
            timers: timers.into_iter().map(|(name, stat)| TimerEntry { name, stat }).collect(),
            counters: counters
                .into_iter()
                .map(|(name, value)| CounterEntry { name, value })
                .collect(),
            gauges: gauges.into_iter().map(|(name, stat)| GaugeEntry { name, stat }).collect(),
            series: series.into_iter().map(|(name, stat)| SeriesEntry { name, stat }).collect(),
        }
    }
}

/// A bounded ring buffer of f64 samples.
#[derive(Debug)]
struct Ring {
    capacity: usize,
    /// Total samples ever pushed (>= buf.len()).
    pushed: u64,
    buf: Vec<f64>,
    head: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self { capacity, pushed: 0, buf: Vec::new(), head: 0 }
    }

    fn push(&mut self, v: f64) {
        self.pushed += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Samples in push order (oldest retained first).
    fn ordered(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn stat(&self) -> SeriesStat {
        let values = self.ordered();
        let (mut min, mut max, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        let mean = if values.is_empty() { 0.0 } else { sum / values.len() as f64 };
        SeriesStat {
            capacity: self.capacity as u64,
            pushed: self.pushed,
            min: if values.is_empty() { 0.0 } else { min },
            max: if values.is_empty() { 0.0 } else { max },
            mean,
            values,
        }
    }
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

/// Aggregated statistics of one named timer.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct TimerStat {
    /// Number of completed phase spans.
    pub calls: u64,
    /// Summed wall time, seconds.
    pub total_s: f64,
    /// Shortest span, seconds.
    pub min_s: f64,
    /// Longest span, seconds.
    pub max_s: f64,
}

impl TimerStat {
    fn empty() -> Self {
        Self { calls: 0, total_s: 0.0, min_s: 0.0, max_s: 0.0 }
    }
}

/// Last value + high-water mark of one gauge.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct GaugeStat {
    /// Most recently set value.
    pub last: f64,
    /// Largest value ever set.
    pub max: f64,
}

/// Summary + retained window of one sample series.
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct SeriesStat {
    /// Ring capacity.
    pub capacity: u64,
    /// Total samples pushed (may exceed `values.len()`).
    pub pushed: u64,
    /// Minimum over the retained window.
    pub min: f64,
    /// Maximum over the retained window.
    pub max: f64,
    /// Mean over the retained window.
    pub mean: f64,
    /// The retained window, oldest first.
    pub values: Vec<f64>,
}

/// One named timer in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct TimerEntry {
    /// Dotted phase path, e.g. `step.velocity`.
    pub name: String,
    /// Aggregated timings.
    pub stat: TimerStat,
}

/// One named counter in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct CounterEntry {
    /// Counter name, e.g. `halo.bytes_sent`.
    pub name: String,
    /// Accumulated total.
    pub value: u64,
}

/// One named gauge in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct GaugeEntry {
    /// Gauge name, e.g. `arch.ldm_high_water_bytes`.
    pub name: String,
    /// Last + max values.
    pub stat: GaugeStat,
}

/// One named series in a [`Report`].
#[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
pub struct SeriesEntry {
    /// Series name, e.g. `step.wall_s`.
    pub name: String,
    /// Window summary + retained samples.
    pub stat: SeriesStat,
}

/// A point-in-time snapshot of every metric, with a stable JSON schema.
///
/// Entries are sorted by name so two reports of the same run serialize
/// identically. The schema is versioned via `schema_version`
/// ([`SCHEMA_VERSION`]): additive changes bump it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, serde::Deserialize)]
pub struct Report {
    /// Schema version stamp ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// All timers, sorted by name.
    pub timers: Vec<TimerEntry>,
    /// All counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// All series, sorted by name.
    pub series: Vec<SeriesEntry>,
}

impl Report {
    /// Look up a timer by exact dotted path.
    pub fn timer(&self, name: &str) -> Option<&TimerStat> {
        self.timers.iter().find(|e| e.name == name).map(|e| &e.stat)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|e| e.name == name).map(|e| e.value)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<&GaugeStat> {
        self.gauges.iter().find(|e| e.name == name).map(|e| &e.stat)
    }

    /// Look up a series by name.
    pub fn series(&self, name: &str) -> Option<&SeriesStat> {
        self.series.iter().find(|e| e.name == name).map(|e| &e.stat)
    }

    /// Pretty JSON rendering of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parse a report back from JSON.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Telemetry::disabled();
        {
            let _g = t.phase("step");
            t.add("bytes", 100);
            t.gauge("ldm", 1.0);
            t.sample("wall", 0.5);
        }
        let r = t.report();
        assert_eq!(r.schema_version, SCHEMA_VERSION);
        assert!(r.timers.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.series.is_empty());
    }

    #[test]
    fn phases_nest_with_dotted_paths() {
        let t = Telemetry::enabled();
        {
            let _outer = t.phase("step");
            {
                let _inner = t.phase("velocity");
            }
            {
                let _inner = t.phase("stress");
                let _inner2 = t.phase("plasticity");
            }
        }
        {
            let _again = t.phase("step");
        }
        let r = t.report();
        let names: Vec<&str> = r.timers.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["step", "step.stress", "step.stress.plasticity", "step.velocity"]);
        assert_eq!(r.timer("step").unwrap().calls, 2);
        assert_eq!(r.timer("step.velocity").unwrap().calls, 1);
    }

    #[test]
    fn nesting_resets_between_roots() {
        let t = Telemetry::enabled();
        {
            let _a = t.phase("a");
        }
        {
            let _b = t.phase("b");
        }
        let r = t.report();
        assert!(r.timer("a.b").is_none());
        assert!(r.timer("b").is_some());
    }

    #[test]
    fn counters_and_gauges_aggregate() {
        let t = Telemetry::enabled();
        t.add("bytes", 10);
        t.add("bytes", 32);
        t.gauge("ldm", 5.0);
        t.gauge("ldm", 3.0);
        let r = t.report();
        assert_eq!(r.counter("bytes"), Some(42));
        let g = r.gauge("ldm").unwrap();
        assert_eq!(g.last, 3.0);
        assert_eq!(g.max, 5.0);
    }

    #[test]
    fn series_ring_evicts_oldest() {
        let t = Telemetry::enabled();
        for i in 0..10 {
            t.sample_with_capacity("s", i as f64, 4);
        }
        let s = t.report();
        let s = s.series("s").unwrap();
        assert_eq!(s.pushed, 10);
        assert_eq!(s.values, vec![6.0, 7.0, 8.0, 9.0]);
        assert_eq!(s.min, 6.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn timers_aggregate_across_threads() {
        let t = Telemetry::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let _g = t.phase("work");
                        t.add("jobs", 1);
                    }
                });
            }
        });
        let r = t.report();
        assert_eq!(r.timer("work").unwrap().calls, 100);
        assert_eq!(r.counter("jobs"), Some(100));
    }

    #[test]
    fn sibling_threads_do_not_inherit_nesting() {
        let t = Telemetry::enabled();
        let _outer = t.phase("outer");
        std::thread::scope(|s| {
            let t2 = t.clone();
            s.spawn(move || {
                // Fresh thread: no `outer.` prefix.
                let _g = t2.phase("inner");
            });
        });
        drop(_outer);
        let r = t.report();
        assert!(r.timer("inner").is_some());
        assert!(r.timer("outer.inner").is_none());
    }

    #[test]
    fn report_json_roundtrip_is_stable() {
        let t = Telemetry::enabled();
        {
            let _g = t.phase("step");
            t.sample("wall", 0.25);
        }
        t.add("bytes", 7);
        t.gauge("ldm", 1024.0);
        let r = t.report();
        let text = r.to_json();
        let back = Report::from_json(&text).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.to_json(), text, "serialization must be deterministic");
    }
}
