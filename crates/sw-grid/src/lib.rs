//! Flat 3-D field arrays and decomposition geometry for `swquake`.
//!
//! This crate provides the storage layer shared by every other subsystem of
//! the SC17 TaihuLight earthquake-simulation reproduction:
//!
//! * [`Dims3`] — grid extents with the paper's axis convention (§6.3):
//!   **z is the fastest axis**, y second, x slowest;
//! * [`Field3`] — a single scalar field with a stencil halo;
//! * [`Vec3Field`] / [`Vec6Field`] — the *fused* array-of-structures fields of
//!   §6.4 (velocity fused into 3-vectors, stress and memory variables into
//!   6-vectors) that raise the DMA block size;
//! * [`tile`] — the multi-level blocking geometry of Fig. 4 (MPI partition →
//!   core-group block → Athread region → LDM window);
//! * [`halo`] — pack/unpack of halo faces for inter-rank exchange.

pub mod array3;
pub mod dims;
pub mod fused;
pub mod halo;
#[cfg(feature = "simd")]
pub mod simd;
pub mod tile;

pub use array3::{Array3, Field3};
pub use dims::{Dims3, Idx3};
pub use fused::{Vec3Field, Vec6Field};
pub use halo::{Face, HaloSpec};
pub use tile::{AthreadLayout, CgBlock, LdmWindow, TileIter};

/// Stencil halo width used throughout: the solver is 4th-order in space,
/// which needs two points on each side (the paper's `H = 2`).
pub const HALO_WIDTH: usize = 2;
