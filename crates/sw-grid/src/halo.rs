//! Halo-face packing for inter-rank exchange.
//!
//! The MPI level of the paper decomposes only the horizontal plane (x and y;
//! §6.3(1)), so ranks exchange four faces: west/east (x) and south/north (y).
//! Faces are packed into contiguous buffers (the pack/unpack kernels the
//! paper lists among the "remaining kernels": `unpack_VY`, `gather_VX`,
//! `unpack_VX`), shipped, and unpacked into the receiver's halo slabs.

use crate::array3::Field3;
use serde::{Deserialize, Serialize};

/// One of the four exchanged faces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Face {
    /// Low-x face (towards rank `(px-1, py)`).
    West,
    /// High-x face.
    East,
    /// Low-y face.
    South,
    /// High-y face.
    North,
}

impl Face {
    /// All four faces in a fixed order.
    pub const ALL: [Face; 4] = [Face::West, Face::East, Face::South, Face::North];

    /// The face a neighbour receives this one on.
    pub fn opposite(self) -> Face {
        match self {
            Face::West => Face::East,
            Face::East => Face::West,
            Face::South => Face::North,
            Face::North => Face::South,
        }
    }

    /// Rank-grid offset `(dx, dy)` towards the neighbour behind this face.
    pub fn offset(self) -> (isize, isize) {
        match self {
            Face::West => (-1, 0),
            Face::East => (1, 0),
            Face::South => (0, -1),
            Face::North => (0, 1),
        }
    }
}

/// Geometry of a halo exchange: interior dims plus halo width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaloSpec {
    /// Halo width (stencil half-width, 2 for the 4th-order scheme).
    pub width: usize,
}

impl HaloSpec {
    /// Number of f32 values in one packed face of `field`.
    pub fn face_len(&self, field: &Field3) -> FaceLens {
        let d = field.dims();
        FaceLens { x_face: self.width * d.ny * d.nz, y_face: self.width * d.nx * d.nz }
    }

    /// Pack the `width` interior slabs adjacent to `face` into `buf`.
    ///
    /// Slab order is ascending coordinate; within a slab, memory order.
    pub fn pack(&self, field: &Field3, face: Face, buf: &mut Vec<f32>) {
        buf.clear();
        let d = field.dims();
        let h = self.width;
        match face {
            Face::West => {
                for x in 0..h {
                    for y in 0..d.ny {
                        buf.extend_from_slice(field.row(x, y));
                    }
                }
            }
            Face::East => {
                for x in d.nx - h..d.nx {
                    for y in 0..d.ny {
                        buf.extend_from_slice(field.row(x, y));
                    }
                }
            }
            Face::South => {
                for x in 0..d.nx {
                    for y in 0..h {
                        buf.extend_from_slice(field.row(x, y));
                    }
                }
            }
            Face::North => {
                for x in 0..d.nx {
                    for y in d.ny - h..d.ny {
                        buf.extend_from_slice(field.row(x, y));
                    }
                }
            }
        }
    }

    /// Unpack a buffer received from the neighbour behind `face` into this
    /// field's halo slabs on that side.
    pub fn unpack(&self, field: &mut Field3, face: Face, buf: &[f32]) {
        let d = field.dims();
        let h = self.width as isize;
        let nz = d.nz;
        let mut it = buf.chunks_exact(nz);
        match face {
            Face::West => {
                for x in -h..0 {
                    for y in 0..d.ny {
                        write_zrun_i(field, x, y as isize, it.next().expect("short halo buffer"));
                    }
                }
            }
            Face::East => {
                for x in d.nx as isize..d.nx as isize + h {
                    for y in 0..d.ny {
                        write_zrun_i(field, x, y as isize, it.next().expect("short halo buffer"));
                    }
                }
            }
            Face::South => {
                for x in 0..d.nx {
                    for y in -h..0 {
                        write_zrun_i(field, x as isize, y, it.next().expect("short halo buffer"));
                    }
                }
            }
            Face::North => {
                for x in 0..d.nx {
                    for y in d.ny as isize..d.ny as isize + h {
                        write_zrun_i(field, x as isize, y, it.next().expect("short halo buffer"));
                    }
                }
            }
        }
        assert!(it.next().is_none(), "halo buffer longer than face");
    }
}

/// Packed-face lengths for a given field shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaceLens {
    /// Values in a west/east face.
    pub x_face: usize,
    /// Values in a south/north face.
    pub y_face: usize,
}

fn write_zrun_i(field: &mut Field3, x: isize, y: isize, src: &[f32]) {
    for (z, &v) in src.iter().enumerate() {
        field.set_i(x, y, z as isize, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::Dims3;

    fn filled(d: Dims3) -> Field3 {
        let mut f = Field3::new(d, 2);
        f.fill_with(|x, y, z| (x * 10_000 + y * 100 + z) as f32);
        f
    }

    #[test]
    fn opposite_faces() {
        for f in Face::ALL {
            assert_eq!(f.opposite().opposite(), f);
        }
        assert_eq!(Face::West.opposite(), Face::East);
    }

    /// Two adjacent subdomains exchanging faces must see each other's
    /// boundary values exactly where the stencil expects them.
    #[test]
    fn pack_unpack_between_neighbors_x() {
        let d = Dims3::new(6, 4, 5);
        let left = filled(d);
        let mut right = filled(d);
        let spec = HaloSpec { width: 2 };
        let mut buf = Vec::new();
        // left's East face becomes right's West halo.
        spec.pack(&left, Face::East, &mut buf);
        assert_eq!(buf.len(), spec.face_len(&left).x_face);
        spec.unpack(&mut right, Face::West, &buf);
        // right.at_i(-1, y, z) must equal left.get(nx-1, y, z), and
        // right.at_i(-2, ..) equals left.get(nx-2, ..).
        for y in 0..d.ny {
            for z in 0..d.nz {
                assert_eq!(right.at_i(-1, y as isize, z as isize), left.get(d.nx - 1, y, z));
                assert_eq!(right.at_i(-2, y as isize, z as isize), left.get(d.nx - 2, y, z));
            }
        }
    }

    #[test]
    fn pack_unpack_between_neighbors_y() {
        let d = Dims3::new(3, 7, 4);
        let south = filled(d);
        let mut north = filled(d);
        let spec = HaloSpec { width: 2 };
        let mut buf = Vec::new();
        spec.pack(&south, Face::North, &mut buf);
        assert_eq!(buf.len(), spec.face_len(&south).y_face);
        spec.unpack(&mut north, Face::South, &buf);
        for x in 0..d.nx {
            for z in 0..d.nz {
                assert_eq!(north.at_i(x as isize, -1, z as isize), south.get(x, d.ny - 1, z));
                assert_eq!(north.at_i(x as isize, -2, z as isize), south.get(x, d.ny - 2, z));
            }
        }
    }

    #[test]
    fn east_then_west_roundtrip_preserves_interior() {
        let d = Dims3::new(5, 5, 5);
        let f = filled(d);
        let spec = HaloSpec { width: 2 };
        let mut buf = Vec::new();
        spec.pack(&f, Face::West, &mut buf);
        let mut g = f.clone();
        spec.unpack(&mut g, Face::East, &buf);
        // interior untouched
        assert_eq!(f.max_abs_diff(&g), 0.0);
        // halo filled with the packed values
        for y in 0..d.ny {
            assert_eq!(g.at_i(d.nx as isize, y as isize, 0), f.get(0, y, 0));
        }
    }

    #[test]
    #[should_panic(expected = "longer than face")]
    fn unpack_rejects_oversized_buffer() {
        let d = Dims3::new(4, 4, 4);
        let mut f = filled(d);
        let spec = HaloSpec { width: 2 };
        let buf = vec![0.0f32; spec.face_len(&f).x_face + d.nz];
        spec.unpack(&mut f, Face::West, &buf);
    }
}
