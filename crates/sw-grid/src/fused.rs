//! Fused array-of-structures fields (§6.4 of the paper).
//!
//! The key memory optimization of the paper is *array fusion*: the arrays
//! that are co-located (accessed with identical patterns by a majority of
//! kernels) are fused so that one DMA transfer moves `k` components per grid
//! point instead of one. The paper fuses the velocity components `(u, v, w)`
//! into 3-vectors and the six stress components into 6-vectors, which raises
//! the DMA block size per z-run from `Wz·4` bytes to `Wz·4·k` bytes — in the
//! `dstrqc` kernel from 84 B to 512 B, lifting effective bandwidth from
//! ~50 GB/s to ~105 GB/s.
//!
//! [`Vec3Field`] and [`Vec6Field`] are those fused layouts. They carry the
//! same halo convention as [`crate::Field3`], and conversion to/from
//! separate scalar fields is lossless (property-tested).

use crate::array3::Field3;
use crate::dims::Dims3;

macro_rules! fused_field {
    ($name:ident, $k:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name {
            interior: Dims3,
            padded: Dims3,
            halo: usize,
            data: Vec<[f32; $k]>,
        }

        impl $name {
            /// Number of fused components per grid point.
            pub const COMPONENTS: usize = $k;

            /// Allocate zero-filled with interior `dims` and halo `halo`.
            pub fn new(dims: Dims3, halo: usize) -> Self {
                let padded = dims.padded(halo);
                Self { interior: dims, padded, halo, data: vec![[0.0; $k]; padded.len()] }
            }

            /// Interior extents.
            pub fn dims(&self) -> Dims3 {
                self.interior
            }

            /// Halo width.
            pub fn halo(&self) -> usize {
                self.halo
            }

            /// Bytes resident in the padded allocation (halo included,
            /// all fused components) — the working-set gauge the run
            /// timeline reports per field.
            pub fn resident_bytes(&self) -> usize {
                self.data.len() * core::mem::size_of::<[f32; $k]>()
            }

            #[inline(always)]
            fn off(&self, x: usize, y: usize, z: usize) -> usize {
                self.padded.offset(x + self.halo, y + self.halo, z + self.halo)
            }

            /// Read the fused vector at interior `(x, y, z)`.
            #[inline(always)]
            pub fn get(&self, x: usize, y: usize, z: usize) -> [f32; $k] {
                self.data[self.off(x, y, z)]
            }

            /// Write the fused vector at interior `(x, y, z)`.
            #[inline(always)]
            pub fn set(&mut self, x: usize, y: usize, z: usize, v: [f32; $k]) {
                let o = self.off(x, y, z);
                self.data[o] = v;
            }

            /// Signed-coordinate read reaching into the halo.
            #[inline(always)]
            pub fn at_i(&self, x: isize, y: isize, z: isize) -> [f32; $k] {
                let h = self.halo as isize;
                debug_assert!(x >= -h && y >= -h && z >= -h);
                let o = self.padded.offset((x + h) as usize, (y + h) as usize, (z + h) as usize);
                self.data[o]
            }

            /// One fused component read with signed coordinates.
            #[inline(always)]
            pub fn comp_i(&self, c: usize, x: isize, y: isize, z: isize) -> f32 {
                self.at_i(x, y, z)[c]
            }

            /// Signed-coordinate write reaching into the halo (the fused
            /// free-surface kernel mirrors ghost planes above `z = 0`).
            #[inline(always)]
            pub fn set_i(&mut self, x: isize, y: isize, z: isize, v: [f32; $k]) {
                let h = self.halo as isize;
                debug_assert!(x >= -h && y >= -h && z >= -h);
                let o = self.padded.offset((x + h) as usize, (y + h) as usize, (z + h) as usize);
                self.data[o] = v;
            }

            /// One fused component write with signed coordinates.
            #[inline(always)]
            pub fn set_comp_i(&mut self, c: usize, x: isize, y: isize, z: isize, v: f32) {
                let h = self.halo as isize;
                debug_assert!(x >= -h && y >= -h && z >= -h);
                let o = self.padded.offset((x + h) as usize, (y + h) as usize, (z + h) as usize);
                self.data[o][c] = v;
            }

            /// Contiguous z-run of fused vectors at interior `(x, y)`.
            #[inline]
            pub fn z_run(&self, x: usize, y: usize) -> &[[f32; $k]] {
                let o = self.off(x, y, 0);
                &self.data[o..o + self.interior.nz]
            }

            /// Mutable contiguous z-run at interior `(x, y)`.
            #[inline]
            pub fn z_run_mut(&mut self, x: usize, y: usize) -> &mut [[f32; $k]] {
                let o = self.off(x, y, 0);
                let nz = self.interior.nz;
                &mut self.data[o..o + nz]
            }

            /// Raw padded storage.
            pub fn raw(&self) -> &[[f32; $k]] {
                &self.data
            }

            /// Raw padded storage, mutable.
            pub fn raw_mut(&mut self) -> &mut [[f32; $k]] {
                &mut self.data
            }

            /// Bytes moved per z-run DMA transfer of length `wz` — the block
            /// size that drives Table 3's bandwidth curve.
            pub const fn dma_block_bytes(wz: usize) -> usize {
                wz * 4 * $k
            }

            /// Fuse separate scalar fields (all same shape) into one AoS field.
            pub fn fuse(parts: [&Field3; $k]) -> Self {
                let dims = parts[0].dims();
                let halo = parts[0].halo();
                for p in parts.iter() {
                    assert_eq!(p.dims(), dims, "all fused parts must share dims");
                    assert_eq!(p.halo(), halo, "all fused parts must share halo");
                }
                let mut out = Self::new(dims, halo);
                let padded = out.padded;
                for i in 0..padded.len() {
                    let mut v = [0.0f32; $k];
                    for (c, p) in parts.iter().enumerate() {
                        v[c] = p.raw()[i];
                    }
                    out.data[i] = v;
                }
                out
            }

            /// Split back into separate scalar fields (inverse of [`Self::fuse`]).
            pub fn split(&self) -> [Field3; $k] {
                let mut parts: [Field3; $k] =
                    core::array::from_fn(|_| Field3::new(self.interior, self.halo));
                for i in 0..self.padded.len() {
                    for (c, part) in parts.iter_mut().enumerate() {
                        part.raw_mut()[i] = self.data[i][c];
                    }
                }
                parts
            }
        }
    };
}

fused_field!(Vec3Field, 3, "Fused 3-component field: the paper's velocity fusion `(u, v, w)`.");
fused_field!(
    Vec6Field,
    6,
    "Fused 6-component field: the paper's stress fusion \
     `(xx, yy, zz, xy, xz, yz)` and memory-variable fusion `(r1..r6)`."
);

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_field(dims: Dims3, halo: usize, seed: f32) -> Field3 {
        let mut f = Field3::new(dims, halo);
        f.fill_with(|x, y, z| seed + (x * 100 + y * 10 + z) as f32);
        f
    }

    #[test]
    fn fuse_split_roundtrip_vec3() {
        let d = Dims3::new(3, 4, 5);
        let a = mk_field(d, 2, 0.5);
        let b = mk_field(d, 2, 1000.0);
        let c = mk_field(d, 2, -7.25);
        let fused = Vec3Field::fuse([&a, &b, &c]);
        let [a2, b2, c2] = fused.split();
        assert_eq!(a.max_abs_diff(&a2), 0.0);
        assert_eq!(b.max_abs_diff(&b2), 0.0);
        assert_eq!(c.max_abs_diff(&c2), 0.0);
    }

    #[test]
    fn fuse_split_roundtrip_vec6() {
        let d = Dims3::new(2, 3, 4);
        let parts: Vec<Field3> = (0..6).map(|i| mk_field(d, 2, i as f32 * 11.0)).collect();
        let refs: [&Field3; 6] = core::array::from_fn(|i| &parts[i]);
        let fused = Vec6Field::fuse(refs);
        let back = fused.split();
        for (orig, got) in parts.iter().zip(back.iter()) {
            assert_eq!(orig.max_abs_diff(got), 0.0);
        }
    }

    #[test]
    fn fused_block_size_matches_paper_example() {
        // §6.4: an unfused z-run of Wz=32 floats is a 128-byte DMA block
        // (~50 % bandwidth); after vec3 fusion the same 432-byte block the
        // paper reports needs only Wz=36 fused points.
        assert_eq!(Vec3Field::dma_block_bytes(36), 432);
        assert!(Vec6Field::dma_block_bytes(22) >= 512);
    }

    #[test]
    fn fused_halo_access() {
        let d = Dims3::cube(3);
        let mut f = Vec3Field::new(d, 2);
        f.set(0, 0, 0, [1.0, 2.0, 3.0]);
        assert_eq!(f.get(0, 0, 0), [1.0, 2.0, 3.0]);
        assert_eq!(f.at_i(-1, 0, 0), [0.0; 3]);
        assert_eq!(f.comp_i(1, 0, 0, 0), 2.0);
    }

    #[test]
    fn resident_bytes_counts_all_fused_components() {
        let f = Vec3Field::new(Dims3::cube(3), 2);
        assert_eq!(f.resident_bytes(), 7 * 7 * 7 * 3 * 4);
        let s = Vec6Field::new(Dims3::cube(3), 2);
        assert_eq!(s.resident_bytes(), 7 * 7 * 7 * 6 * 4);
    }

    #[test]
    fn z_run_length_matches_interior() {
        let f = Vec6Field::new(Dims3::new(2, 2, 9), 2);
        assert_eq!(f.z_run(0, 0).len(), 9);
    }

    #[test]
    #[should_panic(expected = "share dims")]
    fn fuse_rejects_mismatched_dims() {
        let a = Field3::new(Dims3::cube(3), 2);
        let b = Field3::new(Dims3::cube(4), 2);
        let c = Field3::new(Dims3::cube(3), 2);
        let _ = Vec3Field::fuse([&a, &b, &c]);
    }
}
