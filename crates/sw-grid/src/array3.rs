//! Scalar 3-D fields with stencil halos.
//!
//! A [`Field3`] owns an `(nx+2h) × (ny+2h) × (nz+2h)` allocation where `h` is
//! the halo width; interior indices run over `0..nx` etc. and map to padded
//! coordinates by adding `h`. Negative-offset stencil taps therefore never
//! need bounds branches in the hot loops — they stay inside the allocation.

use crate::dims::{Dims3, Idx3};

/// A generic 3-D array without a halo, z fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct Array3<T> {
    dims: Dims3,
    data: Vec<T>,
}

impl<T: Clone + Default> Array3<T> {
    /// Allocate with `T::default()` everywhere.
    pub fn new(dims: Dims3) -> Self {
        Self { dims, data: vec![T::default(); dims.len()] }
    }
}

impl<T> Array3<T> {
    /// Build from an existing flat vector; `data.len()` must equal `dims.len()`.
    pub fn from_vec(dims: Dims3, data: Vec<T>) -> Self {
        assert_eq!(data.len(), dims.len(), "flat length must match dims");
        Self { dims, data }
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims3 {
        self.dims
    }

    /// Flat read-only view in memory order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable view in memory order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the flat vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Immutable element access.
    #[inline(always)]
    pub fn at(&self, x: usize, y: usize, z: usize) -> &T {
        &self.data[self.dims.offset(x, y, z)]
    }

    /// Mutable element access.
    #[inline(always)]
    pub fn at_mut(&mut self, x: usize, y: usize, z: usize) -> &mut T {
        let o = self.dims.offset(x, y, z);
        &mut self.data[o]
    }

    /// Map every element, producing a new array.
    pub fn map<U>(&self, f: impl Fn(&T) -> U) -> Array3<U> {
        Array3 { dims: self.dims, data: self.data.iter().map(f).collect() }
    }
}

impl<T> std::ops::Index<Idx3> for Array3<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, (x, y, z): Idx3) -> &T {
        self.at(x, y, z)
    }
}

impl<T> std::ops::IndexMut<Idx3> for Array3<T> {
    #[inline(always)]
    fn index_mut(&mut self, (x, y, z): Idx3) -> &mut T {
        self.at_mut(x, y, z)
    }
}

/// A single-precision scalar field with a halo of width `h` on every side.
///
/// Interior coordinates are `0..nx` × `0..ny` × `0..nz`; the backing store is
/// padded so that stencil taps up to `h` points outside the interior are
/// plain loads. All simulation state in the paper (velocity, stress,
/// material, attenuation memory variables, plasticity arrays — the "over 35
/// 3-D arrays" of the nonlinear case) is stored in fields of this shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    interior: Dims3,
    padded: Dims3,
    halo: usize,
    data: Vec<f32>,
}

impl Field3 {
    /// Allocate a zero-filled field with interior `dims` and halo width `halo`.
    pub fn new(dims: Dims3, halo: usize) -> Self {
        let padded = dims.padded(halo);
        Self { interior: dims, padded, halo, data: vec![0.0; padded.len()] }
    }

    /// Allocate filled with `value`.
    pub fn filled(dims: Dims3, halo: usize, value: f32) -> Self {
        let padded = dims.padded(halo);
        Self { interior: dims, padded, halo, data: vec![value; padded.len()] }
    }

    /// Interior extents (excluding halo).
    pub fn dims(&self) -> Dims3 {
        self.interior
    }

    /// Extents of the padded allocation.
    pub fn padded_dims(&self) -> Dims3 {
        self.padded
    }

    /// Halo width on each side.
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Bytes resident in the padded allocation (halo included) — the
    /// working-set gauge the run timeline reports per field.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Linear offset into the padded store for interior coords (may be
    /// negative-side halo when `x` etc. come in as signed via `at_i`).
    #[inline(always)]
    fn off(&self, x: usize, y: usize, z: usize) -> usize {
        self.padded.offset(x + self.halo, y + self.halo, z + self.halo)
    }

    /// Read an interior (or halo, via signed coords) value.
    #[inline(always)]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f32 {
        self.data[self.off(x, y, z)]
    }

    /// Write an interior value.
    #[inline(always)]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f32) {
        let o = self.off(x, y, z);
        self.data[o] = v;
    }

    /// Signed-coordinate read reaching into the halo: `x ∈ -h .. nx+h-1`.
    #[inline(always)]
    pub fn at_i(&self, x: isize, y: isize, z: isize) -> f32 {
        let h = self.halo as isize;
        debug_assert!(x >= -h && y >= -h && z >= -h);
        let o = self.padded.offset((x + h) as usize, (y + h) as usize, (z + h) as usize);
        self.data[o]
    }

    /// Signed-coordinate write reaching into the halo.
    #[inline(always)]
    pub fn set_i(&mut self, x: isize, y: isize, z: isize, v: f32) {
        let h = self.halo as isize;
        debug_assert!(x >= -h && y >= -h && z >= -h);
        let o = self.padded.offset((x + h) as usize, (y + h) as usize, (z + h) as usize);
        self.data[o] = v;
    }

    /// Raw padded storage (memory order, includes halo).
    pub fn raw(&self) -> &[f32] {
        &self.data
    }

    /// Raw padded storage, mutable.
    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The contiguous interior row (length `nz`) at `(x, y, 0..nz)` — the
    /// one blessed way to get at contiguous lanes for plane scans,
    /// reductions, and vectorized kernels.
    #[inline]
    pub fn row(&self, x: usize, y: usize) -> &[f32] {
        debug_assert!(x < self.interior.nx && y < self.interior.ny);
        let o = self.off(x, y, 0);
        &self.data[o..o + self.interior.nz]
    }

    /// Mutable contiguous interior row at `(x, y, 0..nz)`.
    #[inline]
    pub fn row_mut(&mut self, x: usize, y: usize) -> &mut [f32] {
        debug_assert!(x < self.interior.nx && y < self.interior.ny);
        let o = self.off(x, y, 0);
        let nz = self.interior.nz;
        &mut self.data[o..o + nz]
    }

    /// Halo-extended row at signed `(x, y)`: spans `z ∈ [-h, nz+h)` so a
    /// z-stencil of radius ≤ `h` taps it without branches. Interior `z`
    /// maps to slice index `z + halo`.
    #[inline]
    pub fn row_halo(&self, x: isize, y: isize) -> &[f32] {
        let h = self.halo as isize;
        debug_assert!(x >= -h && y >= -h);
        debug_assert!(x < self.interior.nx as isize + h && y < self.interior.ny as isize + h);
        let o = self.padded.offset((x + h) as usize, (y + h) as usize, 0);
        &self.data[o..o + self.padded.nz]
    }

    /// Per-tile halo-aware slice: the z-tile `[z0, z0+len)` of the row at
    /// signed `(x, y)`, extended by the halo on both sides so every
    /// z-stencil tap of the tile is a plain load. The returned slice spans
    /// `z ∈ [z0-h, z0+len+h)`; tile-local `z` maps to index `z - z0 + halo`.
    #[inline]
    pub fn row_tile(&self, x: isize, y: isize, z0: usize, len: usize) -> &[f32] {
        debug_assert!(z0 + len <= self.interior.nz);
        let row = self.row_halo(x, y);
        &row[z0..z0 + len + 2 * self.halo]
    }

    /// Mutable interior z-tile `[z0, z0+len)` of the row at `(x, y)` (no
    /// halo extension — writes stay inside the tile).
    #[inline]
    pub fn row_tile_mut(&mut self, x: usize, y: usize, z0: usize, len: usize) -> &mut [f32] {
        debug_assert!(z0 + len <= self.interior.nz);
        let o = self.off(x, y, z0);
        &mut self.data[o..o + len]
    }

    /// A detached placeholder: records the shape of a field whose payload
    /// lives elsewhere (e.g. in a compressed-resident store) but owns no
    /// f32 storage — `resident_bytes()` is 0 and any element access panics
    /// loudly instead of returning stale zeros.
    pub fn detached(dims: Dims3, halo: usize) -> Self {
        Self { interior: dims, padded: dims.padded(halo), halo, data: Vec::new() }
    }

    /// Whether this field is a detached placeholder (no storage).
    pub fn is_detached(&self) -> bool {
        self.data.is_empty() && !self.padded.is_empty()
    }

    /// Values per padded x-plane (`padded.ny * padded.nz`).
    #[inline]
    pub fn plane_len(&self) -> usize {
        self.padded.ny * self.padded.nz
    }

    /// The contiguous padded x-plane `p ∈ 0..padded.nx` (y/z halos
    /// included) — the streaming unit of the compressed-resident store.
    /// Interior plane `x` is padded plane `x + halo`.
    #[inline]
    pub fn plane(&self, p: usize) -> &[f32] {
        debug_assert!(p < self.padded.nx);
        let len = self.plane_len();
        &self.data[p * len..(p + 1) * len]
    }

    /// Mutable contiguous padded x-plane `p`.
    #[inline]
    pub fn plane_mut(&mut self, p: usize) -> &mut [f32] {
        debug_assert!(p < self.padded.nx);
        let len = self.plane_len();
        &mut self.data[p * len..(p + 1) * len]
    }

    /// Copy `n` padded x-planes from `src` (starting at `src_p`) into this
    /// field (starting at `dst_p`). Both fields must share `ny`, `nz`, and
    /// halo width — the slab-window copy of the resident step loop, which
    /// moves material planes into a narrow working set without touching
    /// per-element indexing.
    pub fn copy_planes_from(&mut self, src: &Field3, src_p: usize, dst_p: usize, n: usize) {
        assert_eq!(self.plane_len(), src.plane_len(), "plane shapes must match");
        assert!(src_p + n <= src.padded.nx && dst_p + n <= self.padded.nx);
        let len = self.plane_len();
        self.data[dst_p * len..(dst_p + n) * len]
            .copy_from_slice(&src.data[src_p * len..(src_p + n) * len]);
    }

    /// Fill interior from a closure over interior coordinates.
    pub fn fill_with(&mut self, f: impl Fn(usize, usize, usize) -> f32) {
        let d = self.interior;
        for (x, y, z) in d.iter() {
            self.set(x, y, z, f(x, y, z));
        }
    }

    /// Copy the interior into a compact (halo-free) vector in memory order.
    pub fn interior_to_vec(&self) -> Vec<f32> {
        let d = self.interior;
        let mut out = Vec::with_capacity(d.len());
        for x in 0..d.nx {
            for y in 0..d.ny {
                out.extend_from_slice(self.row(x, y));
            }
        }
        out
    }

    /// Overwrite the interior from a compact vector in memory order.
    pub fn interior_from_slice(&mut self, src: &[f32]) {
        let d = self.interior;
        assert_eq!(src.len(), d.len());
        for x in 0..d.nx {
            for y in 0..d.ny {
                let o = (x * d.ny + y) * d.nz;
                self.row_mut(x, y).copy_from_slice(&src[o..o + d.nz]);
            }
        }
    }

    /// Maximum absolute interior value.
    pub fn max_abs(&self) -> f32 {
        let d = self.interior;
        let mut m = 0.0f32;
        for x in 0..d.nx {
            for y in 0..d.ny {
                for &v in self.row(x, y) {
                    m = m.max(v.abs());
                }
            }
        }
        m
    }

    /// Interior (min, max).
    pub fn min_max(&self) -> (f32, f32) {
        let d = self.interior;
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for x in 0..d.nx {
            for y in 0..d.ny {
                for &v in self.row(x, y) {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
        }
        (lo, hi)
    }

    /// Sum of squared interior values (used by the energy-decay tests).
    pub fn norm2(&self) -> f64 {
        let d = self.interior;
        let mut s = 0.0f64;
        for x in 0..d.nx {
            for y in 0..d.ny {
                for &v in self.row(x, y) {
                    s += (v as f64) * (v as f64);
                }
            }
        }
        s
    }

    /// Maximum absolute interior difference to another same-shape field.
    pub fn max_abs_diff(&self, other: &Field3) -> f32 {
        assert_eq!(self.interior, other.interior);
        let d = self.interior;
        let mut m = 0.0f32;
        for x in 0..d.nx {
            for y in 0..d.ny {
                for (a, b) in self.row(x, y).iter().zip(other.row(x, y)) {
                    m = m.max((a - b).abs());
                }
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resident_bytes_counts_the_padded_allocation() {
        let f = Field3::new(Dims3::new(3, 3, 3), 2);
        assert_eq!(f.resident_bytes(), 7 * 7 * 7 * 4);
    }

    #[test]
    fn halo_padding_is_invisible_to_interior() {
        let mut f = Field3::new(Dims3::new(3, 3, 3), 2);
        f.set(0, 0, 0, 1.0);
        f.set(2, 2, 2, 2.0);
        assert_eq!(f.get(0, 0, 0), 1.0);
        assert_eq!(f.get(2, 2, 2), 2.0);
        // halo starts zeroed
        assert_eq!(f.at_i(-1, 0, 0), 0.0);
        assert_eq!(f.at_i(3, 2, 2), 0.0);
    }

    #[test]
    fn signed_access_reaches_halo() {
        let mut f = Field3::new(Dims3::cube(2), 2);
        f.set_i(-2, -2, -2, 7.0);
        assert_eq!(f.at_i(-2, -2, -2), 7.0);
        f.set_i(3, 3, 3, 8.0);
        assert_eq!(f.at_i(3, 3, 3), 8.0);
    }

    #[test]
    fn row_is_contiguous_interior() {
        let mut f = Field3::new(Dims3::new(2, 2, 4), 1);
        for z in 0..4 {
            f.set(1, 1, z, z as f32);
        }
        assert_eq!(f.row(1, 1), &[0.0, 1.0, 2.0, 3.0]);
        f.row_mut(1, 1)[2] = 9.0;
        assert_eq!(f.get(1, 1, 2), 9.0);
    }

    #[test]
    fn row_halo_spans_both_halos() {
        let mut f = Field3::new(Dims3::new(3, 3, 4), 2);
        f.set_i(1, 1, -2, -2.0);
        f.set_i(1, 1, -1, -1.0);
        for z in 0..4 {
            f.set(1, 1, z, z as f32);
        }
        f.set_i(1, 1, 4, 40.0);
        f.set_i(1, 1, 5, 50.0);
        assert_eq!(f.row_halo(1, 1), &[-2.0, -1.0, 0.0, 1.0, 2.0, 3.0, 40.0, 50.0]);
        // Signed (x, y) reaches rows inside the x/y halo.
        assert_eq!(f.row_halo(-1, 1).len(), 8);
    }

    #[test]
    fn row_tile_is_halo_extended_window() {
        let mut f = Field3::new(Dims3::new(2, 2, 8), 2);
        for z in 0..8 {
            f.set(0, 0, z, 10.0 + z as f32);
        }
        // Tile [2, 6): slice spans z ∈ [0, 8) of the interior here because
        // the halo extension folds in z = 0, 1 and z = 6, 7.
        let t = f.row_tile(0, 0, 2, 4);
        assert_eq!(t.len(), 4 + 4);
        assert_eq!(t[2], 12.0, "tile-local z=0 is interior z=2");
        // A tile starting at z=0 reaches into the lower halo (zeros).
        let lo = f.row_tile(0, 0, 0, 4);
        assert_eq!(&lo[..2], &[0.0, 0.0]);
        assert_eq!(lo[2], 10.0);
    }

    #[test]
    fn row_tile_mut_writes_interior_only() {
        let mut f = Field3::new(Dims3::new(2, 2, 8), 2);
        f.row_tile_mut(1, 1, 4, 3).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(f.get(1, 1, 4), 1.0);
        assert_eq!(f.get(1, 1, 6), 3.0);
        assert_eq!(f.get(1, 1, 3), 0.0);
        assert_eq!(f.get(1, 1, 7), 0.0);
    }

    #[test]
    fn planes_are_contiguous_padded_slabs() {
        let d = Dims3::new(3, 2, 4);
        let mut f = Field3::new(d, 2);
        f.fill_with(|x, y, z| (x * 100 + y * 10 + z) as f32 + 1.0);
        // Interior x=1 lives in padded plane 3.
        let p = f.plane(1 + 2);
        assert_eq!(p.len(), f.plane_len());
        assert_eq!(p.len(), (2 + 4) * (4 + 4));
        // (y=0, z=0) of interior x=1 sits at padded (2, 2) within the plane.
        assert_eq!(p[2 * (4 + 4) + 2], 101.0);
        // Halo plane 0 is all zeros.
        assert!(f.plane(0).iter().all(|&v| v == 0.0));
        // Mutation through plane_mut lands at the right interior cell.
        let len = f.plane_len();
        f.plane_mut(2)[2 * (4 + 4) + 2] = 9.0;
        assert_eq!(f.get(0, 0, 0), 9.0);
        let _ = len;
    }

    #[test]
    fn copy_planes_between_different_nx() {
        let big = {
            let mut f = Field3::new(Dims3::new(8, 3, 4), 2);
            f.fill_with(|x, y, z| (x * 100 + y * 10 + z) as f32);
            f
        };
        // A narrow slab with the same (ny, nz, halo) receives planes 4..7.
        let mut slab = Field3::new(Dims3::new(3, 3, 4), 2);
        slab.copy_planes_from(&big, 4, 1, 3);
        // big padded plane 4 = interior x=2; slab padded plane 1 = interior x=-1.
        assert_eq!(slab.at_i(-1, 0, 0), big.get(2, 0, 0));
        assert_eq!(slab.get(0, 1, 2), big.get(3, 1, 2));
        assert_eq!(slab.get(1, 2, 3), big.get(4, 2, 3));
        // Untouched slab planes stay zero.
        assert!(slab.plane(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn detached_field_records_shape_without_storage() {
        let f = Field3::detached(Dims3::new(4, 5, 6), 2);
        assert!(f.is_detached());
        assert_eq!(f.dims(), Dims3::new(4, 5, 6));
        assert_eq!(f.halo(), 2);
        assert_eq!(f.resident_bytes(), 0);
        let live = Field3::new(Dims3::new(4, 5, 6), 2);
        assert!(!live.is_detached());
    }

    #[test]
    #[should_panic]
    fn detached_field_access_panics() {
        let f = Field3::detached(Dims3::cube(3), 2);
        let _ = f.get(0, 0, 0);
    }

    #[test]
    fn interior_vec_roundtrip() {
        let d = Dims3::new(3, 4, 5);
        let mut f = Field3::new(d, 2);
        f.fill_with(|x, y, z| (x * 100 + y * 10 + z) as f32);
        let v = f.interior_to_vec();
        let mut g = Field3::new(d, 2);
        g.interior_from_slice(&v);
        assert_eq!(f.max_abs_diff(&g), 0.0);
    }

    #[test]
    fn reductions() {
        let mut f = Field3::new(Dims3::cube(3), 1);
        f.set(1, 1, 1, -4.0);
        f.set(0, 0, 0, 3.0);
        assert_eq!(f.max_abs(), 4.0);
        assert_eq!(f.min_max(), (-4.0, 3.0));
        assert_eq!(f.norm2(), 25.0);
    }

    #[test]
    fn array3_indexing() {
        let mut a: Array3<u32> = Array3::new(Dims3::new(2, 3, 4));
        a[(1, 2, 3)] = 42;
        assert_eq!(a[(1, 2, 3)], 42);
        assert_eq!(*a.at(1, 2, 3), 42);
        let b = a.map(|v| v * 2);
        assert_eq!(b[(1, 2, 3)], 84);
    }

    #[test]
    #[should_panic(expected = "flat length")]
    fn from_vec_checks_len() {
        let _ = Array3::from_vec(Dims3::cube(2), vec![0u8; 7]);
    }
}
