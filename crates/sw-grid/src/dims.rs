//! Grid extents and index arithmetic.
//!
//! Axis convention follows §6.3 of the paper: for the storage of all 3-D
//! arrays the **z axis (vertical) is the fastest axis**, y the second, and x
//! the slowest. Linear offset of `(x, y, z)` is therefore
//! `(x * ny + y) * nz + z`.

use serde::{Deserialize, Serialize};

/// A 3-D index `(x, y, z)`.
pub type Idx3 = (usize, usize, usize);

/// Grid extents in points, `x` slowest / `z` fastest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dims3 {
    /// Points along the slowest axis (one horizontal direction).
    pub nx: usize,
    /// Points along the middle axis (the other horizontal direction).
    pub ny: usize,
    /// Points along the fastest axis (vertical / depth).
    pub nz: usize,
}

impl Dims3 {
    /// Create extents from `(nx, ny, nz)`.
    pub const fn new(nx: usize, ny: usize, nz: usize) -> Self {
        Self { nx, ny, nz }
    }

    /// Cubic extents `n × n × n`.
    pub const fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of points.
    pub const fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when any extent is zero.
    pub const fn is_empty(&self) -> bool {
        self.nx == 0 || self.ny == 0 || self.nz == 0
    }

    /// Linear offset of `(x, y, z)` with z fastest.
    #[inline(always)]
    pub const fn offset(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Dims3::offset`].
    #[inline]
    pub const fn coords(&self, offset: usize) -> Idx3 {
        let z = offset % self.nz;
        let rest = offset / self.nz;
        let y = rest % self.ny;
        let x = rest / self.ny;
        (x, y, z)
    }

    /// True when `(x, y, z)` lies inside the extents.
    #[inline]
    pub const fn contains(&self, x: usize, y: usize, z: usize) -> bool {
        x < self.nx && y < self.ny && z < self.nz
    }

    /// Extents grown by `h` points on every side of every axis (the padded
    /// allocation for a stencil halo of width `h`).
    pub const fn padded(&self, h: usize) -> Self {
        Self::new(self.nx + 2 * h, self.ny + 2 * h, self.nz + 2 * h)
    }

    /// Iterate all interior indices in memory order (x, then y, then z).
    pub fn iter(&self) -> impl Iterator<Item = Idx3> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nx).flat_map(move |x| (0..ny).flat_map(move |y| (0..nz).map(move |z| (x, y, z))))
    }

    /// Memory footprint in bytes of one single-precision field of this size.
    pub const fn bytes_f32(&self) -> usize {
        self.len() * core::mem::size_of::<f32>()
    }
}

impl std::fmt::Display for Dims3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_is_fastest_axis() {
        let d = Dims3::new(4, 5, 6);
        assert_eq!(d.offset(0, 0, 0), 0);
        assert_eq!(d.offset(0, 0, 1), 1); // +1 in z moves one slot
        assert_eq!(d.offset(0, 1, 0), 6); // +1 in y moves nz slots
        assert_eq!(d.offset(1, 0, 0), 30); // +1 in x moves ny*nz slots
    }

    #[test]
    fn offset_roundtrip() {
        let d = Dims3::new(3, 7, 5);
        for (x, y, z) in d.iter() {
            assert_eq!(d.coords(d.offset(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn iter_is_memory_order() {
        let d = Dims3::new(2, 2, 2);
        let order: Vec<usize> = d.iter().map(|(x, y, z)| d.offset(x, y, z)).collect();
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn padded_grows_both_sides() {
        let d = Dims3::new(10, 20, 30).padded(2);
        assert_eq!(d, Dims3::new(14, 24, 34));
    }

    #[test]
    fn len_and_bytes() {
        let d = Dims3::new(4, 5, 6);
        assert_eq!(d.len(), 120);
        assert_eq!(d.bytes_f32(), 480);
        assert!(!d.is_empty());
        assert!(Dims3::new(0, 5, 6).is_empty());
    }

    #[test]
    fn contains_checks_every_axis() {
        let d = Dims3::new(2, 3, 4);
        assert!(d.contains(1, 2, 3));
        assert!(!d.contains(2, 0, 0));
        assert!(!d.contains(0, 3, 0));
        assert!(!d.contains(0, 0, 4));
    }
}
