//! The multi-level domain-decomposition geometry of Fig. 4.
//!
//! Level 1 (MPI) is handled by `sw-parallel`; this module provides the three
//! on-node levels:
//!
//! 2. **CG blocking** ([`CgBlock`]) — the per-core-group block cut along the
//!    y and z axes so that one block's working set fits the LDM budget;
//! 3. **Athread decomposition** ([`AthreadLayout`]) — the `Cy × Cz = 64`
//!    layout of CPE threads over a block (each thread iterates along x);
//! 4. **LDM buffering** ([`LdmWindow`]) — the `Wy × Wz` window (times `Wx`
//!    planes) each CPE loads into its 64-KB local data memory per DMA batch.

use crate::dims::Dims3;
use serde::{Deserialize, Serialize};

/// A rectangular sub-box of a grid: start coordinates plus extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CgBlock {
    /// First interior x index covered by this block.
    pub x0: usize,
    /// First interior y index covered by this block.
    pub y0: usize,
    /// First interior z index covered by this block.
    pub z0: usize,
    /// Extents of the block.
    pub dims: Dims3,
}

impl CgBlock {
    /// The block covering a whole grid.
    pub fn whole(dims: Dims3) -> Self {
        Self { x0: 0, y0: 0, z0: 0, dims }
    }

    /// Number of points in the block.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the block contains no points.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Exclusive upper corner.
    pub fn end(&self) -> (usize, usize, usize) {
        (self.x0 + self.dims.nx, self.y0 + self.dims.ny, self.z0 + self.dims.nz)
    }
}

/// Split `n` points into `parts` nearly-equal contiguous ranges; the first
/// `n % parts` ranges get one extra point. Returns `(start, len)` pairs.
pub fn split_even(n: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "cannot split into zero parts");
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Cut a grid into CG blocks along y and z (Fig. 4 level 2). The x extent is
/// kept whole — each CPE thread streams along x.
pub fn cg_blocks(dims: Dims3, blocks_y: usize, blocks_z: usize) -> Vec<CgBlock> {
    let ys = split_even(dims.ny, blocks_y);
    let zs = split_even(dims.nz, blocks_z);
    let mut out = Vec::with_capacity(blocks_y * blocks_z);
    for &(y0, ny) in &ys {
        for &(z0, nz) in &zs {
            out.push(CgBlock { x0: 0, y0, z0, dims: Dims3::new(dims.nx, ny, nz) });
        }
    }
    out
}

/// The `Cy × Cz` layout of the 64 CPE threads over a CG block (Fig. 4
/// level 3). The paper's analytic model (§6.4) concludes `Cz = 1, Cy = 64`
/// is optimal in most cases because the z axis is fastest in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AthreadLayout {
    /// Thread count along y.
    pub cy: usize,
    /// Thread count along z.
    pub cz: usize,
}

impl AthreadLayout {
    /// Construct; `cy * cz` must equal 64 (the CPE cluster size) — eq. (5).
    pub fn new(cy: usize, cz: usize) -> Self {
        assert_eq!(cy * cz, 64, "Cy*Cz must equal the 64 CPEs of a core group");
        Self { cy, cz }
    }

    /// The paper's preferred configuration `Cz = 1, Cy = 64`.
    pub fn paper_optimal() -> Self {
        Self::new(64, 1)
    }

    /// All valid power-of-two layouts (the search space of the analytic model).
    pub fn all() -> Vec<Self> {
        [(1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1)]
            .into_iter()
            .map(|(cy, cz)| Self::new(cy, cz))
            .collect()
    }

    /// The region of `block` owned by CPE thread `tid ∈ 0..64`: thread grid
    /// is row-major over (y, z).
    pub fn region(&self, block: &CgBlock, tid: usize) -> CgBlock {
        assert!(tid < 64);
        let iy = tid / self.cz;
        let iz = tid % self.cz;
        let (y0, ny) = split_even(block.dims.ny, self.cy)[iy];
        let (z0, nz) = split_even(block.dims.nz, self.cz)[iz];
        CgBlock {
            x0: block.x0,
            y0: block.y0 + y0,
            z0: block.z0 + z0,
            dims: Dims3::new(block.dims.nx, ny, nz),
        }
    }

    /// Neighbour thread id one step along y (for register-communication halo
    /// exchange), if any.
    pub fn neighbor_y(&self, tid: usize, step: isize) -> Option<usize> {
        let iy = (tid / self.cz) as isize + step;
        if iy < 0 || iy >= self.cy as isize {
            None
        } else {
            Some(iy as usize * self.cz + tid % self.cz)
        }
    }

    /// Neighbour thread id one step along z, if any.
    pub fn neighbor_z(&self, tid: usize, step: isize) -> Option<usize> {
        let iz = (tid % self.cz) as isize + step;
        if iz < 0 || iz >= self.cz as isize {
            None
        } else {
            Some(tid / self.cz * self.cz + iz as usize)
        }
    }
}

/// The LDM window each CPE loads per DMA batch (Fig. 4 level 4): `Wx` planes
/// of `Wy × Wz` points, including the stencil halo in x.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LdmWindow {
    /// z extent of the window (fastest axis — sets the DMA block size).
    pub wz: usize,
    /// y extent of the window, including `2·H` halo rows.
    pub wy: usize,
    /// Number of x planes resident (≥ 5 for the 4th-order stencil).
    pub wx: usize,
}

impl LdmWindow {
    /// LDM bytes needed for `n_arrays` single-precision arrays of this
    /// window shape — left side of the paper's eq. (6).
    pub const fn ldm_bytes(&self, n_arrays: usize) -> usize {
        self.wz * self.wy * self.wx * n_arrays * 4
    }

    /// True when the window fits the SW26010's 64-KB LDM (eq. 6).
    pub const fn fits_ldm(&self, n_arrays: usize) -> bool {
        self.ldm_bytes(n_arrays) < 64 * 1024
    }

    /// DMA block size in bytes for a z-run of this window when each grid
    /// point carries `components` fused floats.
    pub const fn dma_block_bytes(&self, components: usize) -> usize {
        self.wz * 4 * components
    }
}

/// Iterator over the tiles a CPE region is processed in: steps of `wz` along
/// z, `wy - 2*halo` effective rows along y, streaming all x.
pub struct TileIter {
    region: CgBlock,
    window: LdmWindow,
    halo: usize,
    cur_y: usize,
    cur_z: usize,
    done: bool,
}

impl TileIter {
    /// Tiles covering `region` with LDM window `window` and stencil halo
    /// `halo` (the y window includes `2*halo` redundant rows).
    pub fn new(region: CgBlock, window: LdmWindow, halo: usize) -> Self {
        assert!(window.wy > 2 * halo, "window wy must exceed the halo rows");
        let done = region.is_empty();
        Self { region, window, halo, cur_y: 0, cur_z: 0, done }
    }
}

impl Iterator for TileIter {
    /// Each tile is the *effective* (halo-free) region it updates.
    type Item = CgBlock;

    fn next(&mut self) -> Option<CgBlock> {
        if self.done {
            return None;
        }
        let eff_y = self.window.wy - 2 * self.halo;
        let ny = (self.region.dims.ny - self.cur_y).min(eff_y);
        let nz = (self.region.dims.nz - self.cur_z).min(self.window.wz);
        let tile = CgBlock {
            x0: self.region.x0,
            y0: self.region.y0 + self.cur_y,
            z0: self.region.z0 + self.cur_z,
            dims: Dims3::new(self.region.dims.nx, ny, nz),
        };
        self.cur_z += nz;
        if self.cur_z >= self.region.dims.nz {
            self.cur_z = 0;
            self.cur_y += ny;
            if self.cur_y >= self.region.dims.ny {
                self.done = true;
            }
        }
        Some(tile)
    }
}

/// Split `0..n` into consecutive blocks of at most `block` points,
/// yielding `(start, len)` — the 1-D cache-blocking loop of the host
/// SIMD path (z and y tiles inside one Rayon x-plane task). Covers the
/// range exactly: block starts are `0, block, 2·block, …` and the last
/// block carries the remainder.
pub fn blocks(n: usize, block: usize) -> impl Iterator<Item = (usize, usize)> {
    assert!(block > 0, "block extent must be positive");
    (0..n).step_by(block).map(move |start| (start, block.min(n - start)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_even_covers_exactly() {
        for n in [1usize, 7, 64, 100, 513] {
            for parts in [1usize, 2, 3, 8, 64] {
                let s = split_even(n.max(parts), parts);
                assert_eq!(s.len(), parts);
                assert_eq!(s[0].0, 0);
                let total: usize = s.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, n.max(parts));
                for w in s.windows(2) {
                    assert_eq!(w[0].0 + w[0].1, w[1].0, "ranges must be contiguous");
                }
            }
        }
    }

    #[test]
    fn athread_layout_requires_64() {
        let l = AthreadLayout::paper_optimal();
        assert_eq!((l.cy, l.cz), (64, 1));
        assert_eq!(AthreadLayout::all().len(), 7);
    }

    #[test]
    #[should_panic(expected = "64 CPEs")]
    fn athread_layout_rejects_non_64() {
        let _ = AthreadLayout::new(8, 4);
    }

    #[test]
    fn regions_partition_block() {
        let block = CgBlock::whole(Dims3::new(10, 160, 512));
        for layout in AthreadLayout::all() {
            let mut count = 0usize;
            for tid in 0..64 {
                count += layout.region(&block, tid).len();
            }
            assert_eq!(count, block.len(), "regions must tile the block");
        }
    }

    #[test]
    fn neighbors_in_thread_grid() {
        let l = AthreadLayout::new(8, 8);
        assert_eq!(l.neighbor_y(0, 1), Some(8));
        assert_eq!(l.neighbor_y(0, -1), None);
        assert_eq!(l.neighbor_z(0, 1), Some(1));
        assert_eq!(l.neighbor_z(7, 1), None);
        let col = AthreadLayout::paper_optimal();
        assert_eq!(col.neighbor_y(5, 1), Some(6));
        assert_eq!(col.neighbor_z(5, 1), None, "Cz=1 has no z neighbours");
    }

    #[test]
    fn ldm_window_capacity_matches_paper_eq8_eq9() {
        // eq. (8): 10 separate arrays, Wy=9, Wx=5 → max Wz ≈ 32 within 64 KB.
        let w32 = LdmWindow { wz: 32, wy: 9, wx: 5 };
        assert!(w32.fits_ldm(10));
        let w64 = LdmWindow { wz: 64, wy: 9, wx: 5 };
        assert!(!w64.fits_ldm(10));
        // eq. (9): 3 fused arrays → max Wz ≈ 108.
        let w108 = LdmWindow { wz: 108, wy: 9, wx: 5 };
        assert!(w108.fits_ldm(3));
        let w128 = LdmWindow { wz: 128, wy: 9, wx: 5 };
        assert!(!w128.fits_ldm(3));
    }

    #[test]
    fn tiles_cover_region_without_overlap() {
        let region = CgBlock { x0: 0, y0: 3, z0: 5, dims: Dims3::new(4, 17, 100) };
        let window = LdmWindow { wz: 32, wy: 9, wx: 5 };
        let tiles: Vec<CgBlock> = TileIter::new(region, window, 2).collect();
        let covered: usize = tiles.iter().map(CgBlock::len).sum();
        assert_eq!(covered, region.len());
        for t in &tiles {
            assert!(t.dims.nz <= 32);
            assert!(t.dims.ny <= 9 - 4);
            assert!(t.y0 >= 3 && t.z0 >= 5);
        }
    }

    #[test]
    fn cg_blocks_tile_grid() {
        let dims = Dims3::new(8, 160, 512);
        let blocks = cg_blocks(dims, 2, 4);
        assert_eq!(blocks.len(), 8);
        let total: usize = blocks.iter().map(CgBlock::len).sum();
        assert_eq!(total, dims.len());
    }

    #[test]
    fn blocks_cover_exactly_with_remainder_tail() {
        let got: Vec<(usize, usize)> = blocks(10, 4).collect();
        assert_eq!(got, vec![(0, 4), (4, 4), (8, 2)]);
        let whole: Vec<(usize, usize)> = blocks(3, 64).collect();
        assert_eq!(whole, vec![(0, 3)], "a small extent is a single block");
        assert_eq!(blocks(0, 8).count(), 0);
        let covered: usize = blocks(1000, 7).map(|(_, len)| len).sum();
        assert_eq!(covered, 1000);
    }
}
