//! Fixed-width `f32` lane structs for the vectorized kernel path.
//!
//! Safe, portable "SIMD": an [`F32x8`] is a plain `[f32; 8]` whose
//! element-wise operators unroll into straight-line, bounds-check-free
//! lane arithmetic — exactly the shape the auto-vectorizer turns into
//! vector instructions under the release profile (no nightly
//! `std::simd`, no intrinsics). Each lane evaluates the same expression
//! tree as the scalar kernel, in the same order, so kernels built from
//! these lanes are bit-identical to their scalar counterparts lane by
//! lane; only loop structure changes, never per-element FP order.
//!
//! Lanes load from and store to the contiguous interior rows exposed by
//! [`Field3::row`](crate::Field3::row) /
//! [`Field3::row_tile`](crate::Field3::row_tile) — z is the fastest
//! axis, so a row is the innermost contiguous run every stencil kernel
//! vectorizes over.

use std::ops::{Add, Mul, Neg, Sub};

/// Lane count of the fixed-width vector type (a full AVX2 register of
/// `f32`, two NEON registers — wide enough to saturate either).
pub const LANES: usize = 8;

/// Eight `f32` lanes with element-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; LANES])
    }

    /// Load the first [`LANES`] elements of `s`.
    #[inline(always)]
    pub fn load(s: &[f32]) -> Self {
        let mut out = [0.0f32; LANES];
        out.copy_from_slice(&s[..LANES]);
        Self(out)
    }

    /// Store into the first [`LANES`] elements of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [f32]) {
        out[..LANES].copy_from_slice(&self.0);
    }

    /// Element-wise `self * a + b` — written as separate mul and add so
    /// the FP result matches the scalar `x * a + b` exactly (no fused
    /// multiply-add contraction).
    #[inline(always)]
    pub fn mul_add_exact(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F32x8 {
            type Output = F32x8;
            #[inline(always)]
            fn $method(self, rhs: F32x8) -> F32x8 {
                let mut out = [0.0f32; LANES];
                for i in 0..LANES {
                    out[i] = self.0[i] $op rhs.0[i];
                }
                F32x8(out)
            }
        }
    };
}

lane_binop!(Add, add, +);
lane_binop!(Sub, sub, -);
lane_binop!(Mul, mul, *);

impl Neg for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn neg(self) -> F32x8 {
        let mut out = [0.0f32; LANES];
        for (o, v) in out.iter_mut().zip(self.0) {
            *o = -v;
        }
        F32x8(out)
    }
}

impl Mul<F32x8> for f32 {
    type Output = F32x8;
    #[inline(always)]
    fn mul(self, rhs: F32x8) -> F32x8 {
        F32x8::splat(self) * rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_arithmetic_matches_scalar_bitwise() {
        let a: Vec<f32> = (0..LANES).map(|i| 0.1f32 + i as f32 * 1.7).collect();
        let b: Vec<f32> = (0..LANES).map(|i| -3.3f32 + i as f32 * 0.9).collect();
        let va = F32x8::load(&a);
        let vb = F32x8::load(&b);
        let got = 1.125f32 * (va - vb) + F32x8::splat(-1.0 / 24.0) * (vb * va);
        for i in 0..LANES {
            let want = 1.125f32 * (a[i] - b[i]) + (-1.0f32 / 24.0) * (b[i] * a[i]);
            assert_eq!(got.0[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let src: Vec<f32> = (0..LANES + 3).map(|i| i as f32).collect();
        let v = F32x8::load(&src[2..]);
        assert_eq!(v.0[0], 2.0);
        let mut dst = vec![0.0f32; LANES + 1];
        v.store(&mut dst);
        assert_eq!(&dst[..LANES], &src[2..2 + LANES]);
        assert_eq!(dst[LANES], 0.0, "store writes exactly LANES elements");
    }

    #[test]
    fn neg_and_mul_add_exact() {
        let v = F32x8::splat(2.0);
        assert_eq!((-v).0[7], -2.0);
        let r = v.mul_add_exact(F32x8::splat(3.0), F32x8::splat(1.0));
        assert_eq!(r.0[0], 7.0);
    }
}
